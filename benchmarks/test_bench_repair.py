"""Bandwidth-aware repair: time-to-repair curves, traffic, and the ablation.

Three measurements feed ``BENCH_repair.json`` (printed by
``python -m repro.cli bench``):

* the failure-fraction sweep at a CI-feasible scale -- the acceptance checks
  live here: repair *traffic* and repair *makespan* must be monotone in the
  failure fraction, and per-failure time-to-repair must scale inversely with
  the per-node bandwidth;
* the migration-vs-regeneration ablation at the same scale -- graceful
  ``leave()`` must *move* bytes (one network crossing per block) instead of
  charging the regeneration pipeline (``required`` reads per block), so the
  regenerate/migrate traffic ratio records the coding factor;
* the paper-scale flagship: the full three-panel experiment at 10 000 nodes,
  which must complete in well under two minutes on one core.

The recorded ``speedups`` entries are the migration traffic ratio and the
flagship wall time -- the cross-PR trajectory of the repair subsystem.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.regeneration import PAPER_REPAIR, RepairConfig, RepairExperiment
from repro.workloads.filetrace import MB

#: CI-feasible scale: every panel in a few seconds, same structure as paper scale.
SMALL_REPAIR = RepairConfig(
    node_count=300,
    file_count=800,
    capacity_mean=400 * MB,
    capacity_std=100 * MB,
    mean_file_size=24 * MB,
    std_file_size=8 * MB,
    min_file_size=4 * MB,
    fail_fractions=(0.05, 0.10, 0.20),
    bandwidth_mb_s=2.0,
    bandwidth_sweep_mb_s=(1.0, 2.0, 4.0),
    failure_spacing_s=5.0,
    leave_fraction=0.10,
    seed=7,
)


def _record_rows(results: dict, scenario: str, config: RepairConfig, outcome, seconds: float):
    for row in outcome.fraction_rows:
        entry = {"scenario": scenario, "node_count": config.node_count,
                 "mode": "fail", "seconds": seconds, **row}
        results["results"].append(entry)
    for row in outcome.ablation_rows:
        entry = {"scenario": f"{scenario}-ablation", "node_count": config.node_count,
                 "fail_pct": 100.0 * config.leave_fraction, "seconds": seconds, **row}
        results["results"].append(entry)


def test_bench_repair_curves_are_monotone(repair_bench_results):
    """Traffic and makespan grow with the failure fraction; TTR ~ 1/bandwidth."""
    start = time.perf_counter()
    outcome = RepairExperiment(SMALL_REPAIR).run()
    seconds = time.perf_counter() - start
    _record_rows(repair_bench_results, "repair", SMALL_REPAIR, outcome, seconds)

    traffic = [row["traffic_gb"] for row in outcome.fraction_rows]
    makespan = [row["makespan_s"] for row in outcome.fraction_rows]
    assert traffic == sorted(traffic) and traffic[0] < traffic[-1]
    assert makespan == sorted(makespan) and makespan[0] < makespan[-1]
    # Doubling every link halves the per-failure repair time (fluid model).
    ttrs = [row["mean_ttr_s"] for row in outcome.bandwidth_rows]
    assert ttrs == sorted(ttrs, reverse=True) and ttrs[0] > ttrs[-1]
    assert ttrs[0] / ttrs[1] == pytest.approx(2.0, rel=0.25)
    repair_bench_results.setdefault("_staged", {})["repair_small_seconds"] = seconds
    print(f"\nrepair panels @ {SMALL_REPAIR.node_count} nodes: {seconds:.2f}s, "
          f"traffic {traffic} GB, makespan {makespan} s")


def test_bench_repair_migration_moves_instead_of_regenerating(repair_bench_results):
    """The ablation rows must show graceful leave() moving bytes once."""
    rows = [row for row in repair_bench_results["results"]
            if row["scenario"] == "repair-ablation"]
    assert len(rows) == 2, "the curve benchmark records the ablation rows first"
    regen = next(row for row in rows if row["mode"] == "regenerate")
    migrate = next(row for row in rows if row["mode"] == "migrate")
    assert regen["migrated_gb"] == 0.0 and regen["regenerated_gb"] > 0.0
    assert migrate["regenerated_gb"] == 0.0 and migrate["migrated_gb"] > 0.0
    # Migration traffic equals the moved bytes; regeneration reads
    # `required` surviving blocks per lost block (2x for the (2,3) code).
    assert abs(migrate["traffic_gb"] - migrate["moved_gb"]) < 1e-9
    ratio = (regen["traffic_gb"] / regen["regenerated_gb"])
    assert 1.9 < ratio < 2.1
    traffic_ratio = regen["traffic_gb"] / migrate["traffic_gb"]
    assert traffic_ratio > 1.5
    repair_bench_results.setdefault("_staged", {})["repair_regen_vs_migrate_traffic"] = (
        traffic_ratio
    )
    print(f"\nablation: regenerate {regen['traffic_gb']:.2f} GB vs "
          f"migrate {migrate['traffic_gb']:.2f} GB ({traffic_ratio:.2f}x)")


def test_bench_repair_paper_scale_flagship(repair_bench_results):
    """All three panels at 10 000 nodes in well under two minutes."""
    start = time.perf_counter()
    outcome = RepairExperiment(PAPER_REPAIR).run()
    seconds = time.perf_counter() - start
    _record_rows(repair_bench_results, "repair-paper-scale", PAPER_REPAIR, outcome, seconds)
    assert seconds < 120.0, "the paper-scale repair experiment must stay under ~2 minutes"
    traffic = [row["traffic_gb"] for row in outcome.fraction_rows]
    makespan = [row["makespan_s"] for row in outcome.fraction_rows]
    assert traffic == sorted(traffic)
    assert makespan == sorted(makespan)
    migrate = next(r for r in outcome.ablation_rows if r["mode"] == "migrate")
    regen = next(r for r in outcome.ablation_rows if r["mode"] == "regenerate")
    assert migrate["traffic_gb"] < regen["traffic_gb"]
    repair_bench_results.setdefault("_staged", {})["repair_flagship_seconds"] = seconds
    print(f"\nrepair @ 10 000 nodes: {seconds:.1f}s end-to-end, "
          f"10% burst moves {traffic[-1]:,.0f} GB over {makespan[-1]:,.0f} sim-seconds; "
          f"migration saves {regen['traffic_gb'] - migrate['traffic_gb']:,.0f} GB of traffic")


def test_bench_repair_speedup_summary(repair_bench_results):
    """Promote the staged ratios into ``speedups`` -- the write-guard field.

    Only this test fills the field the conftest session hook requires, so a
    filtered run can never overwrite BENCH_repair.json with a partial record.
    """
    staged = repair_bench_results.pop("_staged", {})
    assert {"repair_small_seconds", "repair_regen_vs_migrate_traffic"} <= set(staged)
    repair_bench_results["speedups"] = staged
