"""Figure 7 — number of failed file stores vs files inserted (PAST / CFS / ours).

Paper (Section 6.1): at the end of the insertion PAST fails 36.0 % of stores,
CFS 15.2 %, the proposed system 5.2 % (improvements of 7.0x and 2.9x).  The
reproduction's absolute percentages depend on the scaled population and on the
baselines' retry policies (see EXPERIMENTS.md), but the proposed system must
fail the least by a wide margin.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_INSERTION_CONFIG
from repro.experiments.results import format_series_table
from repro.experiments.storage_insertion import InsertionExperiment


def test_bench_fig7_failed_stores(benchmark, insertion_outcome):
    """Benchmark the full three-scheme insertion run and report Figure 7."""

    def run_once():
        return InsertionExperiment(BENCH_INSERTION_CONFIG).run()

    outcome = benchmark.pedantic(run_once, rounds=1, iterations=1)
    finals = outcome.final_failed_stores()
    print("\nFigure 7 — failed stores (% of inserted files), final point:")
    print({scheme: round(value, 2) for scheme, value in finals.items()})
    print(
        format_series_table(
            [outcome.curves[s].failed_stores_pct for s in ("PAST", "CFS", "Our System")],
            x_label="files",
        )
    )
    # Shape assertions (the paper's ordering for the headline claim).
    assert finals["Our System"] < finals["CFS"]
    assert finals["Our System"] < finals["PAST"]
    assert finals["Our System"] < 0.5 * min(finals["CFS"], finals["PAST"])
