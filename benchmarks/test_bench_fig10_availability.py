"""Figure 10 — unavailable files vs number of failed nodes, per error coding.

Paper (Section 6.2): failing 1000 of 10 000 nodes without repair leaves the
no-coding configuration worst; the (2,3) XOR code reduces failures by 23 % and
the online code by 32 %, with the online code losing only 1.48 % of files
overall (and almost none up to 866 failed nodes).
"""

from __future__ import annotations

from repro.experiments.availability import AvailabilityConfig, AvailabilityExperiment
from repro.experiments.results import format_series_table

BENCH_CONFIG = AvailabilityConfig(node_count=300, file_count=2000, fail_fraction=0.10, seed=2)


def test_bench_fig10_availability(benchmark):
    """Benchmark the availability experiment and report Figure 10."""

    def run_once():
        return AvailabilityExperiment(BENCH_CONFIG).run()

    series = benchmark.pedantic(run_once, rounds=1, iterations=1)
    print("\nFigure 10 — unavailable files (%) vs failed nodes:")
    print(format_series_table(list(series.values()), x_label="failed_nodes"))
    finals = {label: curve.final() for label, curve in series.items()}
    print("final:", {label: round(value, 2) for label, value in finals.items()})
    assert finals["No error code"] > finals["XOR code"] >= finals["Online code"]
    assert finals["Online code"] < 3.0  # "negligible" in the paper (1.48 %)
    # The online code keeps losses at (almost) zero for most of the failures.
    online = series["Online code"]
    midpoint_value = online.y[len(online.y) // 2]
    assert midpoint_value <= 1.0
