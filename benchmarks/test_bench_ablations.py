"""Ablation benchmarks for the design choices discussed (but not measured) in the paper.

These go beyond the paper's tables/figures and quantify the knobs DESIGN.md
calls out:

* PAST's salted-retry policy (Section 3 describes it; the reported 36 %
  failure rate implies it was ineffective in the original simulation);
* CFS block-size sweep (8 KB in the CFS paper vs 4 MB in this paper's runs);
* the zero-chunk retry limit of the proposed system (set to 5 in the paper);
* per-chunk coding granularity vs whole-file granularity (Section 4.2 argues
  per-chunk coding makes recovery cheap);
* trace-tail sensitivity: with a heavy-tailed (lognormal) trace PAST's
  whole-file placement degrades disproportionately.
"""

from __future__ import annotations

import pytest

from repro.erasure.chunk_codec import ChunkCodec
from repro.erasure.xor_code import XorParityCode
from repro.experiments.storage_insertion import InsertionConfig, InsertionExperiment
from repro.sim.rng import RandomStreams
from repro.workloads.filetrace import MB, FileTraceConfig, generate_file_trace

# Small population, file count derived from the paper's ~63.5 % expected
# utilisation so the system actually comes under storage pressure.
SMALL = dict(node_count=40, file_count=None, sample_points=4)


def _final_failures(config: InsertionConfig) -> dict:
    return InsertionExperiment(config).run().final_failed_stores()


def test_bench_ablation_past_retries(benchmark):
    """PAST's salted retries: a handful of retries all but eliminates failures."""

    def run_once():
        no_retry = _final_failures(InsertionConfig(seed=11, past_retries=0, **SMALL))
        with_retry = _final_failures(InsertionConfig(seed=11, past_retries=3, **SMALL))
        return no_retry, with_retry

    no_retry, with_retry = benchmark.pedantic(run_once, rounds=1, iterations=1)
    print("\nAblation — PAST failure % without vs with 3 salted retries:")
    print(f"  retries=0: {no_retry['PAST']:.2f} %    retries=3: {with_retry['PAST']:.2f} %")
    assert with_retry["PAST"] <= no_retry["PAST"]
    # The proposed system beats PAST in both configurations.
    assert no_retry["Our System"] <= no_retry["PAST"]


def test_bench_ablation_cfs_block_size(benchmark):
    """CFS block size: smaller blocks mean many more look-ups per file."""

    def run_once():
        results = {}
        for block_size in (1 * MB, 4 * MB, 16 * MB):
            config = InsertionConfig(seed=12, cfs_block_size=block_size, **SMALL)
            outcome = InsertionExperiment(config).run()
            stats = outcome.curves["CFS"].chunk_stats
            results[block_size] = stats["mean_chunks_per_file"]
        return results

    chunks_per_file = benchmark.pedantic(run_once, rounds=1, iterations=1)
    print("\nAblation — CFS chunks per file vs block size:")
    for block_size, count in sorted(chunks_per_file.items()):
        print(f"  block {block_size // MB:3d} MB: {count:7.1f} chunks/file")
    assert chunks_per_file[1 * MB] > chunks_per_file[4 * MB] > chunks_per_file[16 * MB]
    # Roughly inversely proportional to the block size.
    assert chunks_per_file[1 * MB] == pytest.approx(4 * chunks_per_file[4 * MB], rel=0.2)


def test_bench_ablation_zero_chunk_limit(benchmark):
    """The zero-chunk retry limit trades look-ups for store success."""

    def run_once():
        results = {}
        for limit in (0, 2, 5, 10):
            config = InsertionConfig(seed=13, zero_chunk_limit=limit, **SMALL)
            results[limit] = _final_failures(config)["Our System"]
        return results

    failures = benchmark.pedantic(run_once, rounds=1, iterations=1)
    print("\nAblation — our system's failure % vs zero-chunk retry limit:")
    for limit, value in sorted(failures.items()):
        print(f"  limit {limit:2d}: {value:6.2f} %")
    # More retries never hurt, and the paper's limit of 5 performs at least as
    # well as giving up immediately.
    assert failures[5] <= failures[0]
    assert failures[10] <= failures[0]


def test_bench_ablation_coding_granularity(benchmark):
    """Per-chunk coding keeps single-block recovery far cheaper than whole-file coding.

    Recovering a lost block requires reading the other blocks of its coding
    group.  Coding within a chunk (the paper's choice) touches one chunk;
    coding across the whole file would touch the entire file.
    """

    def run_once():
        codec = ChunkCodec(XorParityCode(group_size=2), blocks_per_chunk=2)
        file_size = 400 * MB
        chunk_size = 80 * MB
        chunks = file_size // chunk_size
        per_chunk_read = chunk_size  # read the surviving blocks of one chunk
        whole_file_read = file_size  # read the surviving blocks of the file
        return {
            "per_chunk_read_mb": per_chunk_read / MB,
            "whole_file_read_mb": whole_file_read / MB,
            "ratio": whole_file_read / per_chunk_read,
            "chunks": chunks,
            "spec_overhead": codec.spec().size_overhead,
        }

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    print("\nAblation — recovery read cost, per-chunk vs whole-file coding:")
    print(
        f"  per-chunk: {result['per_chunk_read_mb']:.0f} MB   whole-file: "
        f"{result['whole_file_read_mb']:.0f} MB   ratio: {result['ratio']:.1f}x"
    )
    assert result["ratio"] == pytest.approx(result["chunks"], rel=1e-6)
    assert result["spec_overhead"] == pytest.approx(0.5)


def test_bench_ablation_trace_tail_sensitivity(benchmark):
    """With a heavy-tailed trace PAST degrades much more than the proposed system."""

    class HeavyTailExperiment(InsertionExperiment):
        def _build_trace(self, streams: RandomStreams, replication_index: int):
            config = self.config
            trace_config = FileTraceConfig(
                file_count=config.resolved_file_count(),
                mean_size=config.mean_file_size,
                std_size=4 * config.mean_file_size,
                min_size=config.min_file_size,
                model="lognormal",
            )
            return generate_file_trace(trace_config, rng=streams.fresh("trace", replication_index))

    def run_once():
        config = InsertionConfig(seed=14, **SMALL)
        normal = InsertionExperiment(config).run().final_failed_data()
        heavy = HeavyTailExperiment(config).run().final_failed_data()
        return normal, heavy

    normal, heavy = benchmark.pedantic(run_once, rounds=1, iterations=1)
    print("\nAblation — failed data % under the normal vs heavy-tailed trace:")
    print(f"  normal trace: {({k: round(v, 1) for k, v in normal.items()})}")
    print(f"  heavy tail:   {({k: round(v, 1) for k, v in heavy.items()})}")
    # The heavy tail hurts PAST (whole files) more than the proposed system.
    past_degradation = heavy["PAST"] - normal["PAST"]
    assert past_degradation > 0
    assert heavy["Our System"] < heavy["PAST"]
