"""Churn-soak throughput and the compaction memory bound.

Three measurements feed ``BENCH_soak.json`` (printed by
``python -m repro.cli bench``):

* the soak at a seed-feasible scale, scalar path vs ledger path -- same
  seeds, identical sampled series, so the ratio isolates the churn engine
  (ledger failure masks + O(1) sampling vs dict walks);
* the same scale with compaction disabled, to record how many rows the GC
  pass reclaims (the append-only growth the PR 3 follow-up called out);
* the paper-scale flagship: 10 000 nodes under one simulated week of session
  churn plus ~100 membership changes per hour, ledger + compaction only --
  the configuration the seed path cannot practically run.

``events_per_s`` charges the soak phase only (the event loop, excluding the
trace distribution); the memory-bound assertion is the acceptance criterion:
with periodic compaction the ledger's row count stays within a small factor
of the live rows instead of growing with every repair.
"""

from __future__ import annotations

import gc
import time
from dataclasses import replace

import pytest

from repro.experiments.soak import PAPER_SOAK, SoakConfig, SoakExperiment


@pytest.fixture(autouse=True)
def _collect_soak_garbage():
    """Release each soak's cyclic heap (nodes <-> listeners <-> ledger) eagerly.

    The 10 000-node flagship leaves ~10^5 cyclically-referenced objects to the
    generational collector; without an explicit collection the inflated heap
    measurably skews the single-shot timing benchmarks that run after this
    module in a full ``-m bench`` session.
    """
    yield
    gc.collect()

#: Scale where the scalar path is still comfortable, for the seed-vs-ledger ratio.
COMPARE_SOAK = SoakConfig(
    node_count=300,
    file_count=1_000,
    horizon_hours=72.0,
    join_rate_per_hour=2.0,
    leave_rate_per_hour=2.0,
    sample_every_hours=6.0,
    compact_every_hours=24.0,
    seed=8,
)


def _run(config: SoakConfig, scenario: str, pipeline: str, results: dict) -> tuple:
    experiment = SoakExperiment(config)
    start = time.perf_counter()
    result = experiment.run()
    seconds = time.perf_counter() - start
    soak_s = result.timings["soak_s"]
    events = int(result.timings["events"])
    summary = result.summary()
    row = {
        "scenario": scenario,
        "node_count": config.node_count,
        "file_count": config.file_count,
        "sim_days": config.horizon_hours / 24.0,
        "pipeline": pipeline,
        "seconds": seconds,
        "soak_seconds": soak_s,
        "events": events,
        "events_per_s": events / soak_s if soak_s > 0 else 0.0,
        "failures": summary["failures"],
        "joins": summary["joins"],
        "leaves": summary["leaves"],
        "final_unavailable_pct": summary["final_unavailable_pct"],
        "peak_rows": int(summary["peak_ledger_rows"]),
        "peak_live_rows": int(summary["peak_live_rows"]),
        "rows_reclaimed": int(summary["rows_reclaimed"]),
        "peak_column_mb": summary["peak_column_mb"],
    }
    results["results"].append(row)
    return row, result


def test_bench_soak_seed_vs_ledger(soak_bench_results):
    """Seed vs ledger soak at a shared scale: identical series, phase ratio."""
    ledger_row, ledger = _run(COMPARE_SOAK, "soak", "ledger", soak_bench_results)
    scalar_row, scalar = _run(
        replace(COMPARE_SOAK, vectorized=False), "soak", "scalar-seed", soak_bench_results
    )
    assert scalar.unavailable_pct == ledger.unavailable_pct
    assert scalar.live_nodes == ledger.live_nodes
    assert scalar.counters == ledger.counters
    ratio = scalar_row["soak_seconds"] / max(ledger_row["soak_seconds"], 1e-9)
    # Staged, not final: ``speedups`` is assembled only by the summary test so
    # a filtered run can never pass the conftest write guard with a partial
    # record (same invariant as the insertion benchmark).
    soak_bench_results.setdefault("_staged", {})["soak_engine"] = ratio
    print(f"\nsoak: scalar {scalar_row['soak_seconds']:.2f}s vs "
          f"ledger {ledger_row['soak_seconds']:.2f}s ({ratio:,.1f}x)")
    assert ratio > 1.5, "the ledger soak engine should be well ahead of the dict walks"


def test_bench_soak_compaction_reclaim(soak_bench_results):
    """Compaction on vs off at the shared scale: the reclaimed-row record."""
    unbounded_row, unbounded = _run(
        replace(COMPARE_SOAK, compaction=False), "soak", "ledger-no-compaction",
        soak_bench_results,
    )
    compacted = [r for r in soak_bench_results["results"]
                 if r["pipeline"] == "ledger" and r["scenario"] == "soak"]
    assert compacted, "the ledger soak row must be recorded first"
    row = compacted[0]
    assert row["rows_reclaimed"] > 0
    assert row["peak_rows"] <= unbounded_row["peak_rows"]
    soak_bench_results.setdefault("_staged", {})["soak_row_growth_vs_compacted"] = (
        unbounded_row["peak_rows"] / max(row["peak_rows"], 1)
    )


def test_bench_soak_paper_scale_flagship(soak_bench_results):
    """One simulated week at 10 000 nodes: minutes of wall time, bounded memory."""
    row, result = _run(PAPER_SOAK, "soak-paper-scale", "ledger", soak_bench_results)
    summary = result.summary()
    print(f"\nsoak @ 10 000 nodes / {PAPER_SOAK.horizon_hours / 24:.0f} sim-days: "
          f"{row['seconds']:.1f}s end-to-end, {row['events_per_s']:,.0f} events/s, "
          f"{summary['failures']:,.0f} failures, {summary['joins']:,.0f} joins, "
          f"{summary['leaves']:,.0f} leaves")
    print(f"ledger: peak {row['peak_rows']:,} rows vs {row['peak_live_rows']:,} live, "
          f"{row['rows_reclaimed']:,} reclaimed over {summary['compactions']:.0f} compactions, "
          f"peak columns {row['peak_column_mb']:.1f} MB")
    assert row["seconds"] < 600.0, "the paper-scale soak must complete in minutes"
    # Acceptance: bounded ledger memory.  Without compaction the row count
    # grows by ~#repairs (5x live rows over this week); with it the peak
    # stays within a small factor of the live copies.
    assert row["peak_rows"] <= 3 * row["peak_live_rows"]
    assert summary["rows_reclaimed"] > row["peak_live_rows"]
    # The archive must stay essentially available under repair.
    assert summary["max_unavailable_pct"] < 2.0
    assert summary["data_regenerated_gb"] > 1_000.0
    soak_bench_results.setdefault("_staged", {})["soak_flagship_events_per_s"] = row["events_per_s"]


def test_bench_soak_speedup_summary(soak_bench_results):
    """Promote the staged ratios into ``speedups`` -- the write-guard field.

    Only this test fills the field the conftest session hook requires, so a
    filtered run (flagship only, compare only) can never overwrite
    BENCH_soak.json with a partial record.
    """
    staged = soak_bench_results.pop("_staged", {})
    assert {"soak_engine", "soak_row_growth_vs_compacted", "soak_flagship_events_per_s"} <= set(staged)
    assert any(row["scenario"] == "soak-paper-scale" for row in soak_bench_results["results"])
    soak_bench_results["speedups"] = staged
