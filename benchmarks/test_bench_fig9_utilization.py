"""Figure 9 — overall system storage utilisation vs files inserted.

Paper: PAST and CFS under-utilise the system by 30.4 % and 10.7 % relative to
the proposed system.  The reproduction checks that the proposed system ends
with the highest utilisation.
"""

from __future__ import annotations

from repro.experiments.results import format_series_table


def test_bench_fig9_utilization(benchmark, insertion_outcome):
    """Report Figure 9 from the shared insertion run."""

    def extract():
        return insertion_outcome.final_utilization()

    finals = benchmark.pedantic(extract, rounds=1, iterations=1)
    print("\nFigure 9 — overall storage utilisation (%), final point:")
    print({scheme: round(value, 2) for scheme, value in finals.items()})
    print(
        format_series_table(
            [insertion_outcome.curves[s].utilization_pct for s in ("PAST", "CFS", "Our System")],
            x_label="files",
        )
    )
    assert finals["Our System"] >= finals["CFS"]
    assert finals["Our System"] >= finals["PAST"]
