"""Table 1 — number and size of chunks created under CFS and the proposed system.

Paper: CFS produces 61.25 chunks of 4 MB per file on average; the proposed
system 3.72 chunks averaging 81.28 MB — a 16.5x reduction in chunk count.  The
reproduction checks CFS's fixed-chunk statistics exactly and requires at least
a 10x reduction for the proposed system (the exact count depends on how much
capacity probed nodes offer; see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.workloads.filetrace import MB


def test_bench_table1_chunk_statistics(benchmark, insertion_outcome):
    """Report Table 1 from the shared insertion run."""

    def extract():
        return {
            "CFS": insertion_outcome.curves["CFS"].chunk_stats,
            "Our System": insertion_outcome.curves["Our System"].chunk_stats,
        }

    stats = benchmark.pedantic(extract, rounds=1, iterations=1)
    print("\nTable 1 — chunk statistics (per successfully stored file):")
    for scheme, values in stats.items():
        print(
            f"  {scheme:12s} chunks/file {values['mean_chunks_per_file']:7.2f} "
            f"(sd {values['std_chunks_per_file']:6.2f})   "
            f"chunk size {values['mean_chunk_size'] / MB:9.2f} MB "
            f"(sd {values['std_chunk_size'] / MB:8.2f} MB)"
        )
    cfs, ours = stats["CFS"], stats["Our System"]
    assert abs(cfs["mean_chunk_size"] - 4 * MB) < 0.5 * MB
    assert cfs["mean_chunks_per_file"] > 50
    assert ours["mean_chunks_per_file"] < cfs["mean_chunks_per_file"] / 10
    assert ours["mean_chunk_size"] > 10 * cfs["mean_chunk_size"]
