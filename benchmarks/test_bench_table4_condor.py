"""Table 4 — bigCopy wall time on a 32-machine Condor pool, per storage scheme.

Paper: whole-file storage works up to 8 GB and is unavailable ("N/A") from
16 GB onwards because no single machine contributes that much; both chunked
schemes store every size; the fixed-chunk scheme pays a per-chunk p2p lookup
overhead that grows with the file, while the varying-chunk scheme's overhead
is small (under 2.5 % at 8 GB) and it stays faster than fixed chunks for all
large sizes (e.g. 16 426 s vs 20 882 s at 128 GB).
"""

from __future__ import annotations

import math

from repro.experiments.condor_case_study import CondorCaseStudyConfig, run_condor_case_study
from repro.workloads.filetrace import GB

BENCH_CONFIG = CondorCaseStudyConfig(seed=6)


def test_bench_table4_condor_case_study(benchmark):
    """Benchmark the Condor case study and report Table 4."""

    def run_once():
        return run_condor_case_study(BENCH_CONFIG)

    table = benchmark.pedantic(run_once, rounds=1, iterations=1)
    print("\n" + table.format(float_format="{:.1f}"))
    rows = {row["file_size_gb"]: row for row in table.rows}

    # Whole-file scheme: works for small files, impossible from 16 GB up.
    for size in (1.0, 2.0, 4.0, 8.0):
        assert math.isfinite(rows[size]["whole_file_s"])
    for size in (16.0, 32.0, 64.0, 128.0):
        assert math.isnan(rows[size]["whole_file_s"])

    # Chunked schemes always store the copy; varying chunks are never slower.
    for size, row in rows.items():
        assert math.isfinite(row["fixed_chunks_s"])
        assert math.isfinite(row["varying_chunks_s"])
        if size >= 2.0:
            assert row["varying_chunks_s"] <= row["fixed_chunks_s"]

    # Varying-chunk overhead over the whole-file baseline is small and shrinks
    # with file size (paper: 16.8 % at 1 GB down to 2.4 % at 8 GB).
    assert rows[8.0]["varying_overhead_pct"] <= rows[1.0]["varying_overhead_pct"] + 1e-9
    assert rows[8.0]["varying_overhead_pct"] < 5.0

    # At the largest size the fixed-chunk scheme is markedly slower (paper: ~27 %).
    assert rows[128.0]["fixed_chunks_s"] > 1.10 * rows[128.0]["varying_chunks_s"]
