"""Serve-path panels: open-loop Zipf traffic, cache-on vs cache-off.

Two measurements feed ``BENCH_serving.json`` (printed by
``python -m repro.cli bench``):

* the serve-path contrast panel at CI scale -- the full (skew x cache)
  sweep on identical deployments and request traces.  The acceptance
  checks live here: under the hot-spotted Zipf s=1.1 trace, the cached
  serve path sustains at least the direct path's throughput with a
  measurably better p99 read latency and per-holder load balance, the
  gateway caches actually hit, and the popularity trigger promotes the
  head of the catalog; under the mild s=0.8 skew the cache still helps
  but the contrast is smaller (the hot set is wider than the budget);
* the paper-scale flagship: the same four cells at 10 000 nodes behind
  the 4:1 core, well under five minutes on one core.

The recorded ``speedups`` entries are the flagship's p99 and
load-imbalance improvements (direct / cached at s=1.1), its sustained
cached throughput, and the panel wall times -- the cross-PR trajectory
of the serving subsystem.
"""

from __future__ import annotations

import time

from repro.experiments.serving import (
    PAPER_SERVING,
    SMOKE_SERVING,
    ServingConfig,
    ServingExperiment,
)

#: CI scale: the tier-1 smoke configuration, which already exhibits the
#: full qualitative contrast (hot-spotted direct reads saturate the head
#: of the catalog's primaries; caches absorb the repeats).
SMALL_SERVING = SMOKE_SERVING

#: The 10k flagship runs the full sweep: both skews, cache on and off.
FLAGSHIP_SERVING = PAPER_SERVING


def _record_rows(results: dict, prefix: str, config: ServingConfig,
                 outcome, seconds: float) -> None:
    for row in outcome.rows:
        # ``**row`` first: its bare "scenario" must not clobber the prefixed
        # one (both row groups share scenario names in the trajectory).
        results["results"].append({
            **row, "scenario": f"{prefix}-{row['scenario']}",
            "node_count": config.node_count, "seconds": seconds,
        })


def _assert_serve_contrast(outcome) -> None:
    """The acceptance oracles shared by the CI panel and the flagship."""
    direct_hot = outcome.cell(1.1, cache_on=False)
    cached_hot = outcome.cell(1.1, cache_on=True)
    direct_mild = outcome.cell(0.8, cache_on=False)
    cached_mild = outcome.cell(0.8, cache_on=True)

    # Every cell completed its whole trace: open-loop, nothing dropped.
    for row in (direct_hot, cached_hot, direct_mild, cached_mild):
        assert row["completed"] == row["requests"]
        assert row["failed_reads"] == 0.0 and row["failed_writes"] == 0.0
    # Direct cells have no cache and no promotions by construction.
    assert direct_hot["cache_hit_pct"] == 0.0
    assert direct_hot["promotions"] == 0.0

    # The flagship claim: under the hot-spotted skew the cached path
    # sustains at least the direct throughput with a measurably better
    # p99 read tail and per-holder load balance...
    assert cached_hot["sustained_req_s"] >= direct_hot["sustained_req_s"]
    assert cached_hot["read_p99_s"] < 0.8 * direct_hot["read_p99_s"]
    assert cached_hot["load_imbalance_x"] < direct_hot["load_imbalance_x"]
    # ...because the gateway caches actually hit and the popularity
    # trigger pushed extra replicas of the head of the catalog.
    assert cached_hot["cache_hit_pct"] > 10.0
    assert cached_hot["promotions"] > 0.0
    # Under the mild skew the hot set is wider than the cache budget, so
    # the p99 contrast is real but smaller than the hot-spotted one.
    assert cached_mild["read_p99_s"] <= direct_mild["read_p99_s"]
    hot_gain = direct_hot["read_p99_s"] / cached_hot["read_p99_s"]
    mild_gain = direct_mild["read_p99_s"] / max(cached_mild["read_p99_s"], 1e-9)
    assert hot_gain > mild_gain


def test_bench_serving_contrast_panels(serving_bench_results):
    """The serve-path oracles at CI scale, recorded into the trajectory."""
    start = time.perf_counter()
    outcome = ServingExperiment(SMALL_SERVING).run()
    seconds = time.perf_counter() - start
    _record_rows(serving_bench_results, "serving", SMALL_SERVING, outcome,
                 seconds)
    _assert_serve_contrast(outcome)

    cached_hot = outcome.cell(1.1, cache_on=True)
    direct_hot = outcome.cell(1.1, cache_on=False)
    staged = serving_bench_results.setdefault("_staged", {})
    staged["serving_small_seconds"] = seconds
    print(f"\nserve panels @ {SMALL_SERVING.node_count} nodes: {seconds:.2f}s; "
          f"s=1.1 p99 {direct_hot['read_p99_s']:.2f}s direct vs "
          f"{cached_hot['read_p99_s']:.2f}s cached, "
          f"hit {cached_hot['cache_hit_pct']:.1f}%, "
          f"imbalance {direct_hot['load_imbalance_x']:.1f}x vs "
          f"{cached_hot['load_imbalance_x']:.1f}x")


def test_bench_serving_paper_scale_flagship(serving_bench_results):
    """The full sweep at 10 000 nodes behind the 4:1 core.

    The headline serve-path claim at paper scale: under Zipf s=1.1 the
    per-gateway caches plus hot-file replication sustain the offered
    load with a measurably better p99 read latency and per-holder load
    balance than the direct path, which the oracle tests pin as exactly
    plain ``retrieve_file`` traffic.
    """
    start = time.perf_counter()
    outcome = ServingExperiment(FLAGSHIP_SERVING).run()
    seconds = time.perf_counter() - start
    _record_rows(serving_bench_results, "serving-paper-scale",
                 FLAGSHIP_SERVING, outcome, seconds)
    assert seconds < 300.0, "the 10k-node serve cells must stay under ~5 minutes"
    _assert_serve_contrast(outcome)

    direct_hot = outcome.cell(1.1, cache_on=False)
    cached_hot = outcome.cell(1.1, cache_on=True)
    staged = serving_bench_results.setdefault("_staged", {})
    staged["serving_flagship_seconds"] = seconds
    staged["serving_flagship_sustained_req_per_s"] = cached_hot["sustained_req_s"]
    staged["serving_flagship_p99_improvement"] = (
        direct_hot["read_p99_s"] / cached_hot["read_p99_s"])
    staged["serving_flagship_balance_improvement"] = (
        direct_hot["load_imbalance_x"] / cached_hot["load_imbalance_x"])
    print(f"\nserve @ 10 000 nodes behind a 4:1 core: {seconds:.1f}s wall; "
          f"s=1.1 sustains {cached_hot['sustained_req_s']:.1f} req/s cached "
          f"(p99 {cached_hot['read_p99_s']:.2f}s vs "
          f"{direct_hot['read_p99_s']:.2f}s direct, "
          f"{staged['serving_flagship_p99_improvement']:.1f}x better; "
          f"hit {cached_hot['cache_hit_pct']:.1f}%, "
          f"{cached_hot['promotions']:.0f} promotions)")


def test_bench_serving_speedup_summary(serving_bench_results):
    """Promote the staged ratios into ``speedups`` -- the write-guard field.

    Only this test fills the field the conftest session hook requires, so a
    filtered run can never overwrite BENCH_serving.json with a partial record.
    """
    staged = serving_bench_results.pop("_staged", {})
    assert {"serving_small_seconds", "serving_flagship_seconds",
            "serving_flagship_sustained_req_per_s",
            "serving_flagship_p99_improvement"} <= set(staged)
    serving_bench_results["speedups"] = staged
