"""Fault-injection panels: correlated outages, repair, degraded reads.

Two measurements feed ``BENCH_faults.json`` (printed by
``python -m repro.cli bench``):

* the scenario panels at a CI-feasible scale -- the acceptance checks live
  here: a whole-rack outage must be loss-free (round-robin striping puts a
  placement's copies in distinct racks) and re-replicate every eroded
  placement back to target; a site outage must kill ledger rows with one
  correlated domain mask; the unrepaired flash crowd must surface degraded
  reads that the repaired run has healed; and repairing through degraded
  links must stretch the repair makespan;
* the paper-scale flagship: every scenario at 10 000 nodes, well under five
  minutes on one core.

The recorded ``speedups`` entries are the degraded-link makespan ratio and
the panel wall times -- the cross-PR trajectory of the robustness subsystem.
"""

from __future__ import annotations

import time

from repro.experiments.faults import PAPER_FAULTS, FaultsConfig, FaultsExperiment
from repro.workloads.filetrace import MB

#: CI-feasible scale: every scenario in a few seconds, same structure as
#: paper scale.  The hotter 25 % flash crowd makes the degraded-read census
#: non-trivial at this population size.
SMALL_FAULTS = FaultsConfig(
    node_count=300,
    capacity_mean=400 * MB,
    capacity_std=100 * MB,
    file_count=800,
    mean_file_size=24 * MB,
    std_file_size=8 * MB,
    min_file_size=4 * MB,
    flash_fraction=0.25,
    repair_spacing_s=0.0,
    restart_count=8,
    restart_interval_s=10.0,
    restart_downtime_s=20.0,
    read_sample=400,
    seed=7,
)


def _record_rows(results: dict, scenario_prefix: str, config: FaultsConfig,
                 outcome, seconds: float) -> None:
    for row in outcome.rows:
        entry = {"scenario": f"{scenario_prefix}-{row['scenario']}",
                 "node_count": config.node_count, "seconds": seconds, **row}
        entry.pop("distribute_s", None)
        entry.pop("inject_s", None)
        results["results"].append(entry)


def test_bench_faults_scenario_panels(faults_bench_results):
    """The durability oracles at CI scale, recorded into the trajectory."""
    start = time.perf_counter()
    outcome = FaultsExperiment(SMALL_FAULTS).run()
    seconds = time.perf_counter() - start
    _record_rows(faults_bench_results, "faults", SMALL_FAULTS, outcome, seconds)

    site = outcome.row("site_outage")
    rack = outcome.row("rack_outage")
    crowd = outcome.row("flash_crowd")
    wounded = outcome.row("flash_crowd_unrepaired")
    restart = outcome.row("rolling_restart")
    degraded = outcome.row("degraded_rack_outage")

    # Correlated outages kill ledger rows through the one-mask domain kill.
    assert site["rows_killed"] > 0 and rack["rows_killed"] > 0
    # Round-robin striping keeps a placement's copies in distinct racks: a
    # single-rack outage is loss-free and repair closes the erosion debt.
    assert rack["lost_gb"] == 0.0 and rack["chunks_lost"] == 0.0
    assert rack["replicas_restored"] > 0
    assert rack["availability_pct"] == 100.0
    # A whole site spans several racks, so it can (and here does) lose data.
    assert site["nodes_down"] > rack["nodes_down"]
    assert site["traffic_gb"] > rack["traffic_gb"]
    # Repair never resurrects lost chunks: availability matches the
    # unrepaired twin (same flash-crowd membership), but the survivors'
    # redundancy is healed -- no degraded reads remain after repair.
    assert crowd["availability_pct"] == wounded["availability_pct"]
    assert wounded["degraded_reads"] > 0
    assert crowd["degraded_reads"] == 0.0
    assert wounded["traffic_gb"] == 0.0 and crowd["traffic_gb"] > 0.0
    # Reboots (wipe=False) revive the rows: nothing to repair, nothing lost.
    assert restart["availability_pct"] == 100.0
    assert restart["traffic_gb"] == 0.0
    # Repairing through 25 %-speed links stretches the repair tail.
    assert degraded["makespan_s"] > rack["makespan_s"]

    staged = faults_bench_results.setdefault("_staged", {})
    staged["faults_small_seconds"] = seconds
    staged["faults_degraded_makespan"] = degraded["makespan_s"] / rack["makespan_s"]
    print(f"\nfault panels @ {SMALL_FAULTS.node_count} nodes: {seconds:.2f}s; "
          f"site outage lost {site['lost_gb']:.2f} GB, rack outage lost 0; "
          f"degraded links stretch repair {staged['faults_degraded_makespan']:.2f}x")


def test_bench_faults_paper_scale_flagship(faults_bench_results):
    """Every scenario at 10 000 nodes in well under five minutes."""
    start = time.perf_counter()
    outcome = FaultsExperiment(PAPER_FAULTS).run()
    seconds = time.perf_counter() - start
    _record_rows(faults_bench_results, "faults-paper-scale", PAPER_FAULTS,
                 outcome, seconds)
    assert seconds < 300.0, "the paper-scale fault panels must stay under ~5 minutes"

    rack = outcome.row("rack_outage")
    site = outcome.row("site_outage")
    wounded = outcome.row("flash_crowd_unrepaired")
    assert rack["lost_gb"] == 0.0 and rack["replicas_restored"] > 0
    assert site["rows_killed"] > 0 and site["nodes_down"] >= 2000
    assert wounded["degraded_reads"] > 0
    faults_bench_results.setdefault("_staged", {})["faults_flagship_seconds"] = seconds
    print(f"\nfaults @ 10 000 nodes: {seconds:.1f}s end-to-end; site outage downs "
          f"{site['nodes_down']:,.0f} nodes, loses {site['lost_gb']:,.1f} GB, repairs "
          f"{site['traffic_gb']:,.1f} GB of traffic in {site['makespan_s']:,.0f} sim-s")


def test_bench_faults_speedup_summary(faults_bench_results):
    """Promote the staged ratios into ``speedups`` -- the write-guard field.

    Only this test fills the field the conftest session hook requires, so a
    filtered run can never overwrite BENCH_faults.json with a partial record.
    """
    staged = faults_bench_results.pop("_staged", {})
    assert {"faults_small_seconds", "faults_degraded_makespan"} <= set(staged)
    faults_bench_results["speedups"] = staged
