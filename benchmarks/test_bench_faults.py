"""Fault-injection panels: correlated outages, repair, degraded reads.

Two measurements feed ``BENCH_faults.json`` (printed by
``python -m repro.cli bench``):

* the scenario panels at a CI-feasible scale -- the acceptance checks live
  here: a whole-rack outage must be loss-free (round-robin striping puts a
  placement's copies in distinct racks) and re-replicate every eroded
  placement back to target; a site outage must kill ledger rows with one
  correlated domain mask; the unrepaired flash crowd must surface degraded
  reads that the repaired run has healed; and repairing through degraded
  links must stretch the repair makespan;
* the paper-scale flagship: every scenario at 10 000 nodes, well under five
  minutes on one core.

The recorded ``speedups`` entries are the degraded-link makespan ratio and
the panel wall times -- the cross-PR trajectory of the robustness subsystem.
"""

from __future__ import annotations

import time

from dataclasses import replace

from repro.experiments.faults import (
    FINITE_CORE_FAULTS,
    FINITE_CORE_SCENARIOS,
    PAPER_FAULTS,
    FaultsConfig,
    FaultsExperiment,
)
from repro.workloads.filetrace import MB

#: CI-feasible scale: every scenario in a few seconds, same structure as
#: paper scale.  The hotter 25 % flash crowd makes the degraded-read census
#: non-trivial at this population size.
SMALL_FAULTS = FaultsConfig(
    node_count=300,
    capacity_mean=400 * MB,
    capacity_std=100 * MB,
    file_count=800,
    mean_file_size=24 * MB,
    std_file_size=8 * MB,
    min_file_size=4 * MB,
    flash_fraction=0.25,
    repair_spacing_s=0.0,
    restart_count=8,
    restart_interval_s=10.0,
    restart_downtime_s=20.0,
    read_sample=400,
    seed=7,
)

#: The CI-scale panels behind a 4:1 oversubscribed two-stage core: same
#: population and scenarios as :data:`SMALL_FAULTS` plus the recovery-storm
#: isolation cell, with repair paced through a 32-transfer window at half
#: foreground weight.
SMALL_FINITE_CORE = replace(
    SMALL_FAULTS,
    oversubscription=4.0,
    repair_window=32,
    repair_weight=0.5,
    foreground_reads=80,
    foreground_period_s=1.0,
    scenarios=FINITE_CORE_SCENARIOS,
)


def _record_rows(results: dict, scenario_prefix: str, config: FaultsConfig,
                 outcome, seconds: float) -> None:
    for row in outcome.rows:
        # ``**row`` first: its bare "scenario" must not clobber the prefixed
        # one (three row groups share scenario names in the trajectory).
        entry = {**row, "scenario": f"{scenario_prefix}-{row['scenario']}",
                 "node_count": config.node_count, "seconds": seconds}
        entry.pop("distribute_s", None)
        entry.pop("inject_s", None)
        results["results"].append(entry)


def test_bench_faults_scenario_panels(faults_bench_results):
    """The durability oracles at CI scale, recorded into the trajectory."""
    start = time.perf_counter()
    outcome = FaultsExperiment(SMALL_FAULTS).run()
    seconds = time.perf_counter() - start
    _record_rows(faults_bench_results, "faults", SMALL_FAULTS, outcome, seconds)

    site = outcome.row("site_outage")
    rack = outcome.row("rack_outage")
    crowd = outcome.row("flash_crowd")
    wounded = outcome.row("flash_crowd_unrepaired")
    restart = outcome.row("rolling_restart")
    degraded = outcome.row("degraded_rack_outage")

    # Correlated outages kill ledger rows through the one-mask domain kill.
    assert site["rows_killed"] > 0 and rack["rows_killed"] > 0
    # Round-robin striping keeps a placement's copies in distinct racks: a
    # single-rack outage is loss-free and repair closes the erosion debt.
    assert rack["lost_gb"] == 0.0 and rack["chunks_lost"] == 0.0
    assert rack["replicas_restored"] > 0
    assert rack["availability_pct"] == 100.0
    # A whole site spans several racks, so it can (and here does) lose data.
    assert site["nodes_down"] > rack["nodes_down"]
    assert site["traffic_gb"] > rack["traffic_gb"]
    # Repair never resurrects lost chunks: availability matches the
    # unrepaired twin (same flash-crowd membership), but the survivors'
    # redundancy is healed -- no degraded reads remain after repair.
    assert crowd["availability_pct"] == wounded["availability_pct"]
    assert wounded["degraded_reads"] > 0
    assert crowd["degraded_reads"] == 0.0
    assert wounded["traffic_gb"] == 0.0 and crowd["traffic_gb"] > 0.0
    # Reboots (wipe=False) revive the rows: nothing to repair, nothing lost.
    assert restart["availability_pct"] == 100.0
    assert restart["traffic_gb"] == 0.0
    # Repairing through 25 %-speed links stretches the repair tail.
    assert degraded["makespan_s"] > rack["makespan_s"]

    staged = faults_bench_results.setdefault("_staged", {})
    staged["faults_small_seconds"] = seconds
    staged["faults_degraded_makespan"] = degraded["makespan_s"] / rack["makespan_s"]
    print(f"\nfault panels @ {SMALL_FAULTS.node_count} nodes: {seconds:.2f}s; "
          f"site outage lost {site['lost_gb']:.2f} GB, rack outage lost 0; "
          f"degraded links stretch repair {staged['faults_degraded_makespan']:.2f}x")


def test_bench_faults_paper_scale_flagship(faults_bench_results):
    """Every scenario at 10 000 nodes in well under five minutes."""
    start = time.perf_counter()
    outcome = FaultsExperiment(PAPER_FAULTS).run()
    seconds = time.perf_counter() - start
    _record_rows(faults_bench_results, "faults-paper-scale", PAPER_FAULTS,
                 outcome, seconds)
    assert seconds < 300.0, "the paper-scale fault panels must stay under ~5 minutes"

    rack = outcome.row("rack_outage")
    site = outcome.row("site_outage")
    wounded = outcome.row("flash_crowd_unrepaired")
    assert rack["lost_gb"] == 0.0 and rack["replicas_restored"] > 0
    assert site["rows_killed"] > 0 and site["nodes_down"] >= 2000
    assert wounded["degraded_reads"] > 0
    faults_bench_results.setdefault("_staged", {})["faults_flagship_seconds"] = seconds
    print(f"\nfaults @ 10 000 nodes: {seconds:.1f}s end-to-end; site outage downs "
          f"{site['nodes_down']:,.0f} nodes, loses {site['lost_gb']:,.1f} GB, repairs "
          f"{site['traffic_gb']:,.1f} GB of traffic in {site['makespan_s']:,.0f} sim-s")


def test_bench_faults_finite_core_panels(faults_bench_results):
    """Every scenario re-run behind the 4:1 two-stage core, plus the storm.

    The acceptance checks: finite trunks actually constrain the repair storm
    (non-zero peak trunk utilization, a non-empty admission queue), repair
    reaches exactly the depth the access-only model reaches (the congested
    core delays repair, it never strands extra rows), and the foreground
    retrieve p95 stays bounded while the site-outage storm drains.
    """
    start = time.perf_counter()
    outcome = FaultsExperiment(SMALL_FINITE_CORE).run()
    seconds = time.perf_counter() - start
    _record_rows(faults_bench_results, "faults-finite-core", SMALL_FINITE_CORE,
                 outcome, seconds)

    site = outcome.row("site_outage")
    rack = outcome.row("rack_outage")
    storm = outcome.row("storm_site_outage")

    assert all(row["oversub"] == 4.0 for row in outcome.rows)
    # The core is finite and busy: the hottest trunk carries real load.
    assert site["trunk_util_pct"] > 0.0
    # Single-rack outage stays loss-free and fully repaired behind the core.
    assert rack["lost_gb"] == 0.0 and rack["under_target_rows"] == 0.0
    # The bounded repair window queued the storm instead of dropping it...
    assert storm["storm_queue_peak"] > 0.0
    assert storm["transfers_failed"] == site["transfers_failed"]
    # ...and repair still reaches the same depth as the plain site outage.
    assert storm["under_target_rows"] == site["under_target_rows"]
    # Foreground probes completed during the storm with a bounded tail.
    assert storm["foreground_reads_done"] > 0.0
    assert 0.0 < storm["foreground_p95_s"] < storm["makespan_s"]

    staged = faults_bench_results.setdefault("_staged", {})
    staged["faults_finite_core_seconds"] = seconds
    staged["faults_storm_queue_peak"] = storm["storm_queue_peak"]
    staged["faults_storm_foreground_p95_s"] = storm["foreground_p95_s"]
    print(f"\nfinite-core panels @ {SMALL_FINITE_CORE.node_count} nodes: "
          f"{seconds:.2f}s; storm queue peak {storm['storm_queue_peak']:.0f}, "
          f"foreground p95 {storm['foreground_p95_s']:.2f}s over a "
          f"{storm['makespan_s']:.0f} sim-s repair storm")


def test_bench_faults_oversubscription_sweep(faults_bench_results):
    """Time-to-repair of one site outage vs the core oversubscription ratio."""
    start = time.perf_counter()
    sweep = FaultsExperiment(SMALL_FAULTS).oversubscription_sweep(
        ratios=(1.0, 2.0, 4.0, 8.0)
    )
    seconds = time.perf_counter() - start
    for row in sweep:
        faults_bench_results["results"].append({
            "scenario": f"ttr-vs-oversubscription-{row['oversub']:g}to1",
            "node_count": SMALL_FAULTS.node_count,
            "seconds": seconds,
            **row,
        })
    # A hotter core can only slow the storm down: the repair makespan is
    # non-decreasing in the ratio, and the 8:1 core is measurably slower
    # than the non-blocking 1:1 core.
    makespans = [row["makespan_s"] for row in sweep]
    assert makespans == sorted(makespans)
    assert makespans[-1] > makespans[0]
    staged = faults_bench_results.setdefault("_staged", {})
    staged["faults_ttr_oversub_stretch"] = makespans[-1] / makespans[0]
    print(f"\nTTR vs oversubscription @ {SMALL_FAULTS.node_count} nodes: "
          + ", ".join(f"{row['oversub']:g}:1 -> {row['makespan_s']:.0f} sim-s"
                      for row in sweep)
          + f"; 8:1 stretches repair {staged['faults_ttr_oversub_stretch']:.2f}x")


def test_bench_faults_finite_core_flagship(faults_bench_results):
    """Recovery-storm isolation at 10 000 nodes behind a 4:1 core.

    The headline robustness claim: a whole-site outage (a quarter of the
    population) repairs to full depth through a 64-transfer admission window
    at half foreground weight, while foreground retrieves issued during the
    storm keep a bounded p95.  "Full depth" is measured against an
    access-only twin of the same outage: the congested core delays the storm
    but strands not one extra row below target.
    """
    config = replace(FINITE_CORE_FAULTS, scenarios=("storm_site_outage",))
    start = time.perf_counter()
    outcome = FaultsExperiment(config).run()
    seconds = time.perf_counter() - start
    _record_rows(faults_bench_results, "faults-paper-scale", config,
                 outcome, seconds)
    assert seconds < 300.0, "the 10k-node storm cell must stay under ~5 minutes"

    twin = FaultsExperiment(
        replace(PAPER_FAULTS, scenarios=("site_outage",))
    ).run().row("site_outage")

    storm = outcome.row("storm_site_outage")
    assert storm["nodes_down"] >= 2000
    # Repair completes: the histogram is back to target exactly as deep as
    # instantaneous-core repair gets it (the small residue is placements the
    # survivors cannot legally host, identical in both runs).
    assert storm["under_target_rows"] == twin["under_target_rows"]
    assert storm["under_target_rows"] < 0.01 * storm["rows_killed"]
    # The storm was real -- admission control queued it, nothing dropped.
    assert storm["storm_queue_peak"] > 0.0
    assert storm["transfers_failed"] == 0.0
    # Foreground p95 stays bounded while the storm drains: the paced repair
    # class cannot starve foreground reads for the length of the makespan.
    assert storm["foreground_reads_done"] > 0.0
    assert 0.0 < storm["foreground_p95_s"] < 0.1 * storm["makespan_s"]
    staged = faults_bench_results.setdefault("_staged", {})
    staged["faults_finite_core_flagship_seconds"] = seconds
    print(f"\nstorm @ 10 000 nodes behind a 4:1 core: {seconds:.1f}s wall; "
          f"repairs {storm['traffic_gb']:,.1f} GB in {storm['makespan_s']:,.0f} "
          f"sim-s (queue peak {storm['storm_queue_peak']:,.0f}), foreground "
          f"p95 {storm['foreground_p95_s']:.2f}s")


def test_bench_faults_speedup_summary(faults_bench_results):
    """Promote the staged ratios into ``speedups`` -- the write-guard field.

    Only this test fills the field the conftest session hook requires, so a
    filtered run can never overwrite BENCH_faults.json with a partial record.
    """
    staged = faults_bench_results.pop("_staged", {})
    assert {"faults_small_seconds", "faults_degraded_makespan",
            "faults_finite_core_seconds", "faults_ttr_oversub_stretch"} <= set(staged)
    faults_bench_results["speedups"] = staged
