"""Routing-fabric panels: batched Pastry/Chord lookups over array columns.

Two measurements feed ``BENCH_routing.json`` (printed by
``python -m repro.cli bench``):

* the CI-scale panel -- the full hops-vs-N sweep, the Chord-vs-Pastry
  churn head-to-head, and the seed-vs-array speedup cell.  The
  acceptance checks live here: the array engine's hop counts match the
  seed scalar router lookup-for-lookup (``hop_identity_mismatches ==
  0``), the engine columns keep their declared dtypes (int32 slots,
  uint8 digits), Pastry's prefix routing beats Chord's ring walk on
  hops, and the vectorized table build plus ``route_many`` beat the
  seed's O(N^2) build and scalar loop outright;
* the paper-scale flagship: batched lookups at 10 000 nodes, with the
  memory-accounting oracle -- the routing columns extrapolate to under
  the 256 MB budget at 100 000 nodes.

The recorded ``speedups`` entries are the seed-vs-array build and route
ratios, the flagship's routes/s per engine, and the panel wall times --
the cross-PR trajectory of the routing fabric.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.routing import (
    PAPER_ROUTING,
    SMOKE_ROUTING,
    RoutingExperiment,
)
from repro.overlay.engine_chord import ChordArrayRouter
from repro.overlay.engine_pastry import PastryArrayRouter
from repro.overlay.network import OverlayNetwork
from repro.sim.rng import RandomStreams

#: Extrapolated per-engine column budget at 100 000 nodes.
MEMORY_BUDGET_100K_BYTES = 256 * 1024 * 1024

#: Headroom factor for the extrapolation (Pastry gains ~one table row per
#: 16x population growth, so bytes/node at 100k exceeds bytes/node at 10k).
EXTRAPOLATION_HEADROOM = 1.5


def _record_rows(results: dict, prefix: str, outcome, seconds: float) -> None:
    for row in outcome.panel_rows:
        results["results"].append(
            {**row, "engine": f"{prefix}-{row['engine']}", "seconds": seconds})


def _assert_routing_contrast(outcome) -> None:
    """The acceptance oracles shared by the CI panel and the flagship."""
    summary = outcome.summary()
    # Load-bearing: the array engine's hop counts are identical to the
    # seed scalar router's over the same population and lookups (the
    # oracle suite pins the full paths; the panel re-checks the counts).
    assert summary["hop_identity_mismatches"] == 0.0
    # The perf claim: vectorized construction and batched routing beat
    # the seed's O(N^2) build and scalar hop loop outright.
    assert summary["build_speedup_x"] > 1.0
    assert summary["route_speedup_x"] > 1.0
    # Pastry resolves in ~log16 N prefix hops; Chord walks ~(log2 N)/2
    # ring steps -- the head-to-head must show the expected ordering.
    by_engine = {}
    for row in outcome.panel_rows:
        by_engine.setdefault(row["engine"], []).append(row)
    if "pastry" in by_engine and "chord" in by_engine:
        for pastry_row, chord_row in zip(by_engine["pastry"], by_engine["chord"]):
            assert pastry_row["avg_hops"] < chord_row["avg_hops"]
    # Routing under churn stays functional with bounded hop inflation:
    # incremental table repair, not a rebuild, keeps lookups converging.
    fresh = {row["engine"]: row for row in outcome.churn_rows
             if row["phase"] == "fresh"}
    churned = {row["engine"]: row for row in outcome.churn_rows
               if row["phase"] == "churned"}
    for engine, row in churned.items():
        assert row["avg_hops"] <= fresh[engine]["avg_hops"] + 1.0


def _assert_column_dtypes(network) -> None:
    """The dtype audit: int32 slot columns, uint8 digit views."""
    pastry = network.attach_router("pastry", dispatch=False)
    chord = network.attach_router("chord", dispatch=False)
    assert isinstance(pastry, PastryArrayRouter)
    assert isinstance(chord, ChordArrayRouter)
    assert pastry._table.dtype == np.int32
    assert pastry._digits.dtype == np.uint8
    assert chord._fingers.dtype == np.int32
    assert chord._succ.dtype == np.int32


def test_bench_routing_contrast_panels(routing_bench_results):
    """The routing oracles at CI scale, recorded into the trajectory."""
    start = time.perf_counter()
    outcome = RoutingExperiment(SMOKE_ROUTING).run()
    seconds = time.perf_counter() - start
    _record_rows(routing_bench_results, "routing", outcome, seconds)
    _assert_routing_contrast(outcome)

    network = OverlayNetwork.build(
        SMOKE_ROUTING.node_count, RandomStreams(SMOKE_ROUTING.seed).fresh("audit"),
        routing_state=False)
    _assert_column_dtypes(network)

    summary = outcome.summary()
    staged = routing_bench_results.setdefault("_staged", {})
    staged["routing_small_seconds"] = seconds
    staged["routing_build_speedup"] = summary["build_speedup_x"]
    staged["routing_route_speedup"] = summary["route_speedup_x"]
    print(f"\nrouting panels @ {max(SMOKE_ROUTING.population_sweep)} nodes: "
          f"{seconds:.2f}s; seed-vs-array build {summary['build_speedup_x']:.1f}x, "
          f"route {summary['route_speedup_x']:.1f}x, "
          f"hop mismatches {summary['hop_identity_mismatches']:.0f}")


def test_bench_routing_10000_node_flagship(routing_bench_results):
    """Batched lookups at 10 000 nodes: the paper-scale flagship.

    The headline routing claim: the array-backed tables route thousands
    of lookups per second at 10 000 nodes in ~log16 N hops, Chord rides
    the same harness, and the column footprint extrapolates to under the
    256 MB budget at 100 000 nodes.
    """
    start = time.perf_counter()
    outcome = RoutingExperiment(PAPER_ROUTING).run()
    seconds = time.perf_counter() - start
    _record_rows(routing_bench_results, "routing-paper-scale", outcome, seconds)
    assert seconds < 300.0, "the 10k-node routing panels must stay under ~5 minutes"
    _assert_routing_contrast(outcome)

    summary = outcome.summary()
    flagship = float(max(PAPER_ROUTING.population_sweep))
    for engine in PAPER_ROUTING.engines:
        # ~log16 N for Pastry, ~(log2 N)/2 for Chord, both well under 10.
        assert summary[f"{engine}_avg_hops"] < 10.0
        assert summary[f"{engine}_routes_per_s"] > 1_000.0
        extrapolated = (summary[f"{engine}_bytes_per_node"]
                        * 100_000 * EXTRAPOLATION_HEADROOM)
        assert extrapolated < MEMORY_BUDGET_100K_BYTES, (
            f"{engine} columns extrapolate to {extrapolated / 1e6:.0f} MB "
            f"at 100k nodes")

    staged = routing_bench_results.setdefault("_staged", {})
    staged["routing_flagship_seconds"] = seconds
    for engine in PAPER_ROUTING.engines:
        staged[f"routing_{engine}_routes_per_s"] = summary[f"{engine}_routes_per_s"]
        staged[f"routing_{engine}_build_seconds"] = summary[f"{engine}_build_seconds"]
    print(f"\nrouting @ {flagship:.0f} nodes: {seconds:.1f}s wall; "
          + "; ".join(
              f"{engine} {summary[f'{engine}_routes_per_s']:,.0f} routes/s "
              f"(avg {summary[f'{engine}_avg_hops']:.2f} hops, "
              f"build {summary[f'{engine}_build_seconds']:.1f}s, "
              f"{summary[f'{engine}_bytes_per_node']:.0f} B/node)"
              for engine in PAPER_ROUTING.engines))


def test_bench_routing_speedup_summary(routing_bench_results):
    """Promote the staged ratios into ``speedups`` -- the write-guard field.

    Only this test fills the field the conftest session hook requires, so a
    filtered run can never overwrite BENCH_routing.json with a partial record.
    """
    staged = routing_bench_results.pop("_staged", {})
    assert {"routing_small_seconds", "routing_flagship_seconds",
            "routing_build_speedup", "routing_route_speedup"} <= set(staged)
    routing_bench_results["speedups"] = staged
