"""Coding-kernel throughput sweep: codes x chunk sizes, new vs seed baselines.

The vectorized GF(2)/GF(256) kernel (PR 1) is the repo's hottest layer: every
experiment, benchmark and repair path pays for encode/decode.  This module
sweeps the four codes over 64 KiB - 4 MiB chunks, measures MB/s for encode and
for decode (with erasures for Reed-Solomon, so the matrix-inversion path is
exercised), and measures the *preserved seed implementations*
(:mod:`repro.erasure._legacy`) on the same machine so the recorded speedups
are honest.  A session hook (``benchmarks/conftest.py``) writes everything to
``BENCH_coding.json`` — the perf trajectory tracked across PRs.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

import numpy as np
import pytest

from repro.erasure._legacy import LegacyOnlineCode, LegacyReedSolomonCode
from repro.erasure.online_code import OnlineCode, OnlineCodeParameters
from repro.erasure.null_code import NullCode
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.xor_code import XorParityCode

KB = 1 << 10
MB = 1 << 20

CHUNK_SIZES = (64 * KB, 256 * KB, 1 * MB, 4 * MB)

#: The acceptance configuration: online code at >= 256 blocks.
ONLINE_BLOCK_COUNTS = (256, 512)
RS_DATA_BLOCKS = 64
RS_PARITY_BLOCKS = 4
SEED = 3


def _payload(size: int) -> bytes:
    return np.random.default_rng(SEED).integers(0, 256, size=size, dtype=np.uint8).tobytes()


def _best_seconds(fn: Callable[[], object], repetitions: int = 3) -> float:
    fn()  # warm caches: code graphs, decode programs, generator matrices
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_pair(
    encode: Callable[[], object], decode: Callable[[], object], size: int
) -> Dict[str, float]:
    encode_s = _best_seconds(encode)
    decode_s = _best_seconds(decode)
    return {
        "encode_s": encode_s,
        "decode_s": decode_s,
        "encode_MBps": size / MB / encode_s,
        "decode_MBps": size / MB / decode_s,
    }


def _record(results: dict, **row) -> None:
    results["results"].append(row)


@pytest.mark.parametrize("size", CHUNK_SIZES)
def test_bench_online_throughput(size: int, coding_bench_results: dict):
    """Online code, new kernel vs preserved seed implementation."""
    data = _payload(size)
    params = OnlineCodeParameters(epsilon=0.01, q=3)
    for blocks in ONLINE_BLOCK_COUNTS:
        code = OnlineCode(params, seed=SEED)
        encoded = code.encode(data, blocks)
        available = {b.index: b.data for b in encoded.blocks}
        assert code.decode(encoded, available) == data
        new = _measure_pair(
            lambda: code.encode(data, blocks), lambda: code.decode(encoded, available), size
        )

        legacy = LegacyOnlineCode(params, seed=SEED)
        legacy_encoded = legacy.encode(data, blocks)
        legacy_available = {b.index: b.data for b in legacy_encoded.blocks}
        assert legacy.decode(legacy_encoded, legacy_available) == data
        old = _measure_pair(
            lambda: legacy.encode(data, blocks),
            lambda: legacy.decode(legacy_encoded, legacy_available),
            size,
        )

        _record(
            coding_bench_results,
            code="online",
            chunk_bytes=size,
            n_blocks=blocks,
            **new,
            legacy_encode_MBps=old["encode_MBps"],
            legacy_decode_MBps=old["decode_MBps"],
            encode_speedup=new["encode_MBps"] / old["encode_MBps"],
            decode_speedup=new["decode_MBps"] / old["decode_MBps"],
        )


@pytest.mark.parametrize("size", CHUNK_SIZES)
def test_bench_reed_solomon_throughput(size: int, coding_bench_results: dict):
    """Reed-Solomon with erasures (matrix decode path), new vs seed."""
    data = _payload(size)
    code = ReedSolomonCode(parity_blocks=RS_PARITY_BLOCKS)
    encoded = code.encode(data, RS_DATA_BLOCKS)
    available = {b.index: b.data for b in encoded.blocks}
    for lost in range(RS_PARITY_BLOCKS):  # drop systematic blocks -> erasure decode
        del available[lost]
    assert code.decode(encoded, available) == data
    new = _measure_pair(
        lambda: code.encode(data, RS_DATA_BLOCKS), lambda: code.decode(encoded, available), size
    )

    legacy = LegacyReedSolomonCode(parity_blocks=RS_PARITY_BLOCKS)
    legacy_encoded = legacy.encode(data, RS_DATA_BLOCKS)
    legacy_available = {b.index: b.data for b in legacy_encoded.blocks}
    for lost in range(RS_PARITY_BLOCKS):
        del legacy_available[lost]
    assert legacy.decode(legacy_encoded, legacy_available) == data
    old = _measure_pair(
        lambda: legacy.encode(data, RS_DATA_BLOCKS),
        lambda: legacy.decode(legacy_encoded, legacy_available),
        size,
    )

    _record(
        coding_bench_results,
        code="reed-solomon",
        chunk_bytes=size,
        n_blocks=RS_DATA_BLOCKS,
        parity_blocks=RS_PARITY_BLOCKS,
        erasures=RS_PARITY_BLOCKS,
        **new,
        legacy_encode_MBps=old["encode_MBps"],
        legacy_decode_MBps=old["decode_MBps"],
        encode_speedup=new["encode_MBps"] / old["encode_MBps"],
        decode_speedup=new["decode_MBps"] / old["decode_MBps"],
    )


@pytest.mark.parametrize("size", CHUNK_SIZES)
def test_bench_null_xor_throughput(size: int, coding_bench_results: dict):
    """The cheap codes, for the cross-PR trajectory (no legacy comparison)."""
    data = _payload(size)
    for label, code, blocks in (
        ("null", NullCode(), 256),
        ("xor", XorParityCode(group_size=2), 256),
    ):
        encoded = code.encode(data, blocks)
        available = {b.index: b.data for b in encoded.blocks}
        assert code.decode(encoded, available) == data
        row = _measure_pair(
            lambda: code.encode(data, blocks), lambda: code.decode(encoded, available), size
        )
        _record(
            coding_bench_results, code=label, chunk_bytes=size, n_blocks=blocks, **row
        )


def test_bench_coding_speedup_summary(coding_bench_results: dict):
    """Aggregate the acceptance numbers; runs last (alphabetical luck aside)."""
    rows = coding_bench_results["results"]
    online = [r for r in rows if r["code"] == "online" and r["n_blocks"] >= 256]
    rs = [r for r in rows if r["code"] == "reed-solomon"]
    assert online and rs, "sweep tests must run before the summary"
    best_online = max(online, key=lambda r: min(r["encode_speedup"], r["decode_speedup"]))
    best_rs = max(rs, key=lambda r: r["decode_speedup"])
    coding_bench_results["speedups"] = {
        "online_encode_speedup": best_online["encode_speedup"],
        "online_decode_speedup": best_online["decode_speedup"],
        "online_blocks": best_online["n_blocks"],
        "online_chunk_bytes": best_online["chunk_bytes"],
        "reed_solomon_decode_speedup": best_rs["decode_speedup"],
        "reed_solomon_chunk_bytes": best_rs["chunk_bytes"],
    }
    # Acceptance: >= 5x online encode+decode at 256+ blocks, >= 3x RS decode.
    assert best_online["encode_speedup"] >= 5.0
    assert best_online["decode_speedup"] >= 5.0
    assert best_rs["decode_speedup"] >= 3.0
