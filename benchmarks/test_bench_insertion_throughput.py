"""Insertion-pipeline throughput sweep: node_count x file_count, new vs seed.

PR 1 made erasure coding ~50x faster, leaving placement/insertion as the
dominant cost of the paper's headline experiments (Figures 7-9, Table 1:
1.2 M files over 10 000 nodes).  This module measures the array-backed
placement engine against the *preserved seed scalar path* on the same
machine and records the trajectory in ``BENCH_insertion.json``:

* ``calibration`` -- scalar seed path vs vectorized engine, end to end
  (including each path's own population build), at a scale the seed's O(N^2)
  Pastry-state construction can still finish.  This is the acceptance
  comparison (>= 10x files/s).
* ``pipeline`` -- scalar vs vectorized *store pipeline* at the paper's
  10 000-node population (both on the fast build, so the ratio isolates the
  batched lookup kernels from the build win).
* ``flagship`` -- the full 10 000-node / 100k-file configuration on the
  vectorized engine, the configuration the seed path cannot practically run.

The calibration stage doubles as an at-scale equivalence check: the scalar
and vectorized runs must produce identical curves.
"""

from __future__ import annotations

import gc
import time
from dataclasses import replace

import pytest

from repro.experiments.storage_insertion import InsertionConfig, InsertionExperiment

#: Calibration scale: large enough to be representative, small enough for the
#: seed's O(N^2) population build to finish in tens of seconds.
CAL_NODES = 600
CAL_FILES = 1500

#: Pipeline-only comparison scale (both modes on the fast population build).
PIPELINE_NODES = 10_000
PIPELINE_FILES = 3_000

#: The paper-scale flagship configuration (vectorized engine only).
FLAGSHIP_NODES = 10_000
FLAGSHIP_FILES = 100_000

SEED = 7


def _run(config: InsertionConfig) -> tuple[object, float, int]:
    """Run one replication; return (outcome, seconds, total DHT lookups)."""
    experiment = InsertionExperiment(config)
    start = time.perf_counter()
    outcome = experiment.run_once(0)
    seconds = time.perf_counter() - start
    lookups = sum(view.lookup_count for view in experiment.last_views.values())
    return outcome, seconds, lookups


def _record(results: dict, *, stage: str, config: InsertionConfig, pipeline: str,
            seconds: float, lookups: int) -> None:
    files = config.resolved_file_count()
    results["results"].append(
        {
            "stage": stage,
            "node_count": config.node_count,
            "file_count": files,
            "pipeline": pipeline,
            "seconds": seconds,
            "files_per_s": files / seconds,
            "lookups": lookups,
            "lookups_per_s": lookups / seconds,
        }
    )


def _curves_fingerprint(outcome) -> dict:
    return {
        scheme: (
            tuple(curve.failed_stores_pct.y),
            tuple(curve.failed_data_pct.y),
            tuple(curve.utilization_pct.y),
            tuple(sorted(curve.chunk_stats.items())),
        )
        for scheme, curve in outcome.curves.items()
    }


def test_bench_calibration_scalar_vs_vectorized(insertion_bench_results: dict):
    """End-to-end seed path vs engine at a seed-feasible scale (acceptance)."""
    scalar_config = InsertionConfig(
        node_count=CAL_NODES, file_count=CAL_FILES, seed=SEED, vectorized=False
    )
    vector_config = replace(scalar_config, vectorized=True)

    scalar_outcome, scalar_s, scalar_lookups = _run(scalar_config)
    vector_outcome, vector_s, vector_lookups = _run(vector_config)

    # The engine must change nothing but the speed.
    assert _curves_fingerprint(scalar_outcome) == _curves_fingerprint(vector_outcome)
    assert scalar_lookups == vector_lookups

    _record(insertion_bench_results, stage="calibration", config=scalar_config,
            pipeline="scalar-seed", seconds=scalar_s, lookups=scalar_lookups)
    _record(insertion_bench_results, stage="calibration", config=vector_config,
            pipeline="vectorized", seconds=vector_s, lookups=vector_lookups)
    # Staged, not final: ``speedups`` is assembled only by the summary test so
    # a filtered run can never pass the conftest write guard with a partial
    # record (same invariant as the coding benchmark).
    insertion_bench_results.setdefault("_staged", {})["end_to_end"] = scalar_s / vector_s


def test_bench_pipeline_at_paper_population(insertion_bench_results: dict):
    """Scalar vs vectorized store pipeline at 10 000 nodes, loop only.

    Populations are built outside the timers (both on the fast build) so the
    ratio isolates the batched lookup kernels from the build win.  Note the
    per-block node bookkeeping (stored-block dicts, usage accounting) is
    identical in both paths and memory-bound at this population size, which
    caps the CFS ratio; the per-scheme rows make that visible.
    """
    from repro.baselines.cfs import CfsStore
    from repro.baselines.past import PastStore
    from repro.core.policies import StoragePolicy
    from repro.core.storage import StorageSystem
    from repro.erasure.chunk_codec import ChunkCodec
    from repro.erasure.null_code import NullCode
    from repro.sim.rng import RandomStreams

    config = InsertionConfig(
        node_count=PIPELINE_NODES, file_count=PIPELINE_FILES, seed=SEED, vectorized=True
    )
    experiment = InsertionExperiment(config)
    trace = experiment._build_trace(RandomStreams(config.seed), 0)
    totals = {}
    for vectorized in (False, True):
        label = "vectorized" if vectorized else "scalar-seed"
        per_scheme: dict = {}
        lookups_per_scheme: dict = {}
        # Stores reject duplicate filenames, so each repetition replays the
        # trace against a freshly built (identical) population; keep the best
        # of two runs per scheme to damp scheduler noise on sub-second loops.
        for _ in range(2):
            views = experiment._build_population(RandomStreams(config.seed), 0)
            stores = {
                "PAST": PastStore(views["PAST"], vectorized=vectorized),
                "CFS": CfsStore(
                    views["CFS"], block_size=config.cfs_block_size, vectorized=vectorized
                ),
                "Our System": StorageSystem(
                    views["Our System"],
                    codec=ChunkCodec(NullCode(), blocks_per_chunk=1),
                    policy=StoragePolicy(max_consecutive_zero_chunks=config.zero_chunk_limit),
                    vectorized=vectorized,
                ),
            }
            for scheme, store in stores.items():
                # Collect the previous scheme's (and population builds')
                # cyclic garbage before the timed loop: a 10 000-node session
                # leaves ~10^5 dead cross-referenced objects per build, and a
                # generational collection landing mid-loop skews a sub-second
                # measurement by integer factors (same hygiene as the soak
                # bench module's autouse fixture).
                gc.collect()
                start = time.perf_counter()
                for record in trace:
                    store.store_file(record.name, record.size)
                seconds = time.perf_counter() - start
                if scheme not in per_scheme or seconds < per_scheme[scheme]:
                    per_scheme[scheme] = seconds
                    lookups_per_scheme[scheme] = views[scheme].lookup_count
        for scheme, seconds in per_scheme.items():
            _record(insertion_bench_results, stage="pipeline", config=config,
                    pipeline=f"{label}:{scheme}", seconds=seconds,
                    lookups=lookups_per_scheme[scheme])
        totals[label] = per_scheme
    scalar, vector = totals["scalar-seed"], totals["vectorized"]
    staged = insertion_bench_results.setdefault("_staged", {})
    staged["pipeline_loop"] = sum(scalar.values()) / sum(vector.values())
    for scheme in scalar:
        staged[f"pipeline_{scheme.lower().replace(' ', '_')}"] = (
            scalar[scheme] / vector[scheme]
        )


@pytest.mark.parametrize(
    "node_count,file_count",
    [(1_000, 10_000), (2_000, 20_000), (FLAGSHIP_NODES, FLAGSHIP_FILES)],
)
def test_bench_vectorized_sweep(node_count: int, file_count: int,
                                insertion_bench_results: dict):
    """Vectorized-engine sweep, topped by the paper-scale flagship run."""
    config = InsertionConfig(
        node_count=node_count, file_count=file_count, seed=SEED, vectorized=True
    )
    outcome, seconds, lookups = _run(config)
    assert outcome.files_inserted == file_count
    stage = "flagship" if (node_count, file_count) == (FLAGSHIP_NODES, FLAGSHIP_FILES) else "sweep"
    _record(insertion_bench_results, stage=stage, config=config,
            pipeline="vectorized", seconds=seconds, lookups=lookups)


def test_bench_insertion_speedup_summary(insertion_bench_results: dict):
    """Acceptance: >= 10x files/s over the scalar seed path; flagship recorded.

    This test alone promotes the staged ratios into ``speedups`` -- the field
    the conftest write guard requires -- so only a complete sweep (every stage
    above ran, this summary passed) can overwrite BENCH_insertion.json.
    """
    staged = insertion_bench_results.pop("_staged", {})
    rows = insertion_bench_results["results"]
    assert "end_to_end" in staged and "pipeline_loop" in staged
    flagship = [row for row in rows if row["stage"] == "flagship"]
    assert flagship, "the 10 000-node / 100k-file run must be part of the sweep"
    staged["flagship_files_per_s"] = flagship[0]["files_per_s"]
    staged["flagship_lookups_per_s"] = flagship[0]["lookups_per_s"]
    # Acceptance: >= 10x files/s over the scalar seed path (what run_once
    # actually cost before this engine existed), plus a genuine store-loop win
    # with identical populations and builds on both sides.
    assert staged["end_to_end"] >= 10.0
    assert staged["pipeline_loop"] >= 1.2
    insertion_bench_results["speedups"] = staged
