"""Churn-engine throughput: seed dict walks vs the columnar block ledger.

Three measurements feed ``BENCH_churn.json`` (the cross-PR perf trajectory
printed by ``python -m repro.cli bench``):

* the Figure 10 availability experiment, seed path vs ledger path at a
  seed-feasible scale -- same seeds, identical curves, so the ratio isolates
  the churn engine (failure processing + availability sampling);
* the Table 3 regeneration experiment, seed vs ledger at the same scale;
* the paper-scale flagships: Figure 10 at 10 000 nodes / 1 000 sequential
  failures and Table 3 at 10 000 nodes (10 % and 20 % failed), ledger only --
  the seed path's per-sample walk over every placement of every file makes
  those configurations impractical (the recorded seed sweep throughput at the
  comparison scale is the honest baseline for the ratio).

``failures_per_s`` charges the failure-processing phase only (the sweep /
recovery loop, excluding trace distribution), which is the metric the ledger
accelerates; ``seconds`` is the end-to-end experiment time.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.experiments.availability import PAPER_FIG10, AvailabilityConfig, AvailabilityExperiment
from repro.experiments.churn import PAPER_TABLE3, ChurnConfig, ChurnExperiment

#: Scale where the seed path is still comfortable, for the seed-vs-ledger ratio.
COMPARE_FIG10 = AvailabilityConfig(node_count=300, file_count=1000, sample_points=20, seed=2)
COMPARE_TABLE3 = ChurnConfig(node_count=300, file_count=1000, seed=4)


def _fig10_row(config: AvailabilityConfig, scenario: str, pipeline: str, results: dict) -> dict:
    experiment = AvailabilityExperiment(config)
    start = time.perf_counter()
    series = experiment.run()
    seconds = time.perf_counter() - start
    sweep_s = sum(timing["sweep_s"] for timing in experiment.timings.values())
    failures = int(sum(timing["failures"] for timing in experiment.timings.values()))
    row = {
        "scenario": scenario,
        "node_count": config.node_count,
        "file_count": config.file_count,
        "pipeline": pipeline,
        "seconds": seconds,
        "failures": failures,
        "sweep_seconds": sweep_s,
        "failures_per_s": failures / sweep_s if sweep_s > 0 else 0.0,
        "finals": {label: curve.final() for label, curve in series.items()},
    }
    results["results"].append(row)
    return row


def _table3_row(config: ChurnConfig, scenario: str, pipeline: str, results: dict) -> dict:
    experiment = ChurnExperiment(config)
    start = time.perf_counter()
    table = experiment.run()
    seconds = time.perf_counter() - start
    recover_s = sum(timing["recover_s"] for timing in experiment.timings.values())
    failures = int(sum(timing["failures"] for timing in experiment.timings.values()))
    row = {
        "scenario": scenario,
        "node_count": config.node_count,
        "file_count": config.file_count,
        "pipeline": pipeline,
        "seconds": seconds,
        "failures": failures,
        "recover_seconds": recover_s,
        "failures_per_s": failures / recover_s if recover_s > 0 else 0.0,
        "data_lost_gb": [row["data_lost_gb"] for row in table.rows],
        "data_regenerated_gb": [row["data_regenerated_gb"] for row in table.rows],
    }
    results["results"].append(row)
    return row


def test_bench_fig10_seed_vs_ledger(churn_bench_results):
    """Seed vs ledger at a shared scale: identical curves, sweep-phase ratio."""
    ledger = _fig10_row(COMPARE_FIG10, "fig10", "ledger", churn_bench_results)
    scalar = _fig10_row(
        replace(COMPARE_FIG10, vectorized=False),
        "fig10",
        "scalar-seed",
        churn_bench_results,
    )
    assert scalar["finals"] == ledger["finals"], "paths must produce identical Figure 10 curves"
    sweep_ratio = scalar["sweep_seconds"] / max(ledger["sweep_seconds"], 1e-9)
    churn_bench_results["speedups"]["fig10_sweep"] = sweep_ratio
    churn_bench_results["speedups"]["fig10_end_to_end"] = (
        scalar["seconds"] / max(ledger["seconds"], 1e-9)
    )
    print(f"\nfig10 sweep: scalar {scalar['sweep_seconds']:.3f}s vs "
          f"ledger {ledger['sweep_seconds']:.3f}s ({sweep_ratio:,.1f}x)")
    assert sweep_ratio > 2.0, "ledger sweep should be well ahead of the dict walk"


def test_bench_table3_seed_vs_ledger(churn_bench_results):
    """Seed vs ledger recovery at a shared scale: identical rows, phase ratio."""
    ledger = _table3_row(COMPARE_TABLE3, "table3", "ledger", churn_bench_results)
    scalar = _table3_row(
        replace(COMPARE_TABLE3, vectorized=False),
        "table3",
        "scalar-seed",
        churn_bench_results,
    )
    assert scalar["data_lost_gb"] == ledger["data_lost_gb"]
    assert scalar["data_regenerated_gb"] == ledger["data_regenerated_gb"]
    ratio = scalar["recover_seconds"] / max(ledger["recover_seconds"], 1e-9)
    churn_bench_results["speedups"]["table3_recover"] = ratio
    print(f"\ntable3 recover: scalar {scalar['recover_seconds']:.3f}s vs "
          f"ledger {ledger['recover_seconds']:.3f}s ({ratio:,.1f}x)")


def test_bench_fig10_paper_scale_flagship(churn_bench_results):
    """Figure 10 at the paper's 10 000 nodes / 1 000 failures, ledger path."""
    row = _fig10_row(PAPER_FIG10, "fig10-paper-scale", "ledger", churn_bench_results)
    print(f"\nFigure 10 @ 10 000 nodes / 1 000 failures: {row['seconds']:.1f}s end-to-end, "
          f"{row['failures_per_s']:,.0f} failures/s in the sweep")
    finals = row["finals"]
    assert finals["No error code"] > finals["XOR code"] > finals["Online code"]
    assert finals["Online code"] < 3.0  # the paper reports 1.48 %
    assert row["seconds"] < 600.0, "paper-scale Figure 10 must complete in minutes"


def test_bench_table3_paper_scale_flagship(churn_bench_results):
    """Table 3 at the paper's 10 000 nodes, 10 % and 20 % failures, ledger path."""
    config = PAPER_TABLE3
    experiment = ChurnExperiment(config)
    start = time.perf_counter()
    table = experiment.run()
    seconds = time.perf_counter() - start
    recover_s = sum(timing["recover_s"] for timing in experiment.timings.values())
    failures = int(sum(timing["failures"] for timing in experiment.timings.values()))
    churn_bench_results["results"].append({
        "scenario": "table3-paper-scale",
        "node_count": config.node_count,
        "file_count": config.file_count,
        "pipeline": "ledger",
        "seconds": seconds,
        "failures": failures,
        "recover_seconds": recover_s,
        "failures_per_s": failures / recover_s if recover_s > 0 else 0.0,
    })
    print("\n" + table.format())
    print(f"Table 3 @ 10 000 nodes: {seconds:.1f}s end-to-end, "
          f"{failures / max(recover_s, 1e-9):,.0f} failures/s in recovery")
    ten, twenty = table.rows
    # The paper's structural claims: (almost) no loss at 10 %, loss well below
    # the regenerated volume at 20 %, small per-failure regeneration share.
    assert ten["data_lost_gb"] <= 0.05 * ten["data_regenerated_gb"] + 1e-9
    assert twenty["data_regenerated_gb"] > ten["data_regenerated_gb"]
    assert twenty["data_lost_gb"] < 0.25 * twenty["data_regenerated_gb"]
    assert seconds < 600.0, "paper-scale Table 3 must complete in minutes"
