"""Table 2 — encoded size and encode/decode time for NULL, XOR and online codes.

Paper: for a 4 MB chunk, NULL stores 4 MB, XOR 6 MB (50 % overhead), online
4.12 MB (~3 %); XOR encoding costs ~7x NULL and the online code ~24x NULL
(Java implementation on the authors' host).  Absolute milliseconds are not
comparable across languages/hosts; the reproduction checks the orderings and
the size overheads.

The default bench scales the chunk to 1 MB / 512 blocks so it runs in a couple
of seconds; pass the paper's exact parameters through
``CodingPerfConfig(chunk_size=4*MB, blocks_per_chunk=4096)`` to reproduce the
full-scale measurement.
"""

from __future__ import annotations

from repro.experiments.coding_perf import CodingPerfConfig, run_coding_performance
from repro.workloads.filetrace import MB

BENCH_CONFIG = CodingPerfConfig(chunk_size=1 * MB, blocks_per_chunk=512, repetitions=3, seed=3)


def test_bench_table2_coding_performance(benchmark):
    """Benchmark the coding measurement and report Table 2."""

    def run_once():
        return run_coding_performance(BENCH_CONFIG)

    table = benchmark.pedantic(run_once, rounds=1, iterations=1)
    print("\n" + table.format())
    rows = {row["code"]: row for row in table.rows}
    # Size overheads: NULL 0 %, XOR 50 %, online a small fraction of XOR's.
    assert abs(rows["Null"]["size_overhead_pct"]) < 1.0
    assert abs(rows["XOR"]["size_overhead_pct"] - 50.0) < 2.0
    assert rows["Online"]["size_overhead_pct"] < 25.0
    # Time ordering: NULL <= XOR < online, as in the paper.
    assert rows["Null"]["encode_ms"] <= rows["XOR"]["encode_ms"] * 1.25
    assert rows["XOR"]["encode_ms"] < rows["Online"]["encode_ms"]
    assert rows["Null"]["decode_ms"] <= rows["Online"]["decode_ms"]
