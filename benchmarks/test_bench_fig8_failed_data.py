"""Figure 8 — size of data in failed stores vs files inserted.

Paper: PAST fails to store 39.2 % of the data, CFS 22.0 %, the proposed system
12.7 % (3.1x and 1.7x better).  The reproduction checks that the proposed
system loses the least data.
"""

from __future__ import annotations

from repro.experiments.results import format_series_table


def test_bench_fig8_failed_data(benchmark, insertion_outcome):
    """Report Figure 8 from the shared insertion run."""

    def extract():
        return insertion_outcome.final_failed_data()

    finals = benchmark.pedantic(extract, rounds=1, iterations=1)
    print("\nFigure 8 — failed data (% of inserted bytes), final point:")
    print({scheme: round(value, 2) for scheme, value in finals.items()})
    print(
        format_series_table(
            [insertion_outcome.curves[s].failed_data_pct for s in ("PAST", "CFS", "Our System")],
            x_label="files",
        )
    )
    assert finals["Our System"] < finals["CFS"]
    assert finals["Our System"] < finals["PAST"]
