"""Table 3 — data lost and regenerated after 10 % and 20 % of the nodes fail.

Paper: with the full 10 000-node / 278.7 TB workload, no data is lost at 10 %
failures and 142 GB at 20 %; ~29 GB is regenerated per failure, i.e. about
0.01 % of the total data per failure.  The per-failure share scales with the
node count (1/N of the data lives on each node on average), so at the scaled
population the percentage is proportionally larger; the reproduction checks
the structural claims: negligible loss at 10 %, loss well below the amount
regenerated at 20 %, and a small per-failure regeneration share.
"""

from __future__ import annotations

from repro.experiments.churn import ChurnConfig, ChurnExperiment

BENCH_CONFIG = ChurnConfig(node_count=300, file_count=2000, seed=4)


def test_bench_table3_churn(benchmark):
    """Benchmark the churn/regeneration experiment and report Table 3."""

    def run_once():
        return ChurnExperiment(BENCH_CONFIG).run()

    table = benchmark.pedantic(run_once, rounds=1, iterations=1)
    print("\n" + table.format())
    ten, twenty = table.rows
    assert ten["nodes_failed_pct"] == 10.0 and twenty["nodes_failed_pct"] == 20.0
    # Loss at 10 % failures is negligible relative to what is regenerated.
    assert ten["data_lost_gb"] <= 0.05 * ten["data_regenerated_gb"] + 1e-9
    # More failures regenerate more data, and loss stays far below regeneration.
    assert twenty["data_regenerated_gb"] > ten["data_regenerated_gb"]
    assert twenty["data_lost_gb"] < 0.25 * twenty["data_regenerated_gb"]
    # Per-failure regeneration is a small fraction of the total stored data
    # (the paper's 0.01 % at 10 000 nodes; proportionally larger when scaled).
    assert twenty["regenerated_per_failure_pct_of_total"] < 100.0 / BENCH_CONFIG.node_count * 5
