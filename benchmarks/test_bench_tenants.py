"""Per-tenant QoS isolation panels: the noisy-neighbor storm suite.

Two measurements feed ``BENCH_tenants.json`` (printed by
``python -m repro.cli bench``):

* the isolation contrast panel at a CI-feasible scale -- all three scenarios
  (no storm, storm with QoS on, storm with QoS off) on identical deployments
  and workload timelines.  The acceptance checks live here: with isolation on,
  the victim tenant's ingest throughput stays within 1.5x of its no-storm
  baseline and its retrieve p95 stays bounded while the archive's site-outage
  repair completes through the bounded admission window (backpressure, never
  drops); with isolation off, the same storm clearly degrades the victim's
  retrieve tail;
* the paper-scale flagship: the no-storm baseline and the isolated storm at
  10 000 nodes behind the 4:1 core, well under five minutes on one core.

The recorded ``speedups`` entries are the open-vs-isolated p95 degradation
ratio, the isolated ingest slowdown, and the panel wall times -- the
cross-PR trajectory of the QoS isolation subsystem.
"""

from __future__ import annotations

import time

from dataclasses import replace

from repro.experiments.tenants import (
    PAPER_TENANTS,
    TenantsConfig,
    TenantsExperiment,
)
from repro.workloads.filetrace import GB, MB

#: CI-feasible scale with a deliberately violent storm: the archive corpus is
#: dense enough (and the admission window wide enough) that the unweighted,
#: uncapped repair class visibly crowds the victim's retrieve probes off the
#: shared trunks, while the weighted+capped class does not.
SMALL_TENANTS = TenantsConfig(
    node_count=1000,
    capacity_mean=2 * GB,
    capacity_std=500 * MB,
    archive_files=1200,
    archive_mean_size=24 * MB,
    archive_std_size=8 * MB,
    archive_min_size=4 * MB,
    studies=12,
    frames_per_study=12,
    mean_frame_size=8 * MB,
    study_interval_s=10.0,
    bursts=3,
    burst_sizes_gb=(0.5, 1.0, 2.0),
    burst_interval_s=30.0,
    distribution_rounds=20,
    distribution_period_s=5.0,
    distribution_payload=8 * MB,
    probe_reads=80,
    probe_period_s=1.0,
    read_sample=120,
    storm_time_s=20.0,
    repair_spacing_s=0.0,
    repair_window=512,
    storm_tenant_weight=0.25,
    storm_tenant_cap_mb_s=64.0,
    seed=11,
)

#: The 10k flagship runs the baseline and the isolated storm (the open storm's
#: contrast is established by the CI-scale panel above; re-running it at paper
#: scale would double the wall time without changing the claim).
FLAGSHIP_TENANTS = replace(PAPER_TENANTS, scenarios=("baseline", "storm_isolated"))


def _record_rows(results: dict, prefix: str, config: TenantsConfig,
                 outcome, seconds: float) -> None:
    for row in outcome.rows:
        # ``**row`` first: its bare "scenario" must not clobber the prefixed
        # one (both row groups share scenario names in the trajectory).
        results["results"].append({
            **row, "scenario": f"{prefix}-{row['scenario']}",
            "node_count": config.node_count, "seconds": seconds,
        })
    for row in outcome.tenant_rows:
        results["results"].append({
            **row, "scenario": f"{prefix}-slo-{row['scenario']}",
            "node_count": config.node_count, "seconds": seconds,
        })


def test_bench_tenants_isolation_panels(tenants_bench_results):
    """The QoS isolation oracles at CI scale, recorded into the trajectory."""
    start = time.perf_counter()
    outcome = TenantsExperiment(SMALL_TENANTS).run()
    seconds = time.perf_counter() - start
    _record_rows(tenants_bench_results, "tenants", SMALL_TENANTS, outcome, seconds)

    baseline = outcome.row("baseline")
    isolated = outcome.row("storm_isolated")
    open_storm = outcome.row("storm_open")

    # The baseline saw no outage: nothing repaired, nothing queued.
    assert baseline["repair_gb"] == 0.0
    assert baseline["probe_reads_done"] > 0.0
    # Both storms repaired the same standing corpus (same outage, same
    # deployment) and drained completely -- backpressure, never drops.
    assert isolated["repair_gb"] > 0.0
    assert isolated["repair_gb"] == open_storm["repair_gb"]
    assert isolated["storm_backlog_end_gb"] == 0.0
    assert open_storm["storm_backlog_end_gb"] == 0.0
    assert isolated["transfers_failed"] == 0.0
    # The flagship claim: with isolation on, the victim's ingest throughput
    # stays within 1.5x of its no-storm baseline...
    assert 0.0 < isolated["ingest_slowdown_x"] <= 1.5
    # ...and its retrieve tail stays bounded, while the open storm's
    # unweighted, uncapped repair class clearly degrades it (measured ~5x;
    # the 1.5x floor keeps the oracle robust to scheduler-neutral drift).
    assert 0.0 < isolated["probe_p95_s"]
    assert open_storm["probe_p95_s"] > 1.5 * isolated["probe_p95_s"]
    # Isolation costs repair time: the weighted+capped storm drains slower.
    assert isolated["repair_makespan_s"] > open_storm["repair_makespan_s"]
    # The core is finite and busy in every storm cell.
    assert isolated["trunk_util_pct"] > 0.0

    # Per-tenant SLO rows: the storm tenant moved the repair bytes, and the
    # victim's accounting is scoped to its own tag (no cross-tenant bleed).
    archive = outcome.tenant_row("storm_isolated", "archive")
    victim = outcome.tenant_row("storm_isolated", "medimg")
    open_victim = outcome.tenant_row("storm_open", "medimg")
    assert archive["moved_gb"] >= isolated["repair_gb"]
    assert victim["stored_gb"] > 0.0
    # The outage's durability damage is identical in both storm cells: QoS
    # changes repair pacing, never what survives.
    assert victim["failed_reads"] == open_victim["failed_reads"]
    assert victim["availability_pct"] == open_victim["availability_pct"]

    staged = tenants_bench_results.setdefault("_staged", {})
    staged["tenants_small_seconds"] = seconds
    staged["tenants_open_p95_degradation"] = (
        open_storm["probe_p95_s"] / isolated["probe_p95_s"])
    staged["tenants_isolated_slowdown"] = isolated["ingest_slowdown_x"]
    print(f"\ntenant panels @ {SMALL_TENANTS.node_count} nodes: {seconds:.2f}s; "
          f"isolated ingest slowdown {isolated['ingest_slowdown_x']:.3f}x, "
          f"probe p95 {isolated['probe_p95_s']:.2f}s vs "
          f"{open_storm['probe_p95_s']:.2f}s open "
          f"({staged['tenants_open_p95_degradation']:.1f}x degradation)")


def test_bench_tenants_paper_scale_flagship(tenants_bench_results):
    """The isolated storm at 10 000 nodes behind the 4:1 core.

    The headline QoS claim at paper scale: a whole-site outage into the
    archive tenant repairs >1 TB through the bounded admission window at a
    quarter fair-share weight under a hard cap, while the medical-image
    tenant's ingest throughput stays within 1.5x of its no-storm baseline
    -- backpressure absorbs the storm, nothing is dropped.
    """
    start = time.perf_counter()
    outcome = TenantsExperiment(FLAGSHIP_TENANTS).run()
    seconds = time.perf_counter() - start
    _record_rows(tenants_bench_results, "tenants-paper-scale", FLAGSHIP_TENANTS,
                 outcome, seconds)
    assert seconds < 300.0, "the 10k-node tenant cells must stay under ~5 minutes"

    isolated = outcome.row("storm_isolated")
    assert isolated["repair_gb"] > 0.0
    assert 0.0 < isolated["ingest_slowdown_x"] <= 1.5
    assert isolated["storm_backlog_end_gb"] == 0.0
    assert isolated["transfers_failed"] == 0.0
    assert isolated["probe_reads_done"] > 0.0

    staged = tenants_bench_results.setdefault("_staged", {})
    staged["tenants_flagship_seconds"] = seconds
    staged["tenants_flagship_slowdown"] = isolated["ingest_slowdown_x"]
    print(f"\ntenants @ 10 000 nodes behind a 4:1 core: {seconds:.1f}s wall; "
          f"storm repairs {isolated['repair_gb']:,.1f} GB in "
          f"{isolated['repair_makespan_s']:,.0f} sim-s while victim ingest "
          f"holds {isolated['ingest_mb_s']:.2f} MB/s "
          f"({isolated['ingest_slowdown_x']:.3f}x baseline)")


def test_bench_tenants_speedup_summary(tenants_bench_results):
    """Promote the staged ratios into ``speedups`` -- the write-guard field.

    Only this test fills the field the conftest session hook requires, so a
    filtered run can never overwrite BENCH_tenants.json with a partial record.
    """
    staged = tenants_bench_results.pop("_staged", {})
    assert {"tenants_small_seconds", "tenants_open_p95_degradation",
            "tenants_isolated_slowdown", "tenants_flagship_seconds"} <= set(staged)
    tenants_bench_results["speedups"] = staged
