"""Shared fixtures for the benchmark harness.

Every figure/table of the paper gets one benchmark module.  The three
insertion figures and Table 1 come from a single (expensive) experiment run,
so that run is computed once per session and shared; the benchmark hooks then
measure the full run once (Figure 7's module) and the derived extractions for
the other modules.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.storage_insertion import InsertionConfig, InsertionExperiment  # noqa: E402


#: Scale used by the insertion benchmarks (nodes / derived file count).  The
#: paper uses 10 000 nodes and 1.2 M files; this default finishes in well under
#: a minute while preserving every qualitative conclusion.
BENCH_INSERTION_CONFIG = InsertionConfig(node_count=100, sample_points=10, seed=1)


@pytest.fixture(scope="session")
def insertion_outcome():
    """One shared insertion-experiment run (Figures 7-9 and Table 1)."""
    return InsertionExperiment(BENCH_INSERTION_CONFIG).run()
