"""Shared fixtures for the benchmark harness.

Every figure/table of the paper gets one benchmark module.  The three
insertion figures and Table 1 come from a single (expensive) experiment run,
so that run is computed once per session and shared; the benchmark hooks then
measure the full run once (Figure 7's module) and the derived extractions for
the other modules.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.storage_insertion import InsertionConfig, InsertionExperiment  # noqa: E402

#: Where the coding-throughput benchmark writes its per-PR trajectory record.
BENCH_CODING_PATH = Path(__file__).resolve().parent.parent / "BENCH_coding.json"

#: Rows accumulated by ``test_bench_coding_throughput.py`` during the session.
_CODING_RESULTS: dict = {"results": [], "speedups": {}}

#: Where the insertion-throughput benchmark writes its trajectory record.
BENCH_INSERTION_PATH = Path(__file__).resolve().parent.parent / "BENCH_insertion.json"

#: Rows accumulated by ``test_bench_insertion_throughput.py`` during the session.
_INSERTION_RESULTS: dict = {"results": [], "speedups": {}}

#: Where the churn-engine benchmark writes its trajectory record.
BENCH_CHURN_PATH = Path(__file__).resolve().parent.parent / "BENCH_churn.json"

#: Rows accumulated by ``test_bench_churn_failures.py`` during the session.
_CHURN_RESULTS: dict = {"results": [], "speedups": {}}

#: Where the join/leave churn-soak benchmark writes its trajectory record.
BENCH_SOAK_PATH = Path(__file__).resolve().parent.parent / "BENCH_soak.json"

#: Rows accumulated by ``test_bench_soak.py`` during the session.
_SOAK_RESULTS: dict = {"results": [], "speedups": {}}

#: Where the bandwidth-aware repair benchmark writes its trajectory record.
BENCH_REPAIR_PATH = Path(__file__).resolve().parent.parent / "BENCH_repair.json"

#: Rows accumulated by ``test_bench_repair.py`` during the session.
_REPAIR_RESULTS: dict = {"results": [], "speedups": {}}

#: Where the fault-injection benchmark writes its trajectory record.
BENCH_FAULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

#: Rows accumulated by ``test_bench_faults.py`` during the session.
_FAULTS_RESULTS: dict = {"results": [], "speedups": {}}

#: Where the tenant QoS-isolation benchmark writes its trajectory record.
BENCH_TENANTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_tenants.json"

#: Rows accumulated by ``test_bench_tenants.py`` during the session.
_TENANTS_RESULTS: dict = {"results": [], "speedups": {}}

#: Where the serve-path benchmark writes its trajectory record.
BENCH_SERVING_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Rows accumulated by ``test_bench_serving.py`` during the session.
_SERVING_RESULTS: dict = {"results": [], "speedups": {}}

#: Where the routing-fabric benchmark writes its trajectory record.
BENCH_ROUTING_PATH = Path(__file__).resolve().parent.parent / "BENCH_routing.json"

#: Rows accumulated by ``test_bench_routing.py`` during the session.
_ROUTING_RESULTS: dict = {"results": [], "speedups": {}}


_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    """Mark every test under benchmarks/ `bench` so tier-1 runs deselect them."""
    for item in items:
        try:
            in_bench_dir = Path(str(item.path)).resolve().is_relative_to(_BENCH_DIR)
        except (OSError, ValueError):
            in_bench_dir = False
        if in_bench_dir:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def coding_bench_results() -> dict:
    """Session accumulator for coding-throughput rows (written at exit)."""
    return _CODING_RESULTS


@pytest.fixture(scope="session")
def insertion_bench_results() -> dict:
    """Session accumulator for insertion-throughput rows (written at exit)."""
    return _INSERTION_RESULTS


@pytest.fixture(scope="session")
def churn_bench_results() -> dict:
    """Session accumulator for churn-engine rows (written at exit)."""
    return _CHURN_RESULTS


@pytest.fixture(scope="session")
def soak_bench_results() -> dict:
    """Session accumulator for churn-soak rows (written at exit)."""
    return _SOAK_RESULTS


@pytest.fixture(scope="session")
def repair_bench_results() -> dict:
    """Session accumulator for bandwidth-aware repair rows (written at exit)."""
    return _REPAIR_RESULTS


@pytest.fixture(scope="session")
def faults_bench_results() -> dict:
    """Session accumulator for fault-injection rows (written at exit)."""
    return _FAULTS_RESULTS


@pytest.fixture(scope="session")
def tenants_bench_results() -> dict:
    """Session accumulator for tenant QoS-isolation rows (written at exit)."""
    return _TENANTS_RESULTS


@pytest.fixture(scope="session")
def serving_bench_results() -> dict:
    """Session accumulator for serve-path rows (written at exit)."""
    return _SERVING_RESULTS


@pytest.fixture(scope="session")
def routing_bench_results() -> dict:
    """Session accumulator for routing-fabric rows (written at exit)."""
    return _ROUTING_RESULTS


def pytest_sessionfinish(session, exitstatus):
    """Persist the BENCH_*.json records so perf trajectories track across PRs.

    Only a clean, complete sweep (summary computed, session green) may
    overwrite the previous record of its file — a failed, filtered or
    interrupted run must not destroy the trajectory, and the records merge
    independently (running only the insertion sweep leaves BENCH_coding.json
    untouched and vice versa).
    """
    if exitstatus != 0:
        return
    if _CODING_RESULTS["results"] and _CODING_RESULTS["speedups"]:
        BENCH_CODING_PATH.write_text(json.dumps(_CODING_RESULTS, indent=2) + "\n")
    if _INSERTION_RESULTS["results"] and _INSERTION_RESULTS["speedups"]:
        BENCH_INSERTION_PATH.write_text(json.dumps(_INSERTION_RESULTS, indent=2) + "\n")
    if _CHURN_RESULTS["results"] and _CHURN_RESULTS["speedups"]:
        BENCH_CHURN_PATH.write_text(json.dumps(_CHURN_RESULTS, indent=2) + "\n")
    if _SOAK_RESULTS["results"] and _SOAK_RESULTS["speedups"]:
        BENCH_SOAK_PATH.write_text(json.dumps(_SOAK_RESULTS, indent=2) + "\n")
    if _REPAIR_RESULTS["results"] and _REPAIR_RESULTS["speedups"]:
        BENCH_REPAIR_PATH.write_text(json.dumps(_REPAIR_RESULTS, indent=2) + "\n")
    if _FAULTS_RESULTS["results"] and _FAULTS_RESULTS["speedups"]:
        BENCH_FAULTS_PATH.write_text(json.dumps(_FAULTS_RESULTS, indent=2) + "\n")
    if _TENANTS_RESULTS["results"] and _TENANTS_RESULTS["speedups"]:
        BENCH_TENANTS_PATH.write_text(json.dumps(_TENANTS_RESULTS, indent=2) + "\n")
    if _SERVING_RESULTS["results"] and _SERVING_RESULTS["speedups"]:
        BENCH_SERVING_PATH.write_text(json.dumps(_SERVING_RESULTS, indent=2) + "\n")
    if _ROUTING_RESULTS["results"] and _ROUTING_RESULTS["speedups"]:
        BENCH_ROUTING_PATH.write_text(json.dumps(_ROUTING_RESULTS, indent=2) + "\n")


#: Scale used by the insertion benchmarks (nodes / derived file count).  The
#: paper uses 10 000 nodes and 1.2 M files; this default finishes in well under
#: a minute while preserving every qualitative conclusion.
BENCH_INSERTION_CONFIG = InsertionConfig(node_count=100, sample_points=10, seed=1)


@pytest.fixture(scope="session")
def insertion_outcome():
    """One shared insertion-experiment run (Figures 7-9 and Table 1)."""
    return InsertionExperiment(BENCH_INSERTION_CONFIG).run()
