"""Figure 12 — min/avg/max packets per node over time at RanSub = 16 %.

Paper: the distribution of replica data is "close to linear for the maximum,
average, and minimum number of blocks per node", i.e. the tree saturates
evenly and no vertex is starved.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.multicast_replicas import MulticastConfig, MulticastExperiment

BENCH_CONFIG = MulticastConfig(seed=5)


def test_bench_fig12_even_saturation(benchmark):
    """Benchmark the saturation run and report the Figure 12 series."""

    experiment = MulticastExperiment(BENCH_CONFIG)

    def run_once():
        return experiment.run_saturation()

    minimum, average, maximum = benchmark.pedantic(run_once, rounds=1, iterations=1)
    print("\nFigure 12 — packets per node at RanSub = 16 % (first/last epochs):")
    for index in (0, len(average.y) // 2, len(average.y) - 1):
        print(
            f"  epoch {int(average.x[index]):4d}: min {minimum.y[index]:7.1f} "
            f"avg {average.y[index]:7.1f} max {maximum.y[index]:7.1f}"
        )
    total = BENCH_CONFIG.total_packets
    # Everyone ends (essentially) complete.
    assert maximum.final() == total
    assert average.final() >= 0.99 * total
    # Even saturation: the min-max spread stays a modest fraction of the chunk.
    spread = experiment.saturation_spread(minimum, average, maximum)
    assert spread < 0.35 * total
    # Growth is close to linear: the epoch-to-epoch increments of the average
    # curve have a small coefficient of variation over the bulk of the run.
    increments = np.diff(average.y)
    bulk = increments[: max(1, int(len(increments) * 0.8))]
    assert bulk.std() <= 0.5 * bulk.mean()
