"""Figure 11 — average packets received per node over time, per RanSub set size.

Paper (Section 6.3): on a 63-node binary tree (32 replica leaves, 1000-packet
chunk) increasing the RanSub set size from 3 % to 16 % of the tree speeds up
dissemination with diminishing returns, stabilising around 8 %.
"""

from __future__ import annotations

from repro.experiments.multicast_replicas import MulticastConfig, MulticastExperiment

BENCH_CONFIG = MulticastConfig(seed=5)


def test_bench_fig11_ransub_sweep(benchmark):
    """Benchmark the RanSub sweep and report the Figure 11 series."""

    experiment = MulticastExperiment(BENCH_CONFIG)

    def run_once():
        return experiment.run_ransub_sweep()

    sweep = benchmark.pedantic(run_once, rounds=1, iterations=1)
    epochs = experiment.completion_epochs(sweep)
    print("\nFigure 11 — epochs until every replica holds the chunk, per RanSub size:")
    for fraction in sorted(epochs):
        print(f"  RanSub {fraction:5.0%}: {epochs[fraction]:4d} epochs")
    fractions = sorted(epochs)
    # Larger RanSub views never make dissemination slower...
    assert epochs[fractions[0]] >= epochs[fractions[-1]]
    # ...and the gain from 3 % to 8 % dwarfs the gain from 8 % to 16 %
    # (diminishing returns / stabilisation around 8 %).
    gain_low = epochs[0.03] - epochs[0.08]
    gain_high = epochs[0.08] - epochs[0.16]
    assert gain_low >= gain_high
    # Average packet counts grow monotonically within every sweep series.
    for series in sweep.values():
        assert all(b >= a for a, b in zip(series.y, series.y[1:]))
