"""PAST baseline: whole-file storage on the DHT root of the file name.

PAST (Rowstron & Druschel, SOSP 2001) stores each file in its entirety on the
node whose id is numerically closest to ``SHA-1(filename)``, with ``k``
replicas on that node's leaf-set neighbours.  When the target node cannot hold
the file, PAST retries by *rehashing the file name with a new salt* (Section 3
of the paper).  The failure mode the paper highlights -- a store fails when no
probed node can hold the entire file, so the maximum storable file size is
bounded by the largest single contribution -- emerges directly from this
implementation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.common import BaselineStoreResult
from repro.core.block_ledger import BlockLedger
from repro.overlay.dht import DHTView
from repro.overlay.node import OverlayNode


class PastStore:
    """A PAST-style whole-file store over a DHT view.

    With ``vectorized=True`` (default) the per-attempt lookup runs on the
    array-backed placement engine (raw SHA-1 -> boundary ``bisect``), skipping
    the ``NodeId`` wrapping and ring-distance arithmetic of the preserved seed
    path (``vectorized=False``).  Both resolve every name to the same node and
    charge the same lookup counts.

    On the vectorized path every stored file is also registered in the shared
    columnar :class:`~repro.core.block_ledger.BlockLedger` (one replica group
    per file; salted/replica copies are first-class row kinds), which makes
    :meth:`is_file_available` an O(1) counter read that stays exact under
    out-of-band ``fail()``/``recover()``/``leave()`` churn.  Pass ``ledger``
    to share one ledger instance with other stores on the same overlay.
    """

    def __init__(
        self,
        dht: DHTView,
        replication: int = 1,
        retries: int = 3,
        vectorized: bool = True,
        ledger: Optional[BlockLedger] = None,
        tenant: Optional[str] = None,
    ) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.dht = dht
        self.replication = replication
        self.retries = retries
        self.vectorized = vectorized
        #: Columnar bookkeeping (vectorized path only; the seed path keeps the
        #: holder-list walks).  Pass ``ledger`` to share one instance with
        #: other stores on the same overlay, and ``tenant`` to scope this
        #: store's files to their own namespace on a multi-tenant ledger.
        from repro.core.storage import _resolve_ledger

        self.ledger = _resolve_ledger(dht, vectorized, ledger, tenant)
        #: Only a ledger shared with other stores can carry a colliding name
        #: this store's own ``files`` dict does not know about; a private
        #: ledger's namespace is exactly ``self.files``, so the per-store
        #: ledger lookup is skipped on the hot path.
        self._ledger_shared = ledger is not None and self.ledger is not None
        #: filename -> (name actually stored under, holder nodes).
        self.files: dict[str, tuple[str, List[OverlayNode]]] = {}
        self.total_lookups = 0

    def _salted_name(self, filename: str, attempt: int) -> str:
        return filename if attempt == 0 else f"{filename}#salt{attempt}"

    def _locate(self, name: str) -> OverlayNode:
        return self.dht.locate_name(name, self.vectorized)

    def store_file(self, filename: str, size: int) -> BaselineStoreResult:
        """Insert one file; a single p2p lookup per attempt, as in PAST."""
        # A shared ledger is a shared file namespace: a name another store on
        # the same ledger already registered must be rejected up front, before
        # any block is placed (for a private ledger the check is redundant and
        # skipped).
        if filename in self.files or (
            self._ledger_shared and self.ledger.file_index(filename) is not None
        ):
            return BaselineStoreResult(
                filename=filename,
                requested_size=size,
                success=False,
                stored_bytes=0,
                chunk_count=0,
                lookups=0,
                failure_reason="file already stored",
            )
        lookups = 0
        for attempt in range(self.retries + 1):
            name = self._salted_name(filename, attempt)
            target = self._locate(name)
            lookups += 1
            holders = self._try_place(name, size, target)
            if holders is not None:
                self.files[filename] = (name, holders)
                if self.ledger is not None:
                    # Buffered: the single-row column writes land in one bulk
                    # pass at the next flush point (a liveness event or a
                    # ledger read), keeping the ledger out of the store loop.
                    self.ledger.queue_whole_file(
                        filename, size, name, holders, salted=attempt > 0
                    )
                self.total_lookups += lookups
                return BaselineStoreResult(
                    filename=filename,
                    requested_size=size,
                    success=True,
                    stored_bytes=size * len(holders),
                    chunk_count=1,
                    lookups=lookups,
                )
        self.total_lookups += lookups
        return BaselineStoreResult(
            filename=filename,
            requested_size=size,
            success=False,
            stored_bytes=0,
            chunk_count=0,
            lookups=lookups,
            failure_reason=f"no node could hold {size} bytes after {self.retries + 1} attempts",
        )

    def _try_place(self, name: str, size: int, target: OverlayNode) -> Optional[List[OverlayNode]]:
        """Place the file on ``target`` plus replication-1 neighbours; None on failure."""
        holders: List[OverlayNode] = []
        if not target.store_block(name, size):
            return None
        holders.append(target)
        if self.replication > 1:
            for neighbor in self.dht.neighbors(target.node_id, (self.replication - 1) * 2):
                if len(holders) >= self.replication:
                    break
                if neighbor.store_block(name, size):
                    holders.append(neighbor)
            if len(holders) < self.replication:
                # PAST requires all k replicas; undo and report failure.
                for holder in holders:
                    holder.remove_block(name)
                return None
        return holders

    def is_file_available(self, filename: str) -> bool:
        """Whether at least one replica of the whole file survives.

        O(1) from the shared ledger's group counters on the vectorized path;
        the seed path walks the holder list.
        """
        entry = self.files.get(filename)
        if not entry:
            return False
        if self.ledger is not None:
            file_idx = self.ledger.file_index(filename)
            if file_idx is not None:
                return self.ledger.file_available(file_idx)
        stored_name, holders = entry
        return any(holder.alive and holder.has_block(stored_name) for holder in holders)

    def delete_file(self, filename: str) -> bool:
        """Remove the file and its replicas."""
        entry = self.files.pop(filename, None)
        if entry is None:
            return False
        stored_name, holders = entry
        for holder in holders:
            holder.remove_block(stored_name)
        if self.ledger is not None:
            self.ledger.remove_file(filename)
        return True
