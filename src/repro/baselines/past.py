"""PAST baseline: whole-file storage on the DHT root of the file name.

PAST (Rowstron & Druschel, SOSP 2001) stores each file in its entirety on the
node whose id is numerically closest to ``SHA-1(filename)``, with ``k``
replicas on that node's leaf-set neighbours.  When the target node cannot hold
the file, PAST retries by *rehashing the file name with a new salt* (Section 3
of the paper).  The failure mode the paper highlights -- a store fails when no
probed node can hold the entire file, so the maximum storable file size is
bounded by the largest single contribution -- emerges directly from this
implementation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.common import BaselineStoreResult
from repro.overlay.dht import DHTView
from repro.overlay.node import OverlayNode


class PastStore:
    """A PAST-style whole-file store over a DHT view.

    With ``vectorized=True`` (default) the per-attempt lookup runs on the
    array-backed placement engine (raw SHA-1 -> boundary ``bisect``), skipping
    the ``NodeId`` wrapping and ring-distance arithmetic of the preserved seed
    path (``vectorized=False``).  Both resolve every name to the same node and
    charge the same lookup counts.
    """

    def __init__(
        self, dht: DHTView, replication: int = 1, retries: int = 3, vectorized: bool = True
    ) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.dht = dht
        self.replication = replication
        self.retries = retries
        self.vectorized = vectorized
        #: filename -> (name actually stored under, holder nodes).
        self.files: dict[str, tuple[str, List[OverlayNode]]] = {}
        self.total_lookups = 0

    def _salted_name(self, filename: str, attempt: int) -> str:
        return filename if attempt == 0 else f"{filename}#salt{attempt}"

    def _locate(self, name: str) -> OverlayNode:
        return self.dht.locate_name(name, self.vectorized)

    def store_file(self, filename: str, size: int) -> BaselineStoreResult:
        """Insert one file; a single p2p lookup per attempt, as in PAST."""
        if filename in self.files:
            return BaselineStoreResult(
                filename=filename,
                requested_size=size,
                success=False,
                stored_bytes=0,
                chunk_count=0,
                lookups=0,
                failure_reason="file already stored",
            )
        lookups = 0
        for attempt in range(self.retries + 1):
            name = self._salted_name(filename, attempt)
            target = self._locate(name)
            lookups += 1
            holders = self._try_place(name, size, target)
            if holders is not None:
                self.files[filename] = (name, holders)
                self.total_lookups += lookups
                return BaselineStoreResult(
                    filename=filename,
                    requested_size=size,
                    success=True,
                    stored_bytes=size * len(holders),
                    chunk_count=1,
                    lookups=lookups,
                )
        self.total_lookups += lookups
        return BaselineStoreResult(
            filename=filename,
            requested_size=size,
            success=False,
            stored_bytes=0,
            chunk_count=0,
            lookups=lookups,
            failure_reason=f"no node could hold {size} bytes after {self.retries + 1} attempts",
        )

    def _try_place(self, name: str, size: int, target: OverlayNode) -> Optional[List[OverlayNode]]:
        """Place the file on ``target`` plus replication-1 neighbours; None on failure."""
        holders: List[OverlayNode] = []
        if not target.store_block(name, size):
            return None
        holders.append(target)
        if self.replication > 1:
            for neighbor in self.dht.neighbors(target.node_id, (self.replication - 1) * 2):
                if len(holders) >= self.replication:
                    break
                if neighbor.store_block(name, size):
                    holders.append(neighbor)
            if len(holders) < self.replication:
                # PAST requires all k replicas; undo and report failure.
                for holder in holders:
                    holder.remove_block(name)
                return None
        return holders

    def is_file_available(self, filename: str) -> bool:
        """Whether at least one replica of the whole file survives."""
        entry = self.files.get(filename)
        if not entry:
            return False
        stored_name, holders = entry
        return any(holder.alive and holder.has_block(stored_name) for holder in holders)

    def delete_file(self, filename: str) -> bool:
        """Remove the file and its replicas."""
        entry = self.files.pop(filename, None)
        if entry is None:
            return False
        stored_name, holders = entry
        for holder in holders:
            holder.remove_block(stored_name)
        return True
