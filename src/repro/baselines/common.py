"""Shared result types and statistics helpers for the storage comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class BaselineStoreResult:
    """Outcome of inserting one file into a storage scheme."""

    filename: str
    requested_size: int
    success: bool
    stored_bytes: int
    chunk_count: int
    lookups: int
    failure_reason: Optional[str] = None


@dataclass
class InsertionStats:
    """Running statistics over a sequence of store attempts (Figures 7-9, Table 1)."""

    attempts: int = 0
    failures: int = 0
    requested_bytes: int = 0
    failed_bytes: int = 0
    lookups: int = 0
    chunk_counts: List[int] = field(default_factory=list)
    chunk_sizes: List[int] = field(default_factory=list)

    def record(self, result: BaselineStoreResult, chunk_sizes: Optional[List[int]] = None) -> None:
        """Fold one store result (and optionally its chunk sizes) into the stats."""
        self.attempts += 1
        self.requested_bytes += result.requested_size
        self.lookups += result.lookups
        if not result.success:
            self.failures += 1
            self.failed_bytes += result.requested_size
        else:
            self.chunk_counts.append(result.chunk_count)
            if chunk_sizes:
                self.chunk_sizes.extend(chunk_sizes)

    @property
    def failure_fraction(self) -> float:
        """Fraction of attempted stores that failed (Figure 7 metric)."""
        return self.failures / self.attempts if self.attempts else 0.0

    @property
    def failed_data_fraction(self) -> float:
        """Fraction of attempted bytes that failed to be stored (Figure 8 metric)."""
        return self.failed_bytes / self.requested_bytes if self.requested_bytes else 0.0

    def chunk_count_stats(self) -> tuple[float, float]:
        """Mean and standard deviation of chunks per successfully stored file."""
        if not self.chunk_counts:
            return 0.0, 0.0
        values = np.asarray(self.chunk_counts, dtype=float)
        return float(values.mean()), float(values.std())

    def chunk_size_stats(self) -> tuple[float, float]:
        """Mean and standard deviation of (data) chunk sizes."""
        if not self.chunk_sizes:
            return 0.0, 0.0
        values = np.asarray(self.chunk_sizes, dtype=float)
        return float(values.mean()), float(values.std())
