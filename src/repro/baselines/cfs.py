"""CFS baseline: fixed-size block striping with successor replication.

CFS (Dabek et al., SOSP 2001) splits every file into fixed-size blocks and
stores each block on the node responsible for the block's key, replicating it
on the ``k`` successors of that key.  The paper's criticism -- the number of
blocks, and therefore the number of p2p look-ups, grows linearly with file
size, and the probability that *some* block placement fails grows as
``1 - (1 - p)^n`` -- emerges directly from this implementation.

The authors of CFS use 8 KB blocks; the paper's simulations use 4 MB "to
reduce unnecessary DHT look-ups" given the large files, and so does the
default here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.baselines.common import BaselineStoreResult
from repro.core import naming
from repro.core.block_ledger import BlockLedger
from repro.overlay.dht import DHTView
from repro.overlay.ids import key_for
from repro.overlay.node import OverlayNode

#: The block size used in the paper's simulations (4 MB).
DEFAULT_BLOCK_SIZE = 4 * (1 << 20)


class CfsStore:
    """A CFS-style fixed-block store over a DHT view.

    With ``vectorized=True`` (the default) the attempt-0 placements of *all*
    blocks of a file are resolved in one pass -- the block names are hashed in
    a batch and pushed through the ``searchsorted`` kernel of the array-backed
    placement engine -- and only blocks whose target turns out to be full fall
    back to per-attempt salted re-hashing, exactly mirroring the scalar retry
    order.  Per-file bookkeeping lives in the shared columnar
    :class:`~repro.core.block_ledger.BlockLedger` (one bulk column write per
    stored file instead of one tuple per block; replica and salted rows are
    first-class row kinds), which both trims the store loop's allocation bill
    and makes :meth:`is_file_available` an O(1) counter read that stays exact
    under out-of-band churn.  Results, placements and lookup counts are
    identical to the preserved seed path (``vectorized=False``); the
    equivalence is asserted by ``tests/test_placement_equivalence.py``.
    """

    def __init__(
        self,
        dht: DHTView,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 1,
        retries_per_block: int = 3,
        rollback_on_failure: bool = True,
        vectorized: bool = True,
        ledger: Optional[BlockLedger] = None,
        tenant: Optional[str] = None,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if retries_per_block < 0:
            raise ValueError("retries_per_block must be non-negative")
        self.dht = dht
        self.block_size = block_size
        self.replication = replication
        self.retries_per_block = retries_per_block
        self.rollback_on_failure = rollback_on_failure
        self.vectorized = vectorized
        #: Columnar bookkeeping (vectorized path only; the seed path keeps the
        #: per-block tuple lists).  Pass ``ledger`` to share one instance with
        #: other stores on the same overlay, and ``tenant`` to scope this
        #: store's files to their own namespace on a multi-tenant ledger.
        from repro.core.storage import _resolve_ledger

        self.ledger = _resolve_ledger(dht, vectorized, ledger, tenant)
        #: A private ledger's namespace is exactly ``self.files``; only a
        #: shared ledger needs the pre-flight name check on the hot path.
        self._ledger_shared = ledger is not None and self.ledger is not None
        #: Scalar path: filename -> [(block name, primary, size, replicas)].
        #: Ledger path: filename -> ledger file index.
        self.files: Dict[
            str, Union[int, List[tuple[str, OverlayNode, int, List[OverlayNode]]]]
        ] = {}
        self.total_lookups = 0

    def block_count_for(self, size: int) -> int:
        """Number of fixed-size blocks a file of ``size`` bytes is split into."""
        if size <= 0:
            return 0
        return -(-size // self.block_size)

    def _block_name(self, filename: str, index: int, attempt: int) -> str:
        base = f"{filename}/block{index}"
        return base if attempt == 0 else f"{base}#salt{attempt}"

    def store_file(self, filename: str, size: int) -> BaselineStoreResult:
        """Insert one file; one p2p lookup per block placement attempt."""
        # A shared ledger is a shared file namespace: a name another store on
        # the same ledger already registered must be rejected up front, before
        # any block is placed (for a private ledger the check is redundant and
        # skipped).
        if filename in self.files or (
            self._ledger_shared and self.ledger.file_index(filename) is not None
        ):
            return BaselineStoreResult(
                filename=filename,
                requested_size=size,
                success=False,
                stored_bytes=0,
                chunk_count=0,
                lookups=0,
                failure_reason="file already stored",
            )
        if self.vectorized:
            return self._store_file_batched(filename, size)
        return self._store_file_scalar(filename, size)

    def _store_file_scalar(self, filename: str, size: int) -> BaselineStoreResult:
        """The preserved seed path: one scalar DHT lookup per placement attempt."""
        block_count = self.block_count_for(size)
        lookups = 0
        placements: List[tuple[str, OverlayNode, int, List[OverlayNode]]] = []
        remaining = size
        for index in range(block_count):
            block_bytes = min(self.block_size, remaining)
            remaining -= block_bytes
            placed = False
            for attempt in range(self.retries_per_block + 1):
                name = self._block_name(filename, index, attempt)
                target = self.dht.lookup(key_for(name))
                lookups += 1
                if target.store_block(name, block_bytes):
                    replicas = self._replicate(name, block_bytes, target)
                    placements.append((name, target, block_bytes, replicas))
                    placed = True
                    break
            if not placed:
                return self._fail(filename, size, placements, lookups, index)
        self.files[filename] = placements
        self.total_lookups += lookups
        return BaselineStoreResult(
            filename=filename,
            requested_size=size,
            success=True,
            stored_bytes=size,
            chunk_count=block_count,
            lookups=lookups,
        )

    def _store_file_batched(self, filename: str, size: int) -> BaselineStoreResult:
        """Ledger path: batch-resolve every attempt-0 target, then apply.

        The attempt-0 resolutions are speculative (a file that fails at block
        ``i`` would never have looked up blocks beyond ``i`` in the scalar
        path), so lookups are charged to the view only as placement attempts
        are actually consumed -- keeping ``lookup_count`` parity with the
        scalar pipeline even on failed stores.  The loop carries no per-block
        tuples: placed holders accumulate in one list and the whole file is
        registered into the columnar ledger with a single bulk column write.
        """
        block_count = self.block_count_for(size)
        state = self.dht.state
        names = [self._block_name(filename, index, 0) for index in range(block_count)]
        if block_count:
            # Raises LookupError on an empty view, like the scalar path's
            # first dht.lookup; a zero-block file never looks anything up.
            targets = self.dht.resolve_digests(naming.name_digests(names), count=False).tolist()
        else:
            targets = []
        state_nodes = state.nodes
        holders: List[OverlayNode] = []
        append_holder = holders.append
        salted: List[int] = []
        replicas: List[Tuple[int, OverlayNode]] = []
        extra_lookups = 0
        remaining = size
        block_size = self.block_size
        retries = self.retries_per_block
        replicated = self.replication > 1
        for index, (name, target_index) in enumerate(zip(names, targets)):
            block_bytes = block_size if remaining >= block_size else remaining
            remaining -= block_bytes
            target = state_nodes[target_index]
            if target.store_block(name, block_bytes):
                append_holder(target)
                if replicated:
                    for replica in self._replicate(name, block_bytes, target):
                        replicas.append((index, replica))
                continue
            # Salted retries: resolved lazily, in the scalar attempt order.
            # (No per-call lookup_count bump here: this path charges the
            # view's counter in bulk, for parity with failed-store accounting.)
            placed = False
            for attempt in range(1, retries + 1):
                salted_name = self._block_name(filename, index, attempt)
                target = state.lookup_node(naming.key_int_for_name(salted_name))
                extra_lookups += 1
                if target.store_block(salted_name, block_bytes):
                    names[index] = salted_name
                    salted.append(index)
                    append_holder(target)
                    if replicated:
                        for replica in self._replicate(salted_name, block_bytes, target):
                            replicas.append((index, replica))
                    placed = True
                    break
            if not placed:
                lookups = index + 1 + extra_lookups
                self.dht.lookup_count += lookups
                return self._fail_batched(filename, size, names, holders, replicas, lookups, index)
        lookups = block_count + extra_lookups
        self.dht.lookup_count += lookups
        self.total_lookups += lookups
        self.files[filename] = self.ledger.register_striped_file(
            filename, size, names, holders, block_size, salted=salted, replicas=replicas
        )
        return BaselineStoreResult(
            filename=filename,
            requested_size=size,
            success=True,
            stored_bytes=size,
            chunk_count=block_count,
            lookups=lookups,
        )

    def _fail_batched(
        self,
        filename: str,
        size: int,
        names: List[str],
        holders: List[OverlayNode],
        replicas: List[Tuple[int, OverlayNode]],
        lookups: int,
        index: int,
    ) -> BaselineStoreResult:
        """Failure accounting for the ledger path (nothing registered yet).

        Every placed block so far is a full ``block_size`` block (only the
        last block of a file is short, and a failure always happens at or
        before it), which keeps the no-rollback accounting identical to the
        scalar path's per-placement sum.
        """
        self.total_lookups += lookups
        if self.rollback_on_failure:
            for block_index, holder in enumerate(holders):
                holder.remove_block(names[block_index])
            for block_index, replica in replicas:
                replica.remove_block(names[block_index])
            stored_bytes = 0
        else:
            stored_bytes = len(holders) * self.block_size
        return BaselineStoreResult(
            filename=filename,
            requested_size=size,
            success=False,
            stored_bytes=stored_bytes,
            chunk_count=len(holders),
            lookups=lookups,
            failure_reason=f"block {index} could not be placed",
        )

    def _fail(
        self,
        filename: str,
        size: int,
        placements: List[tuple[str, OverlayNode, int, List[OverlayNode]]],
        lookups: int,
        index: int,
    ) -> BaselineStoreResult:
        self.total_lookups += lookups
        if self.rollback_on_failure:
            self._release(placements)
            stored_bytes = 0
        else:
            stored_bytes = sum(entry[2] for entry in placements)
        return BaselineStoreResult(
            filename=filename,
            requested_size=size,
            success=False,
            stored_bytes=stored_bytes,
            chunk_count=len(placements),
            lookups=lookups,
            failure_reason=f"block {index} could not be placed",
        )

    def _replicate(self, name: str, size: int, primary: OverlayNode) -> List[OverlayNode]:
        replicas: List[OverlayNode] = []
        if self.replication <= 1:
            return replicas
        for successor in self.dht.successors(primary.node_id, self.replication * 2):
            if len(replicas) >= self.replication - 1:
                break
            if successor.node_id == primary.node_id:
                continue
            if successor.store_block(name, size):
                replicas.append(successor)
        return replicas

    def _release(self, placements: List[tuple[str, OverlayNode, int, List[OverlayNode]]]) -> None:
        for name, primary, _, replicas in placements:
            primary.remove_block(name)
            for replica in replicas:
                replica.remove_block(name)

    def chunk_sizes(self, filename: str) -> List[int]:
        """Sizes of the blocks a stored file was split into (Table 1)."""
        entry = self.files.get(filename)
        if entry is None:
            return []
        if self.ledger is not None:
            return self.ledger.baseline_block_sizes(entry)
        return [placement[2] for placement in entry]

    def block_entries(self, filename: str) -> List[tuple[str, OverlayNode, int, List[OverlayNode]]]:
        """Per-block ``(stored name, primary, size, replicas)`` bookkeeping.

        Materialised from the columnar ledger on the vectorized path and read
        straight off the tuple lists on the seed path -- the representation-
        independent accessor the equivalence oracles compare through.
        """
        entry = self.files.get(filename)
        if entry is None:
            return []
        if self.ledger is not None:
            return self.ledger.baseline_entries(entry)
        return [(name, primary, size, list(replicas)) for name, primary, size, replicas in entry]

    def is_file_available(self, filename: str) -> bool:
        """Whether every block of the file has at least one live copy.

        O(1) from the shared ledger's group counters on the vectorized path;
        the seed path walks every placement.
        """
        entry = self.files.get(filename)
        if entry is None:
            return False
        if self.ledger is not None:
            return self.ledger.file_available(entry)
        for name, primary, _, replicas in entry:
            holders = [primary, *replicas]
            if not any(holder.alive and holder.has_block(name) for holder in holders):
                return False
        return True

    def delete_file(self, filename: str) -> bool:
        """Remove the file's blocks and replicas."""
        entry = self.files.pop(filename, None)
        if entry is None:
            return False
        if self.ledger is not None:
            ledger = self.ledger
            for row in ledger.file_rows(entry):
                ledger.row_owner(row).remove_block(ledger.row_name(row))
            ledger.remove_file(filename)
            return True
        self._release(entry)
        return True
