"""Baseline storage systems the paper compares against.

* :mod:`repro.baselines.past` -- PAST: whole files are stored on the node the
  file name hashes to, with salted-rehash retries and k-replica placement on
  leaf-set neighbours.
* :mod:`repro.baselines.cfs` -- CFS: files are split into fixed-size blocks,
  each placed on the node its content/name hash maps to, replicated on the k
  successors of the block key.

Both baselines are implemented against the same DHT view and node population
as the proposed system so the comparison (Figures 7-9, Table 1) is
apples-to-apples.
"""

from repro.baselines.common import BaselineStoreResult, InsertionStats
from repro.baselines.past import PastStore
from repro.baselines.cfs import CfsStore

__all__ = ["BaselineStoreResult", "InsertionStats", "PastStore", "CfsStore"]
