"""A minimal Condor-style matchmaking scheduler.

The reproduction only needs enough of Condor to run the case study: jobs are
submitted to a queue, matched FIFO to idle machines, and their I/O goes
through the interposition layer.  Job run time is whatever the job's body
reports (for ``bigCopy`` that is dominated by simulated transfer time), so the
scheduler tracks per-machine busy windows on a virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.grid.machines import GridMachine


class SchedulingError(RuntimeError):
    """Raised when a job cannot be matched to any machine."""


@dataclass
class CondorJob:
    """A job: a name plus a body that runs on a machine and reports its duration.

    The body receives the machine it was matched to and must return the
    simulated seconds the job took (and may carry any payload via attributes
    it sets on itself).
    """

    name: str
    body: Callable[[GridMachine], float]
    submitted_at: float = 0.0


@dataclass(frozen=True)
class JobResult:
    """Completion record of one job."""

    job_name: str
    machine_name: str
    started_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        """Simulated seconds the job ran for."""
        return self.finished_at - self.started_at

    @property
    def wait_time(self) -> float:
        """Seconds the job waited in the queue before starting."""
        return self.started_at


@dataclass
class CondorPool:
    """A pool of machines plus a FIFO job queue."""

    machines: List[GridMachine]
    queue: List[CondorJob] = field(default_factory=list)
    results: List[JobResult] = field(default_factory=list)
    now: float = 0.0

    def submit(self, job: CondorJob) -> None:
        """Queue a job for execution."""
        job.submitted_at = self.now
        self.queue.append(job)

    def _next_idle_machine(self) -> Optional[GridMachine]:
        idle = [machine for machine in self.machines if machine.is_idle(self.now)]
        if not idle:
            return None
        # Deterministic choice: least-loaded, then name order.
        idle.sort(key=lambda machine: (machine.jobs_run, machine.name))
        return idle[0]

    def _advance_to_next_completion(self) -> None:
        busy_times = [machine.busy_until for machine in self.machines if machine.busy_until > self.now]
        if not busy_times:
            raise SchedulingError("no machine will ever become idle")
        self.now = min(busy_times)

    def run_all(self) -> List[JobResult]:
        """Run every queued job to completion (FIFO order)."""
        pending = list(self.queue)
        self.queue.clear()
        for job in pending:
            machine = self._next_idle_machine()
            while machine is None:
                self._advance_to_next_completion()
                machine = self._next_idle_machine()
            started = max(self.now, job.submitted_at)
            duration = float(job.body(machine))
            if duration < 0:
                raise ValueError(f"job {job.name!r} reported negative duration")
            finished = started + duration
            machine.busy_until = finished
            machine.jobs_run += 1
            self.results.append(
                JobResult(
                    job_name=job.name,
                    machine_name=machine.name,
                    started_at=started,
                    finished_at=finished,
                )
            )
        if self.results:
            self.now = max(result.finished_at for result in self.results)
        return list(self.results)

    def makespan(self) -> float:
        """Completion time of the last finished job."""
        return max((result.finished_at for result in self.results), default=0.0)

    def idle_machines(self) -> List[GridMachine]:
        """Machines idle at the current simulated time."""
        return [machine for machine in self.machines if machine.is_idle(self.now)]
