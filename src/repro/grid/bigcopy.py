"""The ``bigCopy`` case-study application (Section 6.4, Table 4).

``bigCopy`` creates a copy of a specified file: it streams the source file in
and writes the copy out through whichever storage back-end is under test.  The
measurement of interest is the end-to-end wall time and whether the copy could
be stored at all (the whole-file scheme fails once the file exceeds the
largest single contribution in the pool).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.grid.condor import CondorJob, CondorPool, JobResult
from repro.grid.iolib import InterposedIO, StorageBackend
from repro.grid.machines import GridMachine
from repro.grid.transfer import TransferCostModel

#: Default I/O request size used by the copy loop (64 MB application buffers).
DEFAULT_IO_SIZE = 64 * (1 << 20)


@dataclass(frozen=True)
class BigCopyResult:
    """Outcome of one bigCopy run."""

    file_size: int
    success: bool
    elapsed_seconds: float
    lookups: int
    chunk_count: int
    failure_reason: Optional[str] = None

    def overhead_vs(self, baseline_seconds: float) -> Optional[float]:
        """Fractional overhead relative to a baseline time (Table 4 columns)."""
        if not self.success or baseline_seconds <= 0:
            return None
        return self.elapsed_seconds / baseline_seconds - 1.0


def run_bigcopy(
    backend: StorageBackend,
    file_size: int,
    cost_model: Optional[TransferCostModel] = None,
    io_size: int = DEFAULT_IO_SIZE,
    source_name: str = "bigcopy-source",
    copy_name: str = "bigcopy-copy",
) -> BigCopyResult:
    """Copy a ``file_size``-byte file into ``backend``, reporting simulated time.

    The source file is streamed from the submitting machine (outside the
    storage pool), so reading it costs pure transfer time; the copy is written
    through the interposition layer into the back-end under test.
    """
    if file_size < 0:
        raise ValueError("file_size must be non-negative")
    cost = cost_model or TransferCostModel()
    io = InterposedIO(backend, cost)

    # Reading the source from the submission machine: straight streaming.
    read_seconds = cost.transfer_time(file_size)

    try:
        fd = io.open(copy_name, size=file_size, create=True)
    except OSError as error:
        return BigCopyResult(
            file_size=file_size,
            success=False,
            elapsed_seconds=0.0,
            lookups=io.lookup_count,
            chunk_count=0,
            failure_reason=str(error),
        )

    remaining = file_size
    while remaining > 0:
        written = io.write(fd, min(io_size, remaining))
        if written == 0:
            break
        remaining -= written
    io.close(fd)

    chunk_count = len(backend.chunk_layout(copy_name))
    elapsed = read_seconds + io.elapsed
    return BigCopyResult(
        file_size=file_size,
        success=remaining == 0,
        elapsed_seconds=elapsed,
        lookups=io.lookup_count,
        chunk_count=chunk_count,
        failure_reason=None if remaining == 0 else "short write",
    )


def bigcopy_job(
    name: str,
    backend: StorageBackend,
    file_size: int,
    cost_model: Optional[TransferCostModel] = None,
) -> CondorJob:
    """Wrap a bigCopy run as a Condor job whose duration is the simulated time."""

    def body(machine: GridMachine) -> float:
        result = run_bigcopy(backend, file_size, cost_model=cost_model)
        # Attach the detailed result to the job object for later inspection.
        body.result = result  # type: ignore[attr-defined]
        return result.elapsed_seconds if result.success else 0.0

    job = CondorJob(name=name, body=body)
    return job


def submit_and_run_bigcopy(
    pool: CondorPool,
    backend: StorageBackend,
    file_size: int,
    cost_model: Optional[TransferCostModel] = None,
    name: str = "bigCopy",
) -> tuple[JobResult, BigCopyResult]:
    """Submit a bigCopy job to a pool, run it, and return both result records."""
    job = bigcopy_job(name, backend, file_size, cost_model=cost_model)
    pool.submit(job)
    results = pool.run_all()
    job_result = results[-1]
    copy_result: BigCopyResult = job.body.result  # type: ignore[attr-defined]
    return job_result, copy_result
