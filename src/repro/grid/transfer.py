"""Cost model for data movement and p2p look-ups in the Condor case study.

Table 4 measures end-to-end ``bigCopy`` wall time, whose components the paper
identifies explicitly: the bulk transfer time over 100 Mb/s Ethernet (which
dominates for large files), a *fixed* overhead due to I/O redirection and code
interposition, and a *variable* overhead proportional to the number of p2p
look-ups (and hence to the number of chunks).  The model here charges exactly
those components; the absolute constants are configurable, and the defaults
are chosen to land in the same regime as the paper's testbed numbers (a 1 GB
whole-file copy takes on the order of 150 s).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes per second of a 100 Mb/s Ethernet link, de-rated for protocol
#: overhead (the paper's 1 GB / 151 s baseline implies ~85 % efficiency when
#: the copy streams the file once in and once out).
DEFAULT_BANDWIDTH = 100e6 / 8 * 0.85


@dataclass(frozen=True)
class TransferCostModel:
    """Charges simulated seconds for transfers, look-ups and interposition."""

    #: Effective bytes/second of one transfer direction.
    bandwidth_bytes_per_s: float = DEFAULT_BANDWIDTH
    #: Seconds per p2p look-up (DHT routing + acknowledgement round trip).
    lookup_seconds: float = 0.12
    #: Fixed seconds charged per redirected I/O session (open + close overhead
    #: of the interposition library and its RPC to the local daemon).
    interposition_seconds: float = 2.0
    #: Seconds of per-message latency charged per chunk/block transfer setup.
    per_transfer_latency: float = 0.01

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if min(self.lookup_seconds, self.interposition_seconds, self.per_transfer_latency) < 0:
            raise ValueError("cost components must be non-negative")

    def transfer_time(self, size_bytes: int) -> float:
        """Seconds to move ``size_bytes`` one way across the network."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        return size_bytes / self.bandwidth_bytes_per_s + (self.per_transfer_latency if size_bytes else 0.0)

    def copy_time(self, size_bytes: int) -> float:
        """Seconds to read ``size_bytes`` from one node and write them to another."""
        return 2.0 * self.transfer_time(size_bytes)

    def lookup_time(self, lookups: int) -> float:
        """Seconds spent on ``lookups`` p2p look-up operations."""
        if lookups < 0:
            raise ValueError("lookups must be non-negative")
        return lookups * self.lookup_seconds
