"""Machines of the Condor pool.

The case study uses 32 laboratory machines, each contributing storage drawn
uniformly between 2 GB and 15 GB, connected by 100 Mb/s Ethernet.  A
:class:`GridMachine` couples a compute slot (for running Condor jobs) with the
overlay node through which the machine contributes storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.overlay.network import OverlayNetwork
from repro.overlay.node import OverlayNode
from repro.workloads.capacity import CONDOR_CAPACITY_CONFIG, CapacityConfig, generate_capacities


@dataclass
class GridMachine:
    """One pool member: a compute slot plus its contributed storage node."""

    name: str
    overlay_node: OverlayNode
    #: Simulated time at which the machine finishes its current job (0 = idle).
    busy_until: float = 0.0
    jobs_run: int = 0

    @property
    def contributed_capacity(self) -> int:
        """Bytes of storage this machine contributes to the pool."""
        return self.overlay_node.capacity

    def is_idle(self, now: float) -> bool:
        """Whether the machine can accept a job at simulated time ``now``."""
        return self.overlay_node.alive and now >= self.busy_until


def build_condor_pool_nodes(
    machine_count: int = 32,
    capacity_config: Optional[CapacityConfig] = None,
    seed: int = 0,
) -> tuple[OverlayNetwork, List[GridMachine]]:
    """Build the overlay + machine list for a Condor-style pool.

    Returns the overlay network (whose nodes carry the contributed capacities)
    and the machine wrappers in a deterministic order.
    """
    if machine_count < 1:
        raise ValueError("machine_count must be >= 1")
    config = capacity_config or CapacityConfig(
        node_count=machine_count,
        distribution=CONDOR_CAPACITY_CONFIG.distribution,
        low=CONDOR_CAPACITY_CONFIG.low,
        high=CONDOR_CAPACITY_CONFIG.high,
    )
    if config.node_count != machine_count:
        raise ValueError("capacity_config.node_count must match machine_count")
    rng = np.random.default_rng(seed)
    capacities = generate_capacities(config, rng=rng)
    network = OverlayNetwork.build(machine_count, rng=rng, capacities=list(capacities))
    machines = [
        GridMachine(name=f"machine-{index:02d}", overlay_node=node)
        for index, node in enumerate(network.nodes())
    ]
    return network, machines
