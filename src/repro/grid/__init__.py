"""Desktop-grid substrate for the Condor case study (Section 6.4).

The paper interfaces its storage system with Condor through an
``LD_PRELOAD``-based I/O interposition library and measures a simple
``bigCopy`` job copying files of 1-128 GB across a 32-machine pool on
100 Mb/s Ethernet, comparing three back-ends: the original whole-file scheme,
a CFS-like fixed-chunk scheme and the proposed varying-chunk scheme.

This package reproduces each moving part:

* :mod:`repro.grid.transfer`  -- the network/time cost model (bandwidth,
  per-lookup latency, interposition overhead);
* :mod:`repro.grid.machines`  -- the pool machines and their contributed space;
* :mod:`repro.grid.condor`    -- a minimal matchmaking scheduler that queues
  and runs jobs on idle machines;
* :mod:`repro.grid.iolib`     -- the interposition layer (open/read/write/close
  with an fd -> storing-node cache) over pluggable storage back-ends;
* :mod:`repro.grid.bigcopy`   -- the ``bigCopy`` application and the Table 4
  measurement helper.
"""

from repro.grid.transfer import TransferCostModel
from repro.grid.machines import GridMachine, build_condor_pool_nodes
from repro.grid.condor import CondorJob, CondorPool, JobResult
from repro.grid.iolib import (
    FixedChunkBackend,
    InterposedIO,
    StorageBackend,
    VaryingChunkBackend,
    WholeFileBackend,
)
from repro.grid.bigcopy import BigCopyResult, run_bigcopy

__all__ = [
    "TransferCostModel",
    "GridMachine",
    "build_condor_pool_nodes",
    "CondorJob",
    "CondorPool",
    "JobResult",
    "InterposedIO",
    "StorageBackend",
    "WholeFileBackend",
    "FixedChunkBackend",
    "VaryingChunkBackend",
    "BigCopyResult",
    "run_bigcopy",
]
