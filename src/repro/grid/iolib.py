"""I/O interposition layer and the pluggable storage back-ends it redirects to.

The paper's implementation overrides ``open``/``read``/``write``/``close`` via
``LD_PRELOAD`` (259 lines of C) and forwards the calls to a lookup module that
maps the accessed byte range to the chunk holding it and to the node storing
that chunk, keeping a small cache of file-descriptor -> storing-node entries
so repeated accesses avoid p2p look-ups.  :class:`InterposedIO` reproduces
that layer against simulated time: every redirected call charges interposition
overhead, cache misses charge p2p look-ups, and data movement charges transfer
time, all through :class:`repro.grid.transfer.TransferCostModel`.

Three back-ends implement the schemes compared in Table 4:

* :class:`WholeFileBackend`   -- the original Condor model: the whole file must
  fit on a single designated machine; no DHT, no redirection overhead;
* :class:`FixedChunkBackend`  -- a CFS-like scheme with fixed-size chunks;
* :class:`VaryingChunkBackend`-- the proposed system with capacity-negotiated
  variable-size chunks.
"""

from __future__ import annotations

import abc
import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.cfs import CfsStore
from repro.core.storage import StorageSystem
from repro.grid.transfer import TransferCostModel
from repro.overlay.node import OverlayNode


@dataclass(frozen=True)
class BackendStoreOutcome:
    """Result of asking a back-end to place a new file."""

    success: bool
    chunk_sizes: List[int]
    lookups: int
    failure_reason: Optional[str] = None

    @property
    def chunk_count(self) -> int:
        """Number of data chunks the file was split into."""
        return len(self.chunk_sizes)


class StorageBackend(abc.ABC):
    """Interface the interposition layer redirects file operations to."""

    #: Whether opening files through this back-end involves the interposition
    #: library at all (the whole-file scheme bypasses it entirely).
    uses_interposition: bool = True

    @abc.abstractmethod
    def create_file(self, filename: str, size: int) -> BackendStoreOutcome:
        """Allocate/stage a new file of ``size`` bytes."""

    @abc.abstractmethod
    def chunk_layout(self, filename: str) -> List[int]:
        """Chunk sizes of a stored file (for read planning)."""

    @abc.abstractmethod
    def delete_file(self, filename: str) -> None:
        """Remove a stored file, releasing its space."""


class WholeFileBackend(StorageBackend):
    """Original Condor I/O model: the entire file lives on one machine."""

    uses_interposition = False

    def __init__(self, target: OverlayNode) -> None:
        self.target = target
        self._files: Dict[str, int] = {}

    def create_file(self, filename: str, size: int) -> BackendStoreOutcome:
        if filename in self._files:
            return BackendStoreOutcome(False, [], 0, "file already exists")
        if not self.target.store_block(filename, size):
            return BackendStoreOutcome(
                False,
                [],
                0,
                f"machine {self.target.node_id!r} lacks {size} bytes of free space",
            )
        self._files[filename] = size
        return BackendStoreOutcome(True, [size], 0)

    def chunk_layout(self, filename: str) -> List[int]:
        if filename not in self._files:
            raise KeyError(filename)
        return [self._files[filename]]

    def delete_file(self, filename: str) -> None:
        size = self._files.pop(filename, None)
        if size is not None:
            self.target.remove_block(filename)


class FixedChunkBackend(StorageBackend):
    """CFS-like fixed-size chunk placement through the DHT."""

    def __init__(self, store: CfsStore) -> None:
        self.store = store

    def create_file(self, filename: str, size: int) -> BackendStoreOutcome:
        result = self.store.store_file(filename, size)
        return BackendStoreOutcome(
            success=result.success,
            chunk_sizes=self.store.chunk_sizes(filename) if result.success else [],
            lookups=result.lookups,
            failure_reason=result.failure_reason,
        )

    def chunk_layout(self, filename: str) -> List[int]:
        sizes = self.store.chunk_sizes(filename)
        if not sizes:
            raise KeyError(filename)
        return sizes

    def delete_file(self, filename: str) -> None:
        self.store.delete_file(filename)


class VaryingChunkBackend(StorageBackend):
    """The proposed system: capacity-negotiated variable-size chunks."""

    def __init__(self, storage: StorageSystem) -> None:
        self.storage = storage

    def create_file(self, filename: str, size: int) -> BackendStoreOutcome:
        result = self.storage.store_file(filename, size)
        if not result.success:
            return BackendStoreOutcome(False, [], result.lookups, result.failure_reason)
        stored = self.storage.files[filename]
        sizes = [chunk.size for chunk in stored.data_chunks()]
        return BackendStoreOutcome(True, sizes, result.lookups)

    def chunk_layout(self, filename: str) -> List[int]:
        stored = self.storage.files.get(filename)
        if stored is None:
            raise KeyError(filename)
        return [chunk.size for chunk in stored.data_chunks()]

    def delete_file(self, filename: str) -> None:
        self.storage.delete_file(filename)


@dataclass
class _OpenFile:
    """State of one open file descriptor."""

    filename: str
    size: int
    position: int = 0
    writable: bool = False
    #: Chunks whose storing node is already known (the lookup-module cache).
    cached_chunks: set = field(default_factory=set)


class InterposedIO:
    """The redirected POSIX-like interface used by grid applications."""

    def __init__(self, backend: StorageBackend, cost_model: Optional[TransferCostModel] = None) -> None:
        self.backend = backend
        self.cost = cost_model or TransferCostModel()
        self._descriptors: Dict[int, _OpenFile] = {}
        self._next_fd = 3  # 0-2 are conventionally stdin/stdout/stderr
        #: Accumulated simulated seconds across all calls.
        self.elapsed = 0.0
        self.lookup_count = 0
        self.call_count = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- internal charging -----------------------------------------------------
    def _charge(self, seconds: float) -> None:
        self.elapsed += seconds

    def _charge_interposition(self) -> None:
        if self.backend.uses_interposition:
            self._charge(self.cost.interposition_seconds)

    def _charge_lookups(self, count: int) -> None:
        if count > 0 and self.backend.uses_interposition:
            self.lookup_count += count
            self._charge(self.cost.lookup_time(count))

    # -- POSIX-like API -----------------------------------------------------------
    def open(self, filename: str, size: int = 0, create: bool = False) -> int:
        """Open (or create) a file; returns a file descriptor.

        Creating a file triggers the back-end's placement (and its look-ups);
        opening an existing file locates its metadata with a single look-up.
        """
        self.call_count += 1
        self._charge_interposition()
        if create:
            outcome = self.backend.create_file(filename, size)
            self._charge_lookups(outcome.lookups)
            if not outcome.success:
                raise OSError(f"cannot create {filename!r}: {outcome.failure_reason}")
            file_size = size
        else:
            layout = self.backend.chunk_layout(filename)  # raises KeyError if unknown
            self._charge_lookups(1)
            file_size = sum(layout)
        fd = self._next_fd
        self._next_fd += 1
        self._descriptors[fd] = _OpenFile(filename=filename, size=file_size, writable=create)
        return fd

    def _descriptor(self, fd: int) -> _OpenFile:
        try:
            return self._descriptors[fd]
        except KeyError as error:
            raise OSError(f"bad file descriptor: {fd}") from error

    def _chunk_ends(self, handle: _OpenFile) -> List[int]:
        """Cumulative end offsets of the file's chunks (cached per descriptor)."""
        ends = getattr(handle, "_chunk_ends", None)
        if ends is None:
            layout = self.backend.chunk_layout(handle.filename)
            ends = []
            total = 0
            for chunk_size in layout:
                total += chunk_size
                ends.append(total)
            handle._chunk_ends = ends  # type: ignore[attr-defined]
        return ends

    def _chunks_for_span(self, handle: _OpenFile, offset: int, length: int) -> List[int]:
        """Chunk indices overlapped by [offset, offset+length)."""
        ends = self._chunk_ends(handle)
        if not ends or length <= 0:
            return []
        first = bisect.bisect_right(ends, offset)
        last = bisect.bisect_left(ends, offset + length)
        return list(range(first, min(last + 1, len(ends))))

    def read(self, fd: int, length: int) -> int:
        """Sequentially read ``length`` bytes; returns bytes actually read."""
        self.call_count += 1
        handle = self._descriptor(fd)
        length = max(0, min(length, handle.size - handle.position))
        if length == 0:
            return 0
        touched = self._chunks_for_span(handle, handle.position, length)
        misses = [index for index in touched if index not in handle.cached_chunks]
        self._charge_lookups(len(misses))
        handle.cached_chunks.update(misses)
        self._charge(self.cost.transfer_time(length))
        handle.position += length
        self.bytes_read += length
        return length

    def write(self, fd: int, length: int) -> int:
        """Sequentially write ``length`` bytes; returns bytes written."""
        self.call_count += 1
        handle = self._descriptor(fd)
        if not handle.writable:
            raise OSError(f"descriptor {fd} not open for writing")
        if length < 0:
            raise ValueError("length must be non-negative")
        if length == 0:
            return 0
        end = min(handle.position + length, handle.size)
        length = end - handle.position
        touched = self._chunks_for_span(handle, handle.position, length)
        misses = [index for index in touched if index not in handle.cached_chunks]
        # Chunk placement was already resolved at create time; writes only pay
        # per-chunk transfer setup latency plus the data movement itself.
        handle.cached_chunks.update(misses)
        self._charge(self.cost.transfer_time(length))
        self._charge(len(misses) * self.cost.per_transfer_latency)
        handle.position += length
        self.bytes_written += length
        return length

    def seek(self, fd: int, position: int) -> int:
        """Reposition the descriptor; returns the new position."""
        handle = self._descriptor(fd)
        if not 0 <= position <= handle.size:
            raise ValueError(f"seek position {position} outside file of size {handle.size}")
        handle.position = position
        return position

    def close(self, fd: int) -> None:
        """Close the descriptor, clearing its cache state for reuse."""
        self.call_count += 1
        self._descriptors.pop(fd, None)
