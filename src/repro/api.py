"""The client facade: one place that owns overlay + ledger + fabric wiring.

Eight PRs of subsystem growth left every experiment and example repeating the
same deployment block -- generate capacities, build the overlay, assign
failure domains, make a ``DHTView``, share a ``BlockLedger``, construct one
``StorageSystem`` per tenant, build a ``Simulator`` + ``TransferScheduler``
over an oversubscribed topology, and finally thread ``attach_transfers``
keyword sprawl through every call site.  :class:`ClusterSession` owns that
wiring once and :class:`ArchiveClient` is the per-tenant handle on top::

    session = ClusterSession(10_000, seed=7, sites=4, racks_per_site=4,
                             bandwidth_mb_s=8.0, oversubscription=4.0)
    archive = session.client(tenant="archive")
    archive.store("scan-0001", 64 * 1024 * 1024)
    archive.attach()                    # charge future traffic to the fabric
    session.run()
    result = archive.retrieve("scan-0001")

The old keyword surface (``StorageSystem(..., vectorized=, ledger=,
tenant=)``, ``attach_transfers(scheduler, client=, observer=)``) remains the
supported low-level API -- the facade builds on it and
``tests/test_api.py`` pins that both wirings are placement- and
RNG-identical (same ``RandomStreams`` labels, same construction order).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from repro.core.block_ledger import BlockLedger
from repro.core.cache import CacheManager
from repro.core.recovery import RecoveryManager
from repro.core.storage import _UNSET, RetrieveResult, StorageSystem, StoreResult
from repro.core.transfer import TransferScheduler, oversubscribed_topology
from repro.multicast.replication import MulticastReplicator, ReplicationReport
from repro.overlay.dht import DHTView
from repro.overlay.network import OverlayNetwork
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector, assign_domains
from repro.sim.rng import RandomStreams
from repro.workloads.capacity import CapacityConfig, generate_capacities
from repro.workloads.filetrace import MB


class ClusterSession:
    """One deployed archive cluster: overlay, ledger, clock, transfer fabric.

    Building a session consumes RNG streams with the same labels and in the
    same order as the hand-rolled experiment wiring (``"capacities"`` then
    ``"overlay"``), so a session-built deployment is bit-identical to the
    manual one.  Pass an already-built ``network`` (or use :meth:`adopt`)
    to wrap existing overlays without consuming any randomness.
    """

    def __init__(
        self,
        node_count: Optional[int] = None,
        *,
        seed: int = 0,
        streams: Optional[RandomStreams] = None,
        rng: Optional[np.random.Generator] = None,
        network: Optional[OverlayNetwork] = None,
        capacities=None,
        capacity_config: Optional[CapacityConfig] = None,
        sites: Optional[int] = None,
        racks_per_site: int = 1,
        bandwidth_mb_s: Optional[float] = None,
        oversubscription: Optional[float] = None,
        latency: Optional[Dict[str, float]] = None,
        leaf_set_half_size: int = 8,
        vectorized: bool = True,
        fast_build: Optional[bool] = None,
        sim: Optional[Simulator] = None,
    ) -> None:
        self.vectorized = vectorized
        self.fast_build = vectorized if fast_build is None else fast_build
        self.streams = streams or RandomStreams(seed)
        if network is None:
            if node_count is None:
                raise ValueError("either node_count or an existing network is required")
            if capacities is None and capacity_config is not None:
                if capacity_config.node_count != node_count:
                    capacity_config = replace(capacity_config, node_count=node_count)
                capacities = generate_capacities(
                    capacity_config, rng=self.streams.fresh("capacities")
                )
            network = OverlayNetwork.build(
                node_count,
                rng=rng if rng is not None else self.streams.fresh("overlay"),
                capacities=list(capacities) if capacities is not None else None,
                leaf_set_half_size=leaf_set_half_size,
                routing_state=not self.fast_build,
            )
            if sites is not None:
                assign_domains(network.nodes(), sites=sites,
                               racks_per_site=racks_per_site)
        self.network = network
        self.dht = DHTView(network)
        #: One shared multi-tenant ledger for every client of this session
        #: (``None`` on the scalar path, which has no columnar bookkeeping).
        self.ledger: Optional[BlockLedger] = BlockLedger(network) if vectorized else None
        self.sim = sim or Simulator()
        self.transfers: Optional[TransferScheduler] = None
        if bandwidth_mb_s is not None:
            rate = bandwidth_mb_s * MB
            topology = None
            if oversubscription is not None:
                topology = oversubscribed_topology(
                    network.nodes(),
                    access_bandwidth=rate,
                    oversubscription=oversubscription,
                    **(latency or {}),
                )
            self.transfers = TransferScheduler(self.sim, uplink=rate,
                                               downlink=rate, topology=topology)
        self._clients: Dict[Optional[str], "ArchiveClient"] = {}
        self._routers: Dict[str, object] = {}

    @classmethod
    def adopt(cls, network: OverlayNetwork, **kwargs) -> "ClusterSession":
        """Wrap an overlay built elsewhere (consumes no randomness)."""
        return cls(network=network, **kwargs)

    # ---------------------------------------------------------------- clients --
    def client(
        self,
        tenant: Optional[str] = None,
        *,
        codec=None,
        policy=None,
        payload_mode: bool = False,
        track_neighbor_ledgers: bool = False,
    ) -> "ArchiveClient":
        """A per-tenant storage client on this session's shared deployment.

        Each tenant name may be claimed once per session (the tenant scopes
        a namespace on the shared ledger); ``tenant=None`` is the single
        untagged client.
        """
        if tenant in self._clients:
            raise ValueError(
                f"tenant {tenant!r} already has a client on this session"
            )
        storage = StorageSystem(
            self.dht,
            codec=codec,
            policy=policy,
            payload_mode=payload_mode,
            track_neighbor_ledgers=track_neighbor_ledgers,
            vectorized=self.vectorized,
            ledger=self.ledger,
            tenant=tenant,
        )
        handle = ArchiveClient(self, storage, tenant=tenant)
        self._clients[tenant] = handle
        return handle

    def clients(self) -> List["ArchiveClient"]:
        """Every client created on this session, in creation order."""
        return list(self._clients.values())

    # ---------------------------------------------------------------- services --
    def recovery(self, client, **kwargs) -> RecoveryManager:
        """A repair manager for one client's store, on this session's fabric."""
        storage = client.storage if isinstance(client, ArchiveClient) else client
        if self.transfers is not None:
            kwargs.setdefault("transfers", self.transfers)
        return RecoveryManager(storage, **kwargs)

    def fault_injector(self, recovery: Optional[RecoveryManager] = None,
                       repair_spacing: float = 0.0, **kwargs) -> FaultInjector:
        """A fault injector over this session's clock, overlay and fabric."""
        return FaultInjector(self.sim, self.network, recovery=recovery,
                             transfers=self.transfers,
                             repair_spacing=repair_spacing, **kwargs)

    # ------------------------------------------------------------------- clock --
    @property
    def now(self) -> float:
        """The session clock (simulated seconds)."""
        return self.sim.now

    def run(self, until: Optional[float] = None) -> None:
        """Drain the event queue (optionally up to simulated time ``until``)."""
        self.sim.run(until=until)

    # ----------------------------------------------------------------- routing --
    def routing(self, engine: str = "pastry", **kwargs):
        """An array routing engine over this session's overlay (cached per name).

        The first call for a given engine name builds the engine from the
        live population and registers it as a churn listener on the network
        (so joins/leaves/failures keep its tables patched); later calls
        return the cached instance.  The *first* engine built also becomes
        ``network.router``, the dispatch target of ``network.route`` /
        ``route_many`` on fast-build sessions.
        """
        cached = self._routers.get(engine)
        if cached is not None:
            if kwargs:
                raise ValueError(
                    f"router {engine!r} already built for this session; "
                    "engine options only apply to the first call"
                )
            return cached
        router = self.network.attach_router(
            engine, dispatch=not self._routers, **kwargs)
        self._routers[engine] = router
        return router

    # ----------------------------------------------------------------- helpers --
    def gateways(self, count: int) -> List[int]:
        """``count`` live node ids, evenly strided over the sorted population.

        The serving engine uses these as its front-end client nodes; the
        even stride keeps them deterministic and spread across the id space
        (and therefore across failure domains under round-robin placement).
        """
        live = sorted(int(node.node_id) for node in self.network.live_nodes())
        if not live:
            return []
        count = min(count, len(live))
        stride = len(live) / count
        return [live[int(index * stride)] for index in range(count)]

    def utilization(self) -> float:
        """Fraction of contributed capacity currently used."""
        return self.dht.utilization()


class ArchiveClient:
    """One tenant's handle on a :class:`ClusterSession` deployment."""

    def __init__(self, session: ClusterSession, storage: StorageSystem,
                 tenant: Optional[str] = None) -> None:
        self.session = session
        self.storage = storage
        self._tenant = tenant

    # ------------------------------------------------------------------ fabric --
    def attach(self, client: Optional[int] = None, observer=None) -> None:
        """Charge this client's data movement to the session's fabric."""
        if self.session.transfers is None:
            raise RuntimeError(
                "this session has no transfer fabric (pass bandwidth_mb_s)"
            )
        self.storage.attach_transfers(self.session.transfers, client=client,
                                      observer=observer)

    def attach_cache(self, cache) -> CacheManager:
        """Attach a per-client-node block cache (a manager or a byte budget)."""
        if not isinstance(cache, CacheManager):
            cache = CacheManager(int(cache))
        self.storage.attach_cache(cache)
        return cache

    # -------------------------------------------------------------------- data --
    def store(self, filename: str, size: Optional[int] = None,
              data: Optional[bytes] = None, *,
              client=_UNSET, observer=_UNSET) -> StoreResult:
        """Store one file: ``size`` in capacity mode, ``data`` in payload mode."""
        if data is not None:
            return self.storage.store_bytes(filename, data,
                                            client=client, observer=observer)
        if size is None:
            raise ValueError("store() needs either size= or data=")
        return self.storage.store_file(filename, size,
                                       client=client, observer=observer)

    def retrieve(self, filename: str, offset: Optional[int] = None,
                 length: Optional[int] = None, *,
                 client=_UNSET, observer=_UNSET) -> RetrieveResult:
        """Retrieve a whole file, or a byte range when ``offset`` is given."""
        if offset is None and length is None:
            return self.storage.retrieve_file(filename,
                                              client=client, observer=observer)
        if offset is None or length is None:
            raise ValueError("range retrieval needs both offset= and length=")
        return self.storage.retrieve_range(filename, offset, length,
                                           client=client, observer=observer)

    def delete(self, filename: str) -> bool:
        """Remove a file, releasing every block, replica and CAT copy."""
        return self.storage.delete_file(filename)

    def available(self, filename: str) -> bool:
        """Whether every chunk of the file can still be recovered."""
        return self.storage.is_file_available(filename)

    def replicate(self, filename: str, replicas: int, *,
                  rng: Optional[np.random.Generator] = None,
                  fanout: int = 2,
                  simulate_push: bool = True) -> List[ReplicationReport]:
        """Push ``replicas`` extra copies of every data chunk of one file."""
        replicator = MulticastReplicator(self.storage, rng=rng, fanout=fanout,
                                         simulate_push=simulate_push)
        return replicator.replicate_file(filename, replicas)

    # -------------------------------------------------------------- accounting --
    def aggregates(self) -> Dict[str, float]:
        """This tenant's usage aggregates (system-wide when untagged)."""
        ledger = self.storage.ledger
        tenant_id = self.storage.store_tenant
        if tenant_id is not None:
            return ledger.base.tenant_aggregates(tenant_id)
        return self.storage.usage_summary()

    @property
    def tenant(self) -> Optional[str]:
        """The tenant name this client stores under (``None`` when untagged)."""
        return self._tenant

    @property
    def file_count(self) -> int:
        """Number of files this client currently stores."""
        return self.storage.file_count
