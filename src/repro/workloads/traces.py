"""Trace (de)serialisation.

Generated traces can be saved so an experiment can be repeated on the exact
same workload (the reproduction analogue of the paper distributing its crawled
trace).  The format is a small JSON header plus a NumPy ``.npz`` payload for
the sizes, which keeps million-file traces compact and fast to load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.workloads.filetrace import FileRecord, FileTrace


_FORMAT_VERSION = 1


def save_trace(trace: FileTrace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` (a ``.npz`` file).  Returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = np.asarray([record.name for record in trace.files])
    sizes = trace.sizes
    header = json.dumps({"version": _FORMAT_VERSION, "count": len(trace)})
    np.savez_compressed(path, header=np.asarray(header), names=names, sizes=sizes)
    return path


def load_trace(path: Union[str, Path]) -> FileTrace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(str(archive["header"]))
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version: {header.get('version')!r}")
        names = [str(name) for name in archive["names"]]
        sizes = [int(size) for size in archive["sizes"]]
    if len(names) != len(sizes):
        raise ValueError("corrupt trace: name/size arrays differ in length")
    return FileTrace(files=[FileRecord(name=name, size=size) for name, size in zip(names, sizes)])
