"""Node storage-capacity distributions.

The simulations assign each node a contributed capacity drawn from a normal
distribution with mean 45 GB and standard deviation 10 GB (Section 6.1); the
Condor case study uses 32 machines contributing between 2 GB and 15 GB drawn
uniformly (Section 6.4).  Both generators live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.workloads.filetrace import GB


@dataclass(frozen=True)
class CapacityConfig:
    """Parameters of the capacity generator."""

    node_count: int = 10_000
    distribution: str = "normal"
    mean: int = 45 * GB
    std: int = 10 * GB
    low: int = 2 * GB
    high: int = 15 * GB
    #: Capacities are floored at this value (a contributor never has negative
    #: or zero space); the paper's parameters make negative draws negligible.
    minimum: int = 1 * GB

    def __post_init__(self) -> None:
        if self.node_count < 0:
            raise ValueError("node_count must be non-negative")
        if self.distribution not in ("normal", "uniform"):
            raise ValueError(f"unknown capacity distribution {self.distribution!r}")
        if self.minimum < 0:
            raise ValueError("minimum capacity must be non-negative")


#: The paper's simulation configuration (Section 6.1).
PAPER_CAPACITY_CONFIG = CapacityConfig(node_count=10_000, distribution="normal")

#: The Condor case-study configuration (Section 6.4).
CONDOR_CAPACITY_CONFIG = CapacityConfig(
    node_count=32, distribution="uniform", low=2 * GB, high=15 * GB
)


def generate_capacities(
    config: Optional[CapacityConfig] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Sample per-node contributed capacities (bytes) as an int64 array."""
    config = config or PAPER_CAPACITY_CONFIG
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    if config.node_count == 0:
        return np.zeros(0, dtype=np.int64)
    if config.distribution == "normal":
        values = rng.normal(config.mean, config.std, size=config.node_count)
    else:
        values = rng.uniform(config.low, config.high, size=config.node_count)
    values = np.maximum(values, config.minimum)
    return np.asarray(np.round(values), dtype=np.int64)
