"""Composable per-tenant workload profiles for the QoS isolation suite.

Each profile schedules one tenant's traffic against its own tenant-scoped
:class:`~repro.core.storage.StorageSystem` (a :class:`~repro.core.
block_ledger.TenantLedgerView` over the shared ledger) on the discrete-event
clock.  Because the store is attached to the transfer fabric
(:meth:`~repro.core.storage.StorageSystem.attach_transfers`), every store and
push automatically charges tenant-tagged transfers -- the profiles never touch
the scheduler directly except for the distribution profile's fan-out pushes.

Three profiles ground the flagship noisy-neighbor panel:

* :class:`MedicalIngestProfile` -- a medical-image archive pushing per-study
  frame sets into the store (the arcana/pipeline2app-style typed dataset
  ingest: a study arrives as one batch of lognormal-sized frame files);
* :class:`BigCopyBurstProfile` -- Condor-style staging bursts, one
  multi-gigabyte input file per burst (``grid/bigcopy.py``'s workload shape);
* :class:`BulletDistributionProfile` -- steady Bullet-style dissemination of
  a stored payload from its holder to a rotating subscriber set
  (``multicast/bullet.py``'s push pattern as background distribution load).

All profiles are deterministic given their RNG stream: batch contents are
generated eagerly at schedule time, so two runs with the same seeds produce
identical event timelines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.filetrace import GB, MB, FileTrace, FileTraceConfig, generate_file_trace


@dataclass
class ProfileRun:
    """Mutable accounting for one scheduled profile (filled as the sim runs)."""

    tenant: str
    profile: str
    stores_attempted: int = 0
    stores_succeeded: int = 0
    bytes_requested: int = 0
    bytes_stored: int = 0
    #: Distribution fan-out pushes submitted (BulletDistributionProfile only).
    pushes: int = 0
    push_bytes: int = 0

    @property
    def store_success_pct(self) -> float:
        """Percentage of attempted stores that succeeded."""
        if self.stores_attempted == 0:
            return 100.0
        return 100.0 * self.stores_succeeded / self.stores_attempted


def _tenant_label(storage) -> str:
    """The tenant name of a tenant-scoped store (``"-"`` when untagged)."""
    return getattr(storage.ledger, "tenant_name", None) or "-"


@dataclass(frozen=True)
class MedicalIngestProfile:
    """Per-study frame-batch ingest of a medical-image archive tenant.

    Studies arrive on a fixed cadence; each study is one batch of
    ``frames_per_study`` lognormal-sized frame files stored back to back
    (one acquisition pushed into the typed dataset store as a unit).
    """

    studies: int = 24
    frames_per_study: int = 16
    mean_frame_size: int = 12 * MB
    std_frame_size: int = 6 * MB
    min_frame_size: int = 1 * MB
    study_interval_s: float = 30.0
    start_s: float = 0.0
    name_prefix: str = "study"

    def study_trace(self, study: int, rng: np.random.Generator) -> FileTrace:
        """The frame files of one study (lognormal sizes, stable names)."""
        return generate_file_trace(
            FileTraceConfig(
                file_count=self.frames_per_study,
                mean_size=self.mean_frame_size,
                std_size=self.std_frame_size,
                min_size=self.min_frame_size,
                model="lognormal",
                name_prefix=f"{self.name_prefix}-{study:04d}.frame",
            ),
            rng=rng,
        )

    def schedule(self, sim, storage, rng: np.random.Generator) -> ProfileRun:
        """Queue every study batch on the sim clock; returns live accounting."""
        run = ProfileRun(tenant=_tenant_label(storage), profile="medical_ingest")

        def ingest(trace: FileTrace) -> None:
            for record in trace:
                run.stores_attempted += 1
                run.bytes_requested += record.size
                if storage.store_file(record.name, record.size).success:
                    run.stores_succeeded += 1
                    run.bytes_stored += record.size

        for study in range(self.studies):
            trace = self.study_trace(study, rng)  # eager: determinism
            sim.schedule(self.start_s + study * self.study_interval_s,
                         lambda t=trace: ingest(t))
        return run


@dataclass(frozen=True)
class BigCopyBurstProfile:
    """Condor-style staging bursts: one large input file per burst.

    The burst sizes cycle through ``sizes_gb`` (the classic 1..32 GB bigcopy
    ladder by default), one store per ``burst_interval_s``.
    """

    bursts: int = 6
    sizes_gb: tuple = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
    burst_interval_s: float = 120.0
    start_s: float = 0.0
    name_prefix: str = "bigcopy"

    def schedule(self, sim, storage, rng: np.random.Generator) -> ProfileRun:
        """Queue every staging burst on the sim clock; returns live accounting."""
        run = ProfileRun(tenant=_tenant_label(storage), profile="bigcopy_bursts")

        def burst(index: int) -> None:
            size = int(self.sizes_gb[index % len(self.sizes_gb)] * GB)
            run.stores_attempted += 1
            run.bytes_requested += size
            if storage.store_file(f"{self.name_prefix}-{index:03d}", size).success:
                run.stores_succeeded += 1
                run.bytes_stored += size

        for index in range(self.bursts):
            sim.schedule(self.start_s + index * self.burst_interval_s,
                         lambda i=index: burst(i))
        return run


@dataclass(frozen=True)
class BulletDistributionProfile:
    """Steady Bullet-style dissemination as background distribution load.

    A seed payload is stored once at schedule time; every round thereafter
    pushes one ``payload`` worth of bytes from a live holder of the seed
    file's first placement to ``fanout`` stride-rotated live subscribers,
    as tenant-tagged transfers on the shared fabric.
    """

    rounds: int = 40
    payload: int = 16 * MB
    fanout: int = 4
    period_s: float = 15.0
    start_s: float = 0.0
    name_prefix: str = "bullet-seed"

    def schedule(self, sim, storage, transfers, network,
                 rng: np.random.Generator) -> ProfileRun:
        """Store the seed payload, then queue every push round on the clock."""
        run = ProfileRun(tenant=_tenant_label(storage), profile="bullet_distribution")
        tenant = storage.store_tenant
        seed_name = f"{self.name_prefix}-000"
        run.stores_attempted += 1
        run.bytes_requested += self.payload
        if storage.store_file(seed_name, self.payload).success:
            run.stores_succeeded += 1
            run.bytes_stored += self.payload

        def push(round_index: int) -> None:
            stored = storage.files.get(seed_name)
            if stored is None or not stored.chunks or not stored.chunks[0].placements:
                return
            placement = stored.chunks[0].placements[0]
            src = None
            for node_id in (placement.node_id, *placement.replica_nodes):
                if node_id in network and network.node(node_id).alive:
                    src = int(node_id)
                    break
            if src is None:
                return
            live = sorted(network.live_nodes(), key=lambda node: int(node.node_id))
            if not live:
                return
            share = self.payload / self.fanout
            for leaf in range(self.fanout):
                client = live[(round_index * 31 + leaf * 7 + 1) % len(live)]
                if not client.alive or int(client.node_id) == src:
                    continue
                transfers.submit(share, src=src, dst=int(client.node_id), tenant=tenant)
                run.pushes += 1
                run.push_bytes += int(share)

        for round_index in range(self.rounds):
            sim.schedule(self.start_s + round_index * self.period_s,
                         lambda i=round_index: push(i))
        return run
