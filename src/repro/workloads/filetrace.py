"""Synthetic file-system traces matching the paper's trace statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

#: Bytes per mega/gigabyte used throughout the reproduction (binary units,
#: matching the paper's "4 MB chunk", "45 GB capacity" style figures).
MB = 1 << 20
GB = 1 << 30


@dataclass(frozen=True)
class FileRecord:
    """One file of the workload: name and size in bytes."""

    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"file size must be non-negative, got {self.size}")


@dataclass
class FileTrace:
    """An ordered collection of files to insert into the storage systems."""

    files: List[FileRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.files)

    def __iter__(self) -> Iterator[FileRecord]:
        return iter(self.files)

    def __getitem__(self, index: int) -> FileRecord:
        return self.files[index]

    @property
    def total_bytes(self) -> int:
        """Sum of all file sizes."""
        return sum(record.size for record in self.files)

    @property
    def sizes(self) -> np.ndarray:
        """File sizes as an int64 array (for vectorised statistics)."""
        return np.asarray([record.size for record in self.files], dtype=np.int64)

    def mean_size(self) -> float:
        """Mean file size in bytes."""
        return float(self.sizes.mean()) if self.files else 0.0

    def std_size(self) -> float:
        """Standard deviation of file sizes in bytes."""
        return float(self.sizes.std()) if self.files else 0.0

    def subset(self, count: int) -> "FileTrace":
        """The first ``count`` files as a new trace."""
        return FileTrace(files=self.files[:count])


@dataclass(frozen=True)
class FileTraceConfig:
    """Parameters of the synthetic trace generator.

    Defaults reproduce the paper's trace statistics: minimum file size 50 MB,
    mean 243 MB, standard deviation 55 MB.  Two models are offered:

    * ``truncated-normal`` (default): sizes are normal(mean, std) resampled
      above the minimum -- the simplest model matching the reported moments;
    * ``lognormal``: a heavy-tailed alternative (file sizes in the wild are
      typically lognormal); the ablation benchmarks use it to check that the
      paper's conclusions do not depend on the normal-tail assumption.
    """

    file_count: int = 10_000
    mean_size: int = 243 * MB
    std_size: int = 55 * MB
    min_size: int = 50 * MB
    model: str = "truncated-normal"
    name_prefix: str = "file"

    def __post_init__(self) -> None:
        if self.file_count < 0:
            raise ValueError("file_count must be non-negative")
        if self.min_size < 0 or self.mean_size <= 0 or self.std_size < 0:
            raise ValueError("sizes must be positive")
        if self.model not in ("truncated-normal", "lognormal"):
            raise ValueError(f"unknown trace model {self.model!r}")


#: The paper's trace statistics at full scale (1.2 M files).
PAPER_TRACE_CONFIG = FileTraceConfig(file_count=1_200_000)


def _truncated_normal_sizes(config: FileTraceConfig, rng: np.random.Generator) -> np.ndarray:
    sizes = rng.normal(config.mean_size, config.std_size, size=config.file_count)
    # Resample values below the minimum instead of clipping, so the minimum
    # does not become an atom that would distort the mean.
    for _ in range(64):
        below = sizes < config.min_size
        if not below.any():
            break
        sizes[below] = rng.normal(config.mean_size, config.std_size, size=int(below.sum()))
    np.clip(sizes, config.min_size, None, out=sizes)
    return sizes


def _lognormal_sizes(config: FileTraceConfig, rng: np.random.Generator) -> np.ndarray:
    mean, std = float(config.mean_size), float(config.std_size)
    sigma2 = np.log(1.0 + (std / mean) ** 2)
    mu = np.log(mean) - sigma2 / 2.0
    sizes = rng.lognormal(mu, np.sqrt(sigma2), size=config.file_count)
    for _ in range(64):
        below = sizes < config.min_size
        if not below.any():
            break
        sizes[below] = rng.lognormal(mu, np.sqrt(sigma2), size=int(below.sum()))
    np.clip(sizes, config.min_size, None, out=sizes)
    return sizes


def generate_file_trace(
    config: Optional[FileTraceConfig] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> FileTrace:
    """Generate a synthetic trace according to ``config``.

    Either an explicit ``rng`` or a ``seed`` may be given; with neither, a
    fixed default seed is used so that the quickstart example is reproducible.
    """
    config = config or FileTraceConfig()
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    if config.file_count == 0:
        return FileTrace(files=[])
    if config.model == "truncated-normal":
        sizes = _truncated_normal_sizes(config, rng)
    else:
        sizes = _lognormal_sizes(config, rng)
    files = [
        FileRecord(name=f"{config.name_prefix}-{index:08d}", size=int(round(size)))
        for index, size in enumerate(sizes)
    ]
    return FileTrace(files=files)


def trace_from_sizes(sizes: Sequence[int], name_prefix: str = "file") -> FileTrace:
    """Build a trace from explicit sizes (used by tests and examples)."""
    return FileTrace(
        files=[FileRecord(name=f"{name_prefix}-{index:08d}", size=int(size)) for index, size in enumerate(sizes)]
    )
