"""Open-loop serving workload: Poisson arrivals, Zipf popularity, serve engine.

A production archive is read-dominated.  This module provides the request
side of the serve path:

* :func:`generate_request_trace` -- an **open-loop** request trace: Poisson
  arrivals at a configurable rate (requests keep arriving regardless of how
  backlogged the system is -- the honest way to measure tail latency),
  Zipf(s)-distributed file popularity over a registered catalog, and a
  configurable read/write mix.  Traces are plain numpy arrays, fully
  determined by the RNG: same seed, same trace, byte for byte.
* :class:`ServeEngine` -- schedules every request on the discrete-event
  clock and drives it through a :class:`~repro.core.storage.StorageSystem`
  as a per-gateway call (``client=``/``observer=`` per request).  Request
  latency is measured from arrival to the last completion of the transfers
  the request charged on the fabric; a fully-cached read completes in the
  cache's hit latency without touching the fabric at all.  Popularity-
  triggered promotion pushes extra replicas of hot files through
  :class:`~repro.multicast.replication.MulticastReplicator`.

SNIPPETS.md's Chord/Pastry lookup harnesses (per-lookup popularity rows,
``summarize()`` with p50/p95) are the exemplar shape for the reporting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.overlay.ids import key_for
from repro.workloads.filetrace import MB


@dataclass(frozen=True)
class ServingTraceConfig:
    """Knobs of one open-loop request trace (time unit: seconds)."""

    #: Mean arrival rate of the Poisson process (requests per simulated second).
    request_rate: float = 50.0
    duration_s: float = 60.0
    #: Zipf skew: popularity of the rank-r file is proportional to r^-s.
    zipf_s: float = 1.1
    read_fraction: float = 0.9
    #: Requests round-robin over this many front-end gateway nodes.
    client_count: int = 16
    #: Write sizes (normal, clipped at the minimum).
    write_mean_size: int = 8 * MB
    write_std_size: int = 4 * MB
    write_min_size: int = 1 * MB


@dataclass(frozen=True)
class RequestTrace:
    """One generated request timeline (columnar, deterministic)."""

    #: Arrival times in simulated seconds, ascending.
    arrivals: np.ndarray
    #: True where the request is a read.
    is_read: np.ndarray
    #: Catalog index of the file a read targets (-1 on writes).
    file_index: np.ndarray
    #: Which gateway issues the request (index into the gateway list).
    client_index: np.ndarray
    #: Bytes a write ingests (0 on reads).
    write_sizes: np.ndarray
    duration_s: float

    @property
    def count(self) -> int:
        """Total requests in the trace."""
        return int(self.arrivals.shape[0])

    @property
    def read_count(self) -> int:
        """Read requests in the trace."""
        return int(self.is_read.sum())

    def fingerprint(self) -> str:
        """A digest over every column (the determinism tests compare these)."""
        digest = hashlib.sha1()
        for column in (self.arrivals, self.is_read, self.file_index,
                       self.client_index, self.write_sizes):
            digest.update(np.ascontiguousarray(column).tobytes())
        return digest.hexdigest()


def zipf_probabilities(catalog_size: int, s: float) -> np.ndarray:
    """Normalized Zipf(s) probabilities over ranks 1..catalog_size."""
    ranks = np.arange(1, catalog_size + 1, dtype=float)
    weights = ranks ** -float(s)
    return weights / weights.sum()


def generate_request_trace(
    catalog_size: int,
    config: ServingTraceConfig,
    rng: np.random.Generator,
) -> RequestTrace:
    """Generate one open-loop request trace over a ``catalog_size``-file catalog.

    The draw order is part of the format (fixed so traces are reproducible
    across refactors): arrival gaps, read/write flags, gateway indices,
    write sizes, popularity ranks, then the rank-to-catalog permutation
    (which file is "rank 1" is itself random, so popularity is not
    correlated with insertion order).
    """
    if catalog_size <= 0:
        raise ValueError("catalog_size must be positive")
    mean_gap = 1.0 / config.request_rate
    gaps: List[np.ndarray] = []
    total = 0.0
    block = max(16, int(config.request_rate * config.duration_s * 1.2) + 8)
    while total <= config.duration_s:
        drawn = rng.exponential(mean_gap, size=block)
        gaps.append(drawn)
        total += float(drawn.sum())
    arrivals = np.cumsum(np.concatenate(gaps))
    arrivals = arrivals[arrivals < config.duration_s]
    n = arrivals.shape[0]

    is_read = rng.random(n) < config.read_fraction
    client_index = rng.integers(0, config.client_count, size=n)
    write_sizes = np.clip(
        rng.normal(config.write_mean_size, config.write_std_size, size=n),
        config.write_min_size, None,
    ).astype(np.int64)
    write_sizes[is_read] = 0

    probs = zipf_probabilities(catalog_size, config.zipf_s)
    ranks = rng.choice(catalog_size, size=n, p=probs)
    permutation = rng.permutation(catalog_size)
    file_index = permutation[ranks]
    file_index[~is_read] = -1

    return RequestTrace(
        arrivals=arrivals,
        is_read=is_read,
        file_index=file_index,
        client_index=client_index,
        write_sizes=write_sizes,
        duration_s=float(config.duration_s),
    )


def load_summary(read_load: Dict[int, float], buckets: int = 10) -> Dict[str, float]:
    """Per-holder read-load aggregates + a coarse histogram (MB units).

    ``read_load`` is :attr:`StorageSystem.read_load`: bytes served per
    holder node.  ``load_imbalance_x`` (max over mean) is the headline
    load-balance number the cache-on/cache-off contrast reports.
    """
    if not read_load:
        return {
            "load_nodes": 0.0,
            "load_mean_mb": 0.0,
            "load_max_mb": 0.0,
            "load_p99_mb": 0.0,
            "load_imbalance_x": 0.0,
            "load_histogram": [0] * buckets,
        }
    values = np.asarray(sorted(read_load.values()), dtype=float) / MB
    mean = float(values.mean())
    top = float(values.max())
    edges = np.linspace(0.0, top if top > 0 else 1.0, buckets + 1)
    histogram, _ = np.histogram(values, bins=edges)
    return {
        "load_nodes": float(values.shape[0]),
        "load_mean_mb": mean,
        "load_max_mb": top,
        "load_p99_mb": float(np.percentile(values, 99)),
        "load_imbalance_x": top / mean if mean > 0 else 0.0,
        "load_histogram": [int(count) for count in histogram],
    }


@dataclass
class _RequestState:
    """Mutable completion tracking for one in-flight request."""

    arrival: float
    read: bool
    expected: Optional[int] = None
    done: int = 0
    last: float = 0.0
    ok: bool = True
    cached: int = 0
    hop_delay: float = 0.0


class ServeEngine:
    """Drives one request trace through a store on the discrete-event clock.

    Every request issues as a per-gateway call (``client=`` keys the block
    cache and the access link, ``observer=`` counts the request's own
    transfer completions).  The engine is open-loop: requests are scheduled
    at their trace arrival times regardless of backlog, so queueing delay
    shows up honestly in the latency percentiles.
    """

    def __init__(
        self,
        sim,
        storage,
        transfers,
        trace: RequestTrace,
        catalog: Sequence[str],
        gateways: Sequence[int],
        cache=None,
        replicator=None,
        hot_threshold: int = 0,
        hot_replicas: int = 1,
        write_prefix: str = "put",
        router=None,
        hop_latency_s: float = 0.0,
    ) -> None:
        self.sim = sim
        #: Accept an ArchiveClient or a raw StorageSystem.
        self.storage = getattr(storage, "storage", storage)
        self.transfers = transfers
        self.trace = trace
        self.catalog = list(catalog)
        self.gateways = list(gateways)
        if not self.gateways:
            raise ValueError("the serve engine needs at least one gateway node")
        self.cache = cache
        self.replicator = replicator
        self.hot_threshold = hot_threshold
        self.hot_replicas = hot_replicas
        self.write_prefix = write_prefix
        #: Opt-in routed-hop latency: requests that touch the fabric are
        #: additionally charged ``hops * hop_latency_s`` for the overlay
        #: lookup from their gateway to the file key's root.  Cache hits
        #: never touch the fabric, so they bypass the charge by construction.
        self.router = router
        self.hop_latency_s = float(hop_latency_s)
        self.routed_hops = 0
        self.read_latencies: List[float] = []
        self.write_latencies: List[float] = []
        #: chunks served from cache, one entry per completed read, issue order.
        self.hit_sequence: List[int] = []
        self.failed_reads = 0
        self.failed_writes = 0
        self.promotions: List[str] = []
        self.last_completion_s = 0.0
        self._read_counts: Dict[str, int] = {}
        self._promoted = set()

    # -------------------------------------------------------------- scheduling --
    def schedule(self) -> None:
        """Queue every request of the trace on the sim clock."""
        for index in range(self.trace.count):
            self.sim.schedule(float(self.trace.arrivals[index]),
                              lambda i=index: self._issue(i))

    def _issue(self, index: int) -> None:
        trace = self.trace
        read = bool(trace.is_read[index])
        gateway = self.gateways[int(trace.client_index[index]) % len(self.gateways)]
        state = _RequestState(arrival=float(trace.arrivals[index]), read=read)

        def observe(transfer) -> None:
            state.done += 1
            state.last = max(state.last, transfer.finished_at)
            if state.expected is not None and state.done >= state.expected:
                self._finish(state, state.last)

        before = self.transfers.submitted_count if self.transfers is not None else 0
        name = None
        if read:
            name = self.catalog[int(trace.file_index[index])]
            filename = name
            result = self.storage.retrieve_file(name, client=gateway,
                                                observer=observe)
            state.ok = result.complete
            state.cached = result.chunks_cached
        else:
            filename = f"{self.write_prefix}-{index:08d}"
            result = self.storage.store_file(filename,
                                             int(trace.write_sizes[index]),
                                             client=gateway, observer=observe)
            state.ok = result.success
        # Count the request's own transfers before any hot-file promotion:
        # the promotion push rides the shared fabric unobserved, and must
        # not inflate this request's completion target.
        submitted = (self.transfers.submitted_count - before
                     if self.transfers is not None else 0)
        if submitted and self.hop_latency_s > 0.0 and self.router is not None:
            hops = self.router.route(key_for(filename), gateway).hops
            self.routed_hops += hops
            state.hop_delay = hops * self.hop_latency_s
        if submitted == 0:
            # Nothing touched the fabric: a pure cache hit costs the hit
            # latency, anything else (failed read, empty write) completes
            # immediately.
            latency = (self.cache.hit_latency_s
                       if self.cache is not None and state.cached else 0.0)
            self._finish(state, state.arrival + latency)
        else:
            state.expected = submitted
        if name is not None:
            self._note_read(name)

    def _note_read(self, name: str) -> None:
        """Count one read; promote the file once it crosses the hot threshold."""
        count = self._read_counts.get(name, 0) + 1
        self._read_counts[name] = count
        if (self.replicator is not None and self.hot_threshold > 0
                and count == self.hot_threshold and name not in self._promoted):
            self._promoted.add(name)
            self.promotions.append(name)
            self.replicator.replicate_file(name, self.hot_replicas)

    def _finish(self, state: _RequestState, finished_at: float) -> None:
        finished_at += state.hop_delay
        latency = max(0.0, finished_at - state.arrival)
        self.last_completion_s = max(self.last_completion_s, finished_at)
        if state.read:
            if state.ok:
                self.read_latencies.append(latency)
                self.hit_sequence.append(state.cached)
            else:
                self.failed_reads += 1
        else:
            if state.ok:
                self.write_latencies.append(latency)
            else:
                self.failed_writes += 1

    # --------------------------------------------------------------- reporting --
    def summarize(self) -> Dict[str, float]:
        """The scenario row: throughput, latency percentiles, failure counts."""
        reads = np.asarray(self.read_latencies, dtype=float)
        writes = np.asarray(self.write_latencies, dtype=float)
        completed = reads.shape[0] + writes.shape[0]
        makespan = max(self.last_completion_s, self.trace.duration_s)

        def pct(values: np.ndarray, q: float) -> float:
            return float(np.percentile(values, q)) if values.shape[0] else 0.0

        return {
            "requests": float(self.trace.count),
            "completed": float(completed),
            "offered_req_s": self.trace.count / self.trace.duration_s,
            "sustained_req_s": completed / makespan if makespan > 0 else 0.0,
            "read_p50_s": pct(reads, 50),
            "read_p95_s": pct(reads, 95),
            "read_p99_s": pct(reads, 99),
            "read_mean_s": float(reads.mean()) if reads.shape[0] else 0.0,
            "write_p95_s": pct(writes, 95),
            "failed_reads": float(self.failed_reads),
            "failed_writes": float(self.failed_writes),
            "promotions": float(len(self.promotions)),
            "routed_hops": float(self.routed_hops),
            "makespan_s": makespan,
        }
