"""Workload and trace generation.

The paper drives its simulations with (i) a file-system trace collected from
video-hosting sites, Linux mirrors and departmental servers, filtered to files
of at least 50 MB (about 1.2 M files, mean 243 MB, standard deviation 55 MB,
278.7 TB total), and (ii) node storage capacities drawn from a normal
distribution with mean 45 GB and standard deviation 10 GB (10 000 nodes,
439.1 TB total).  Neither artefact is publicly available, so this package
generates statistically equivalent synthetic traces (see DESIGN.md,
substitution table) with deterministic seeding, plus save/load helpers so a
generated trace can be pinned and reused across experiments.
"""

from repro.workloads.filetrace import (
    FileRecord,
    FileTrace,
    FileTraceConfig,
    generate_file_trace,
)
from repro.workloads.capacity import (
    CapacityConfig,
    generate_capacities,
    PAPER_CAPACITY_CONFIG,
)
from repro.workloads.traces import load_trace, save_trace

__all__ = [
    "FileRecord",
    "FileTrace",
    "FileTraceConfig",
    "generate_file_trace",
    "CapacityConfig",
    "generate_capacities",
    "PAPER_CAPACITY_CONFIG",
    "load_trace",
    "save_trace",
]
