"""Systematic Reed-Solomon erasure code over GF(256) (extension).

The paper contrasts *optimal* erasure codes (any ``n`` of the ``n + k`` encoded
blocks suffice, epsilon = 0) with the sub-optimal but cheaper online code, and
chooses the latter.  To support the ablation benchmark comparing the two
families, this module implements the optimal code from scratch: a systematic
Reed-Solomon code over GF(2^8) built from a Cauchy-style encoding matrix.

* GF(256) arithmetic uses exp/log tables (primitive polynomial 0x11D).
* Encoding: the ``k`` data blocks are kept verbatim; ``m - k`` parity blocks are
  GF(256) linear combinations of the data blocks (vectorised with NumPy table
  lookups).
* Decoding: any ``k`` surviving blocks determine the data; the corresponding
  ``k x k`` sub-matrix of the generator is inverted in GF(256).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.erasure.base import (
    CodeSpec,
    DecodingError,
    EncodedBlock,
    EncodedChunk,
    ErasureCode,
    join_blocks,
    split_into_blocks,
)

_PRIMITIVE_POLY = 0x11D


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.int32)
    log = np.zeros(256, dtype=np.int32)
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLY
    exp[255:510] = exp[:255]
    return exp, log


_EXP, _LOG = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply two GF(256) scalars."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[_LOG[a] + _LOG[b]])


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(256)."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(_EXP[255 - _LOG[a]])


def gf_mul_vector(scalar: int, vector: np.ndarray) -> np.ndarray:
    """Multiply a uint8 vector by a GF(256) scalar (vectorised table lookup)."""
    if scalar == 0:
        return np.zeros_like(vector)
    if scalar == 1:
        return vector.copy()
    log_s = _LOG[scalar]
    result = np.zeros_like(vector)
    nonzero = vector != 0
    result[nonzero] = _EXP[log_s + _LOG[vector[nonzero]]]
    return result.astype(np.uint8)


def gf_matrix_inverse(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix via Gauss-Jordan elimination."""
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise ValueError("matrix must be square")
    work = matrix.astype(np.int32).copy()
    inverse = np.eye(size, dtype=np.int32)
    for column in range(size):
        pivot_row = None
        for row in range(column, size):
            if work[row, column] != 0:
                pivot_row = row
                break
        if pivot_row is None:
            raise DecodingError("singular decoding matrix (blocks not independent)")
        if pivot_row != column:
            work[[column, pivot_row]] = work[[pivot_row, column]]
            inverse[[column, pivot_row]] = inverse[[pivot_row, column]]
        pivot_inv = gf_inv(int(work[column, column]))
        for j in range(size):
            work[column, j] = gf_mul(int(work[column, j]), pivot_inv)
            inverse[column, j] = gf_mul(int(inverse[column, j]), pivot_inv)
        for row in range(size):
            if row != column and work[row, column] != 0:
                factor = int(work[row, column])
                for j in range(size):
                    work[row, j] ^= gf_mul(factor, int(work[column, j]))
                    inverse[row, j] ^= gf_mul(factor, int(inverse[column, j]))
    return inverse.astype(np.uint8)


class ReedSolomonCode(ErasureCode):
    """Systematic (k, k + parity) Reed-Solomon code over GF(256)."""

    name = "reed-solomon"

    def __init__(self, parity_blocks: int = 2) -> None:
        if parity_blocks < 1:
            raise ValueError("parity_blocks must be >= 1")
        self.parity_blocks = parity_blocks

    def _generator_rows(self, k: int) -> np.ndarray:
        """Parity rows of the generator matrix (Cauchy construction)."""
        if k + self.parity_blocks > 255:
            raise ValueError("k + parity must be <= 255 for GF(256) Cauchy construction")
        x_values = np.arange(k, dtype=np.int32)
        y_values = np.arange(k, k + self.parity_blocks, dtype=np.int32) + 1
        rows = np.zeros((self.parity_blocks, k), dtype=np.int32)
        for i, y in enumerate(y_values):
            for j, x in enumerate(x_values):
                rows[i, j] = gf_inv(int(x) ^ int(y))
        return rows

    def _full_generator(self, k: int) -> np.ndarray:
        return np.vstack([np.eye(k, dtype=np.int32), self._generator_rows(k)])

    # -- encode -----------------------------------------------------------------
    def encode(self, data: bytes, n_blocks: int) -> EncodedChunk:
        originals = split_into_blocks(data, n_blocks)
        block_size = len(originals[0]) if originals else 0
        parity_rows = self._generator_rows(n_blocks)
        encoded: List[EncodedBlock] = [
            EncodedBlock(index=i, data=block.tobytes()) for i, block in enumerate(originals)
        ]
        for parity_index in range(self.parity_blocks):
            value = np.zeros(block_size, dtype=np.uint8)
            for data_index in range(n_blocks):
                coefficient = int(parity_rows[parity_index, data_index])
                np.bitwise_xor(value, gf_mul_vector(coefficient, originals[data_index]), out=value)
            encoded.append(EncodedBlock(index=n_blocks + parity_index, data=value.tobytes()))
        return EncodedChunk(
            code_name=self.name,
            original_size=len(data),
            block_size=block_size,
            n_blocks=n_blocks,
            blocks=encoded,
            metadata={"parity_blocks": self.parity_blocks},
        )

    # -- decode -----------------------------------------------------------------
    def decode(self, chunk: EncodedChunk, available: Dict[int, bytes]) -> bytes:
        k = chunk.n_blocks
        if len(available) < k:
            raise DecodingError(
                f"reed-solomon needs {k} blocks, only {len(available)} available"
            )
        # Fast path: all systematic blocks survive.
        if all(index in available for index in range(k)):
            blocks = [np.frombuffer(available[i], dtype=np.uint8) for i in range(k)]
            return join_blocks(blocks, chunk.original_size)

        generator = self._full_generator(k)
        chosen = sorted(available)[:k]
        sub_matrix = generator[chosen, :]
        inverse = gf_matrix_inverse(sub_matrix)
        received = [np.frombuffer(available[index], dtype=np.uint8) for index in chosen]
        originals: List[np.ndarray] = []
        for row in range(k):
            value = np.zeros(chunk.block_size, dtype=np.uint8)
            for column in range(k):
                coefficient = int(inverse[row, column])
                if coefficient:
                    np.bitwise_xor(value, gf_mul_vector(coefficient, received[column]), out=value)
            originals.append(value)
        return join_blocks(originals, chunk.original_size)

    # -- metadata -----------------------------------------------------------------
    def spec(self, n_blocks: int) -> CodeSpec:
        output = n_blocks + self.parity_blocks
        return CodeSpec(
            name=self.name,
            input_blocks=n_blocks,
            output_blocks=output,
            loss_tolerance=self.parity_blocks,
            size_overhead=self.parity_blocks / n_blocks if n_blocks else 0.0,
        )
