"""Systematic Reed-Solomon erasure code over GF(256) (extension).

The paper contrasts *optimal* erasure codes (any ``n`` of the ``n + k`` encoded
blocks suffice, epsilon = 0) with the sub-optimal but cheaper online code, and
chooses the latter.  To support the ablation benchmark comparing the two
families, this module implements the optimal code from scratch: a systematic
Reed-Solomon code over GF(2^8) built from a Cauchy-style encoding matrix.

* GF(256) arithmetic uses exp/log tables (primitive polynomial 0x11D) plus a
  shared 256x256 multiplication table, so scalar-times-vector products are a
  single table gather (``_MUL_TABLE[coeff, block]``) with no boolean-mask
  temporaries and no per-call allocation when ``out=`` is supplied.
* Encoding: the ``k`` data blocks are kept verbatim; ``m - k`` parity blocks
  come from one matrix-form pass over the stacked data-block matrix.
* Decoding: any ``k`` surviving blocks determine the data.  The generator
  sub-matrix is inverted with vectorized row operations, and only the *erased*
  systematic rows are reconstructed (``e * k`` vector multiplies instead of
  the seed's ``k * k``); surviving systematic blocks are copied through.
* Generator matrices are cached per ``(k, parity)`` so repeated encodes and
  repair-path decodes stop rebuilding the Cauchy construction.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional

import numpy as np

from repro.erasure.base import (
    CodeSpec,
    DecodingError,
    EncodedBlock,
    EncodedChunk,
    ErasureCode,
    join_blocks,
    split_into_matrix,
)

_PRIMITIVE_POLY = 0x11D


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.int32)
    log = np.zeros(256, dtype=np.int32)
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLY
    exp[255:510] = exp[:255]
    return exp, log


_EXP, _LOG = _build_tables()


def _build_mul_table() -> np.ndarray:
    """The full 256x256 GF(256) multiplication table (64 KiB, built once)."""
    table = np.zeros((256, 256), dtype=np.uint8)
    logs = _LOG[1:256]
    table[1:, 1:] = _EXP[logs[:, None] + logs[None, :]]
    return table


_MUL_TABLE = _build_mul_table()
_INV_TABLE = np.zeros(256, dtype=np.uint8)
_INV_TABLE[1:] = _EXP[255 - _LOG[1:256]]


def gf_mul(a: int, b: int) -> int:
    """Multiply two GF(256) scalars."""
    return int(_MUL_TABLE[a, b])


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(256)."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(_INV_TABLE[a])


def gf_mul_vector(scalar: int, vector: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Multiply a uint8 vector by a GF(256) scalar via one table gather.

    With ``out=`` the product is written in place (the RS hot path reuses one
    scratch buffer instead of allocating ``zeros_like`` temporaries per call).
    """
    row = _MUL_TABLE[scalar]
    if out is None:
        return row[vector]
    np.take(row, vector, out=out)
    return out


def gf_matrix_inverse(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix via vectorized Gauss-Jordan elimination.

    Each pivot step normalises the pivot row and clears the pivot column of
    every other row in one table-gather + XOR over the stacked ``[work |
    inverse]`` matrix — no scalar inner loops.
    """
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise ValueError("matrix must be square")
    work = np.concatenate(
        [matrix.astype(np.uint8), np.eye(size, dtype=np.uint8)], axis=1
    )
    for column in range(size):
        pivot_candidates = np.nonzero(work[column:, column])[0]
        if pivot_candidates.size == 0:
            raise DecodingError("singular decoding matrix (blocks not independent)")
        pivot = column + int(pivot_candidates[0])
        if pivot != column:
            work[[column, pivot]] = work[[pivot, column]]
        pivot_inv = _INV_TABLE[work[column, column]]
        work[column] = _MUL_TABLE[pivot_inv][work[column]]
        factors = work[:, column].copy()
        factors[column] = 0
        rows = np.nonzero(factors)[0]
        if rows.size:
            work[rows] ^= _MUL_TABLE[factors[rows, None], work[column][None, :]]
    return work[:, size:].copy()


def _legacy_gf_matrix_inverse(matrix: np.ndarray) -> np.ndarray:
    """The seed scalar-loop inversion (kept for the legacy benchmark baseline)."""
    size = matrix.shape[0]
    work = matrix.astype(np.int32).copy()
    inverse = np.eye(size, dtype=np.int32)
    for column in range(size):
        pivot_row = None
        for row in range(column, size):
            if work[row, column] != 0:
                pivot_row = row
                break
        if pivot_row is None:
            raise DecodingError("singular decoding matrix (blocks not independent)")
        if pivot_row != column:
            work[[column, pivot_row]] = work[[pivot_row, column]]
            inverse[[column, pivot_row]] = inverse[[pivot_row, column]]
        pivot_inv = gf_inv(int(work[column, column]))
        for j in range(size):
            work[column, j] = gf_mul(int(work[column, j]), pivot_inv)
            inverse[column, j] = gf_mul(int(inverse[column, j]), pivot_inv)
        for row in range(size):
            if row != column and work[row, column] != 0:
                factor = int(work[row, column])
                for j in range(size):
                    work[row, j] ^= gf_mul(factor, int(work[column, j]))
                    inverse[row, j] ^= gf_mul(factor, int(inverse[column, j]))
    return inverse.astype(np.uint8)


@lru_cache(maxsize=128)
def _cauchy_parity_rows(k: int, parity_blocks: int) -> np.ndarray:
    """Parity rows of the generator matrix (Cauchy construction), cached."""
    if k + parity_blocks > 255:
        raise ValueError("k + parity must be <= 255 for GF(256) Cauchy construction")
    x_values = np.arange(k, dtype=np.int32)
    y_values = np.arange(k, k + parity_blocks, dtype=np.int32) + 1
    rows = _INV_TABLE[(x_values[None, :] ^ y_values[:, None])].astype(np.int32)
    rows.setflags(write=False)
    return rows


@lru_cache(maxsize=128)
def _full_generator_cached(k: int, parity_blocks: int) -> np.ndarray:
    generator = np.vstack(
        [np.eye(k, dtype=np.int32), _cauchy_parity_rows(k, parity_blocks)]
    )
    generator.setflags(write=False)
    return generator


class ReedSolomonCode(ErasureCode):
    """Systematic (k, k + parity) Reed-Solomon code over GF(256)."""

    name = "reed-solomon"

    def __init__(self, parity_blocks: int = 2) -> None:
        if parity_blocks < 1:
            raise ValueError("parity_blocks must be >= 1")
        self.parity_blocks = parity_blocks

    def _generator_rows(self, k: int) -> np.ndarray:
        """Parity rows of the generator matrix (Cauchy construction)."""
        return _cauchy_parity_rows(k, self.parity_blocks)

    def _full_generator(self, k: int) -> np.ndarray:
        return _full_generator_cached(k, self.parity_blocks)

    # -- encode -----------------------------------------------------------------
    def encode(self, data: bytes, n_blocks: int) -> EncodedChunk:
        originals = split_into_matrix(data, n_blocks)
        block_size = originals.shape[1]
        parity_rows = self._generator_rows(n_blocks)
        parity = _gf_coeff_matmul(parity_rows, originals)
        encoded: List[EncodedBlock] = [
            EncodedBlock(index=i, data=originals[i].tobytes()) for i in range(n_blocks)
        ]
        encoded.extend(
            EncodedBlock(index=n_blocks + parity_index, data=parity[parity_index].tobytes())
            for parity_index in range(self.parity_blocks)
        )
        return EncodedChunk(
            code_name=self.name,
            original_size=len(data),
            block_size=block_size,
            n_blocks=n_blocks,
            blocks=encoded,
            metadata={"parity_blocks": self.parity_blocks},
        )

    # -- decode -----------------------------------------------------------------
    def decode(self, chunk: EncodedChunk, available: Dict[int, bytes]) -> bytes:
        k = chunk.n_blocks
        if len(available) < k:
            raise DecodingError(
                f"reed-solomon needs {k} blocks, only {len(available)} available"
            )
        # Fast path: all systematic blocks survive.
        if all(index in available for index in range(k)):
            blocks = [np.frombuffer(available[i], dtype=np.uint8) for i in range(k)]
            return join_blocks(blocks, chunk.original_size)

        generator = self._full_generator(k)
        chosen = sorted(available)[:k]
        sub_matrix = generator[chosen, :]
        inverse = gf_matrix_inverse(sub_matrix)

        received = np.empty((k, chunk.block_size), dtype=np.uint8)
        for row, index in enumerate(chosen):
            received[row] = np.frombuffer(available[index], dtype=np.uint8)

        # Only the erased systematic rows need the matrix product; surviving
        # systematic blocks pass through verbatim.
        surviving = set(index for index in chosen if index < k)
        erased = [row for row in range(k) if row not in surviving]
        reconstructed = _gf_coeff_matmul(inverse[erased], received) if erased else None

        originals = np.empty((k, chunk.block_size), dtype=np.uint8)
        for row, index in enumerate(chosen):
            if index < k:
                originals[index] = received[row]
        if reconstructed is not None:
            for position, row in enumerate(erased):
                originals[row] = reconstructed[position]
        return originals.reshape(-1)[: chunk.original_size].tobytes()

    # -- metadata -----------------------------------------------------------------
    def spec(self, n_blocks: int) -> CodeSpec:
        output = n_blocks + self.parity_blocks
        return CodeSpec(
            name=self.name,
            input_blocks=n_blocks,
            output_blocks=output,
            loss_tolerance=self.parity_blocks,
            size_overhead=self.parity_blocks / n_blocks if n_blocks else 0.0,
        )


def _gf_coeff_matmul(coefficients: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """``out[i] = XOR_j coefficients[i, j] * blocks[j]`` over GF(256).

    One table gather per (row, input-block) pair with a reused scratch
    buffer — the structure the 256x256 multiplication table exists for.
    """
    m, k = coefficients.shape
    width = blocks.shape[1]
    out = np.zeros((m, width), dtype=np.uint8)
    if width == 0:
        return out
    scratch = np.empty(width, dtype=np.uint8)
    for i in range(m):
        row = coefficients[i]
        for j in range(k):
            coefficient = int(row[j])
            if coefficient == 0:
                continue
            elif coefficient == 1:
                out[i] ^= blocks[j]
            else:
                gf_mul_vector(coefficient, blocks[j], out=scratch)
                out[i] ^= scratch
    return out
