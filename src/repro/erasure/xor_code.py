"""(n, n+1) XOR parity code — the RAID-5-style code evaluated by the paper.

The paper uses the simplest erasure code, parity check, configured as a
``(2, 3)`` code: every two input blocks yield three encoded blocks (the two
inputs plus their XOR), a 50 % space overhead, and tolerance of one lost block
per parity group.  The implementation is generalised to any group size ``n``.

All parities are computed in one vectorized pass over the stacked block
matrix (packed as uint64 words by the :mod:`repro.erasure.gf2` kernel) rather
than block-by-block.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.erasure import gf2
from repro.erasure.base import (
    CodeSpec,
    DecodingError,
    EncodedBlock,
    EncodedChunk,
    ErasureCode,
    join_blocks,
    split_into_matrix,
)


class XorParityCode(ErasureCode):
    """Parity-check erasure code: groups of ``group_size`` blocks + one XOR parity."""

    name = "xor"

    def __init__(self, group_size: int = 2) -> None:
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        self.group_size = group_size

    # -- encode ---------------------------------------------------------------
    def encode(self, data: bytes, n_blocks: int) -> EncodedChunk:
        originals = split_into_matrix(data, n_blocks)
        block_size = originals.shape[1]
        group_size = self.group_size
        groups = -(-n_blocks // group_size)

        # All group parities in one batched XOR-reduce over the padded stack.
        words = gf2.pack_matrix(originals)
        padded = np.zeros((groups * group_size, words.shape[1]), dtype=np.uint64)
        padded[:n_blocks] = words
        parity_words = np.bitwise_xor.reduce(
            padded.reshape(groups, group_size, -1), axis=1
        )
        parity_bytes = gf2.unpack_matrix(parity_words, block_size)

        encoded: List[EncodedBlock] = []
        index = 0
        for group in range(groups):
            group_start = group * group_size
            for original in range(group_start, min(group_start + group_size, n_blocks)):
                encoded.append(EncodedBlock(index=index, data=originals[original].tobytes()))
                index += 1
            encoded.append(EncodedBlock(index=index, data=parity_bytes[group].tobytes()))
            index += 1
        return EncodedChunk(
            code_name=self.name,
            original_size=len(data),
            block_size=block_size,
            n_blocks=n_blocks,
            blocks=encoded,
            metadata={"group_size": self.group_size},
        )

    # -- decode ---------------------------------------------------------------
    def decode(self, chunk: EncodedChunk, available: Dict[int, bytes]) -> bytes:
        group_size = int(chunk.metadata.get("group_size", self.group_size))
        originals: List[np.ndarray] = []
        encoded_index = 0
        for group_start in range(0, chunk.n_blocks, group_size):
            group_len = min(group_size, chunk.n_blocks - group_start)
            data_indices = list(range(encoded_index, encoded_index + group_len))
            parity_index = encoded_index + group_len
            encoded_index = parity_index + 1
            missing = [i for i in data_indices if i not in available]
            if len(missing) > 1 or (missing and parity_index not in available):
                raise DecodingError(
                    f"xor group starting at encoded block {data_indices[0]} lost "
                    f"{len(missing)} data blocks (parity "
                    f"{'present' if parity_index in available else 'missing'})"
                )
            group_blocks: List[np.ndarray] = [
                np.frombuffer(available[i], dtype=np.uint8) if i in available else None  # type: ignore[misc]
                for i in data_indices
            ]
            if missing:
                # Reconstruct the lost block as one stacked XOR-reduce of the
                # surviving group members and the parity.
                present = [block for block in group_blocks if block is not None]
                parity = np.frombuffer(available[parity_index], dtype=np.uint8)
                stack = np.stack(present + [parity]) if present else parity[None, :]
                group_blocks[data_indices.index(missing[0])] = np.bitwise_xor.reduce(
                    stack, axis=0
                )
            originals.extend(group_blocks)  # type: ignore[arg-type]
        return join_blocks(originals, chunk.original_size)

    # -- metadata ---------------------------------------------------------------
    def spec(self, n_blocks: int) -> CodeSpec:
        full_groups, remainder = divmod(n_blocks, self.group_size)
        groups = full_groups + (1 if remainder else 0)
        output = n_blocks + groups
        # A chunk survives one loss per group; the guaranteed tolerance against
        # arbitrary losses is therefore a single block (the worst case places
        # two losses in the same group).
        overhead = (output / n_blocks - 1.0) if n_blocks else 0.0
        return CodeSpec(
            name=self.name,
            input_blocks=n_blocks,
            output_blocks=output,
            loss_tolerance=1 if n_blocks >= 1 else 0,
            size_overhead=overhead,
        )

    def chunk_size_for_block_size(self, block_size: int, n_blocks: int) -> int:
        # Unchanged from the base implementation but kept explicit because the
        # paper uses exactly this relation to size chunks under the (2,3) code.
        return super().chunk_size_for_block_size(block_size, n_blocks)
