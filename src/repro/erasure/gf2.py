"""Vectorized GF(2) coding kernel.

Every erasure code in the repo ultimately reduces to three primitives over
GF(2): XORing groups of equal-size blocks together (encode), solving a sparse
linear system by belief-propagation peeling (rateless decode), and exact
Gaussian elimination when peeling stalls (small-system fallback and rank
tests).  The seed implementation ran all three with per-block Python loops;
this module provides them as batched NumPy operations so the coding layer
"runs as fast as the hardware allows":

* payloads are packed into rows of ``np.uint64`` words, so one XOR touches
  64 coefficients (or 8 payload bytes) at a time;
* equation systems are described in CSR form (``flat`` index array +
  ``offsets``), and whole stages — aux-block construction, check-block
  generation, peeling rounds, elimination steps — are single vectorized
  sweeps instead of per-equation passes;
* graph randomness comes from a counter-based splitmix64 hash, so any check
  block of an unbounded rateless stream can be derived independently *and*
  whole index ranges can be derived in one vectorized call.

The kernel is deliberately free of code-specific policy: degree
distributions, auxiliary-block rules and metadata formats live in the code
classes (:mod:`repro.erasure.online_code` etc.), which call into these
primitives.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

WORD_BITS = 64

if hasattr(np, "bitwise_count"):
    popcount = np.bitwise_count
else:  # pragma: no cover - NumPy < 2.0 fallback
    _POPCOUNT_BYTE = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint8)

    def popcount(array: np.ndarray) -> np.ndarray:
        """Per-element set-bit counts for a uint64 array (byte-table fallback)."""
        as_bytes = np.ascontiguousarray(array).view(np.uint8)
        counts = _POPCOUNT_BYTE[as_bytes].reshape(array.shape + (8,))
        return counts.sum(axis=-1, dtype=np.uint64)


# splitmix64 constants (Steele, Lea & Flood); the finalizer is a strong
# 64-bit mixer, and seeding counters with the golden-ratio increment gives
# independent streams per (seed, index, draw) triple.
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_GAMMA2 = np.uint64(0xD1B54A32D192ED03)
_MIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_M2 = np.uint64(0x94D049BB133111EB)


# -- counter-based hashing ------------------------------------------------------
def mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer, vectorized over a ``uint64`` array."""
    z = np.asarray(x, dtype=np.uint64).copy()
    with np.errstate(over="ignore"):
        z ^= z >> np.uint64(30)
        z *= _MIX_M1
        z ^= z >> np.uint64(27)
        z *= _MIX_M2
        z ^= z >> np.uint64(31)
    return z


def hash_counters(seed: int, counters: np.ndarray) -> np.ndarray:
    """Independent 64-bit hashes for ``counters`` under ``seed``.

    Equivalent to evaluating splitmix64 streams at arbitrary counter values,
    which is what makes rateless streams both batched (derive a whole range
    at once) and random-access (derive any single index on its own).
    """
    counters = np.asarray(counters, dtype=np.uint64)
    with np.errstate(over="ignore"):
        state = np.uint64(seed) + counters * _GAMMA
    return mix64(state)


def hash_subcounters(base_keys: np.ndarray, draws: np.ndarray) -> np.ndarray:
    """Second-level hashes: draw ``draws[i]`` from the stream keyed ``base_keys[i]``."""
    with np.errstate(over="ignore"):
        state = np.asarray(base_keys, dtype=np.uint64) + np.asarray(draws, dtype=np.uint64) * _GAMMA2
    return mix64(state)


def to_unit_interval(hashes: np.ndarray) -> np.ndarray:
    """Map 64-bit hashes to float64 uniforms in [0, 1)."""
    return (hashes >> np.uint64(11)).astype(np.float64) * (2.0**-53)


# -- payload packing ------------------------------------------------------------
def words_for_bytes(n_bytes: int) -> int:
    """Number of uint64 words needed to hold ``n_bytes`` payload bytes."""
    return (int(n_bytes) + 7) // 8


def pack_rows(rows: Sequence[bytes], block_size: int) -> np.ndarray:
    """Pack byte payloads into a zero-padded ``(len(rows), words)`` uint64 matrix."""
    words = words_for_bytes(block_size)
    if rows and all(len(payload) == block_size for payload in rows):
        # Common case: equal-size rows join into one contiguous buffer.
        joined = np.frombuffer(b"".join(rows), dtype=np.uint8).reshape(len(rows), block_size)
        if block_size == words * 8:
            return np.ascontiguousarray(joined).view(np.uint64)
        packed = np.zeros((len(rows), words * 8), dtype=np.uint8)
        packed[:, :block_size] = joined
        return packed.view(np.uint64)
    packed = np.zeros((len(rows), words * 8), dtype=np.uint8)
    for row, payload in enumerate(rows):
        buf = np.frombuffer(payload, dtype=np.uint8)
        packed[row, : buf.size] = buf
    return packed.view(np.uint64)


def pack_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, block_size)`` uint8 matrix into uint64 words (zero padded)."""
    rows, n_bytes = matrix.shape
    words = words_for_bytes(n_bytes)
    if n_bytes == words * 8 and matrix.flags.c_contiguous:
        return matrix.view(np.uint64)
    packed = np.zeros((rows, words * 8), dtype=np.uint8)
    packed[:, :n_bytes] = matrix
    return packed.view(np.uint64)


def unpack_matrix(words: np.ndarray, block_size: int) -> np.ndarray:
    """Inverse of :func:`pack_matrix`: a ``(rows, block_size)`` uint8 view/copy."""
    return words.view(np.uint8)[:, : int(block_size)]


# -- batched XOR-reduce ---------------------------------------------------------
def xor_reduce_segments(
    rows: np.ndarray, flat: np.ndarray, offsets: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Segmented XOR-reduce: ``out[s] = XOR(rows[i] for i in flat[offsets[s]:offsets[s+1]])``.

    This is the encode primitive: ``rows`` holds composite payloads packed as
    uint64 words and each CSR segment names the neighbours of one output
    block.  Segments are processed grouped by length so each group is one
    strided ``bitwise_xor.reduce`` over a 3-D gather (``ufunc.reduceat`` is an
    order of magnitude slower on 2-D operands).  Empty segments reduce to
    zero.
    """
    segments = int(offsets.size) - 1
    width = rows.shape[1] if rows.ndim == 2 else 0
    if out is None:
        out = np.zeros((segments, width), dtype=np.uint64)
    else:
        out[:] = 0
    if flat.size == 0 or width == 0 or segments == 0:
        return out
    flat = np.asarray(flat, dtype=np.intp)
    starts = np.asarray(offsets[:-1], dtype=np.intp)
    lengths = np.asarray(offsets[1:], dtype=np.intp) - starts
    for length in np.unique(lengths):
        if length == 0:
            continue
        group = np.flatnonzero(lengths == length)
        if length == 1:
            out[group] = rows[flat[starts[group]]]
            continue
        gather = flat[starts[group][:, None] + np.arange(length, dtype=np.intp)[None, :]]
        out[group] = np.bitwise_xor.reduce(rows[gather], axis=1)
    return out


# -- bit-packed GF(2) matrices --------------------------------------------------
def bits_from_csr(flat: np.ndarray, offsets: np.ndarray, n_cols: int) -> np.ndarray:
    """Build a bit-packed ``(rows, words)`` GF(2) matrix from CSR index lists.

    Indices appearing an even number of times in a row cancel (XOR
    semantics), matching how repeated neighbours behave in an XOR equation.
    """
    rows = int(offsets.size) - 1
    words = (int(n_cols) + WORD_BITS - 1) // WORD_BITS
    bits = np.zeros((rows, max(words, 1)), dtype=np.uint64)
    if flat.size:
        flat = np.asarray(flat, dtype=np.int64)
        counts = np.asarray(offsets[1:]) - np.asarray(offsets[:-1])
        row_of = np.repeat(np.arange(rows, dtype=np.int64), counts)
        word = flat // WORD_BITS
        bit = (np.uint64(1) << (flat % WORD_BITS).astype(np.uint64))
        np.bitwise_xor.at(bits, (row_of, word), bit)
    return bits


def row_weights(bits: np.ndarray) -> np.ndarray:
    """Number of set bits per row of a packed GF(2) matrix."""
    return popcount(bits).sum(axis=1)


def eliminate(
    bits: np.ndarray, n_cols: int, payload: Optional[np.ndarray] = None
) -> Dict[int, int]:
    """In-place Gauss-Jordan elimination of a packed GF(2) matrix.

    Row updates are applied to every affected row at once (one boolean mask
    and one vectorized XOR per pivot column) rather than row-by-row.  When
    ``payload`` (a uint64 word matrix with one row per equation) is given,
    the same row operations are mirrored onto it.  Returns the mapping of
    pivot column -> pivot row.
    """
    n_rows = bits.shape[0]
    pivots: Dict[int, int] = {}
    if n_rows == 0:
        return pivots
    pivot_row = 0
    for column in range(int(n_cols)):
        word, bit = divmod(column, WORD_BITS)
        shift = np.uint64(bit)
        one = np.uint64(1)
        candidates = np.nonzero((bits[pivot_row:, word] >> shift) & one)[0]
        if candidates.size == 0:
            continue
        chosen = pivot_row + int(candidates[0])
        if chosen != pivot_row:
            bits[[pivot_row, chosen]] = bits[[chosen, pivot_row]]
            if payload is not None:
                payload[[pivot_row, chosen]] = payload[[chosen, pivot_row]]
        mask = ((bits[:, word] >> shift) & one).astype(bool)
        mask[pivot_row] = False
        if mask.any():
            bits[mask] ^= bits[pivot_row]
            if payload is not None:
                payload[mask] ^= payload[pivot_row]
        pivots[column] = pivot_row
        pivot_row += 1
        if pivot_row == n_rows:
            break
    return pivots


def solved_unit_rows(bits: np.ndarray, pivots: Dict[int, int]) -> Dict[int, int]:
    """Columns pinned to a single value after elimination: column -> row.

    A column is fully determined exactly when its pivot row has weight one
    (the row reads ``x_column = value``).
    """
    weights = row_weights(bits)
    return {column: row for column, row in pivots.items() if weights[row] == 1}


# -- vectorized peeling ---------------------------------------------------------
class PeelResult:
    """Outcome of a peeling run: recovered unknowns plus the residual state."""

    __slots__ = ("known", "solution", "counts", "rounds", "events", "trace")

    def __init__(
        self,
        known: np.ndarray,
        solution: Optional[np.ndarray],
        counts: np.ndarray,
        rounds: int,
        events: int,
        trace: Optional[List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]] = None,
    ):
        self.known = known
        self.solution = solution
        #: Remaining unknown-degree of each equation (0 = fully consumed).
        self.counts = counts
        #: Number of batched propagation rounds executed.
        self.rounds = rounds
        #: Total (equation, variable) update events processed.
        self.events = events
        #: When recorded: per round ``(targets, source_eqs, event_eqs,
        #: event_vars)`` — the raw material of a compiled replay schedule.
        self.trace = trace


def peel(
    flat: np.ndarray,
    offsets: np.ndarray,
    n_unknowns: int,
    values: Optional[np.ndarray] = None,
    record: bool = False,
) -> PeelResult:
    """Belief-propagation peeling over a sparse GF(2) system, in batched rounds.

    ``flat``/``offsets`` describe the unknowns of each equation in CSR form.
    ``values`` (optional) holds each equation's packed payload words; when
    given it is reduced *in place* — on return each equation's value has the
    payloads of every recovered neighbour XORed out, which is exactly the
    residual system :func:`solve_residual` needs.  Recovered unknown payloads
    are returned in ``solution``.  Without ``values`` the run is *symbolic* —
    it only answers which unknowns peeling would recover (the encoder's
    decodability check).

    Instead of re-scanning every equation per pass (the seed behaviour), the
    scheduler keeps per-equation unknown-degree counters and index sums; each
    round resolves *all* degree-1 equations at once and pushes their
    consequences through a composite->equations incidence CSR with a handful
    of vectorized operations.
    """
    flat = np.asarray(flat, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    n_equations = offsets.size - 1
    width = values.shape[1] if values is not None else 0
    known = np.zeros(n_unknowns, dtype=bool)
    solution = np.zeros((n_unknowns, width), dtype=np.uint64) if values is not None else None

    counts = (offsets[1:] - offsets[:-1]).copy()
    sums = np.zeros(n_equations, dtype=np.int64)
    if flat.size:
        nonempty = counts > 0
        starts = offsets[:-1][nonempty]
        if starts.size:
            sums[nonempty] = np.add.reduceat(flat, starts)

    # composite -> equations incidence (CSR), built once with one argsort.
    order = np.argsort(flat, kind="stable")
    inc_vars = flat[order]
    inc_eqs = np.repeat(np.arange(n_equations, dtype=np.int64), counts)[order]
    inc_offsets = np.searchsorted(inc_vars, np.arange(n_unknowns + 1, dtype=np.int64))

    source_eq = np.zeros(n_unknowns, dtype=np.int64)
    rounds = 0
    events = 0
    trace: Optional[List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]] = (
        [] if record else None
    )
    ready = np.flatnonzero(counts == 1)
    while ready.size:
        targets = sums[ready]
        fresh_mask = ~known[targets]
        src_eqs = ready[fresh_mask]
        targets = targets[fresh_mask]
        if targets.size == 0:
            break
        # Dedupe targets without sorting: last writer wins as the source.
        source_eq[targets] = src_eqs
        before = known.copy()
        known[targets] = True
        newly_known = np.flatnonzero(known & ~before)
        if values is not None and solution is not None:
            solution[newly_known] = values[source_eq[newly_known]]
        rounds += 1
        # Fan newly-known unknowns out to every equation that contains them.
        seg_starts = inc_offsets[newly_known]
        seg_lens = inc_offsets[newly_known + 1] - seg_starts
        total = int(seg_lens.sum())
        if total == 0:
            if trace is not None:
                empty = np.empty(0, dtype=np.int64)
                trace.append((newly_known, source_eq[newly_known].copy(), empty, empty))
            break
        events += total
        take = np.repeat(seg_starts - np.concatenate(([0], np.cumsum(seg_lens)[:-1])), seg_lens)
        take += np.arange(total, dtype=np.int64)
        ev_eqs = inc_eqs[take]
        ev_vars = inc_vars[take]
        if trace is not None:
            trace.append((newly_known, source_eq[newly_known].copy(), ev_eqs, ev_vars))
        np.subtract.at(counts, ev_eqs, 1)
        np.subtract.at(sums, ev_eqs, ev_vars)
        if values is not None and solution is not None and width:
            # values[eq] ^= XOR of the newly-known payloads it contains.
            ev_order = np.argsort(ev_eqs)
            eqs_sorted = ev_eqs[ev_order]
            vars_sorted = ev_vars[ev_order]
            boundary = np.empty(eqs_sorted.size, dtype=bool)
            boundary[0] = True
            np.not_equal(eqs_sorted[1:], eqs_sorted[:-1], out=boundary[1:])
            eq_starts = np.flatnonzero(boundary)
            unique_eqs = eqs_sorted[eq_starts]
            eq_offsets = np.append(eq_starts, eqs_sorted.size)
            values[unique_eqs] ^= xor_reduce_segments(solution, vars_sorted, eq_offsets)
        touched_mask = np.zeros(n_equations, dtype=bool)
        touched_mask[ev_eqs] = True
        ready = np.flatnonzero(touched_mask & (counts == 1))
    return PeelResult(
        known=known, solution=solution, counts=counts, rounds=rounds, events=events, trace=trace
    )


def compile_residual(
    flat: np.ndarray,
    offsets: np.ndarray,
    n_unknowns: int,
    result: PeelResult,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Solve a stalled peel's *residual* system symbolically (inactivation).

    Peeling already reduced every equation by the unknowns it recovered, so
    only the still-unknown variables and the equations still containing them
    form a (small, sparse) system.  It is eliminated bit-packed with
    minimum-weight pivoting — the residual of a peeled rateless graph is
    near its 2-core, so greedy sparse pivoting keeps fill-in (and therefore
    the downstream payload traffic) low — while an augmented identity tracks
    which equations combine into each solved unknown.

    Marks solved unknowns in ``result.known`` and returns ``(solved_vars,
    comb_flat, comb_offsets)``: for each newly solved unknown, the global
    equation rows whose *peel-reduced* values XOR to its payload.
    """
    empty = np.empty(0, dtype=np.int64)
    known = result.known
    unknown_ids = np.flatnonzero(~known)
    if unknown_ids.size == 0:
        return empty, empty, np.zeros(1, dtype=np.int64)
    flat = np.asarray(flat, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    # Equations that still constrain >= 1 unknown.
    rows = np.flatnonzero(result.counts > 0)
    if rows.size == 0:
        return empty, empty, np.zeros(1, dtype=np.int64)
    res_flat, res_offsets = csr_take(flat, offsets, rows)
    keep = ~known[res_flat]
    res_counts = np.zeros(rows.size, dtype=np.int64)
    np.add.at(res_counts, np.repeat(np.arange(rows.size), res_offsets[1:] - res_offsets[:-1]), keep)
    remap = np.full(n_unknowns, -1, dtype=np.int64)
    remap[unknown_ids] = np.arange(unknown_ids.size, dtype=np.int64)
    kept_flat = remap[res_flat[keep]]
    kept_offsets = np.zeros(rows.size + 1, dtype=np.int64)
    np.cumsum(res_counts, out=kept_offsets[1:])

    n_rows = rows.size
    n_cols = unknown_ids.size
    bits = bits_from_csr(kept_flat, kept_offsets, n_cols)
    aug_words = (n_rows + WORD_BITS - 1) // WORD_BITS
    augmented = np.zeros((n_rows, aug_words), dtype=np.uint64)
    row_range = np.arange(n_rows)
    augmented[row_range, row_range // WORD_BITS] = np.uint64(1) << (
        row_range % WORD_BITS
    ).astype(np.uint64)

    # Gauss-Jordan with greedy minimum-weight row pivoting.  Row weights are
    # maintained incrementally: only rows touched by a pivot step change.
    used = np.zeros(n_rows, dtype=bool)
    pivots: Dict[int, int] = {}
    one = np.uint64(1)
    big = np.int64(1) << 40
    weights = popcount(bits).sum(axis=1).astype(np.int64)
    weights[weights == 0] = big
    for _ in range(n_cols):
        pivot_row = int(np.argmin(weights))
        if weights[pivot_row] >= big:
            break
        words = bits[pivot_row]
        column = -1
        for word_index in range(words.size):
            word = int(words[word_index])
            if word:
                column = word_index * WORD_BITS + ((word & -word).bit_length() - 1)
                break
        word_index, bit = divmod(column, WORD_BITS)
        shift = np.uint64(bit)
        mask = ((bits[:, word_index] >> shift) & one).astype(bool)
        mask[pivot_row] = False
        if mask.any():
            bits[mask] ^= bits[pivot_row]
            augmented[mask] ^= augmented[pivot_row]
            touched = np.flatnonzero(mask)
            new_weights = popcount(bits[touched]).sum(axis=1).astype(np.int64)
            new_weights[new_weights == 0] = big
            still_free = ~used[touched]
            weights[touched[still_free]] = new_weights[still_free]
        used[pivot_row] = True
        weights[pivot_row] = big
        pivots[column] = pivot_row
    solved = solved_unit_rows(bits, pivots)
    if not solved:
        return empty, empty, np.zeros(1, dtype=np.int64)

    solved_columns = np.fromiter(solved.keys(), dtype=np.int64, count=len(solved))
    solved_rows = np.fromiter(solved.values(), dtype=np.int64, count=len(solved))
    solved_vars = unknown_ids[solved_columns]
    known[solved_vars] = True
    combinations = augmented[solved_rows]
    shifts = np.arange(WORD_BITS, dtype=np.uint64)
    expanded = ((combinations[:, :, None] >> shifts[None, None, :]) & one).astype(bool).reshape(
        combinations.shape[0], -1
    )[:, :n_rows]
    sel_solved, sel_eqs = np.nonzero(expanded)
    seg_counts = np.bincount(sel_solved, minlength=combinations.shape[0])
    comb_offsets = np.zeros(combinations.shape[0] + 1, dtype=np.int64)
    np.cumsum(seg_counts, out=comb_offsets[1:])
    return solved_vars, rows[sel_eqs], comb_offsets


def solve_residual(
    flat: np.ndarray,
    offsets: np.ndarray,
    n_unknowns: int,
    result: PeelResult,
    values: Optional[np.ndarray] = None,
) -> PeelResult:
    """Complete a stalled peel exactly; see :func:`compile_residual`.

    When ``values`` is given (the peel-reduced equation payloads), solved
    payloads are computed with one batched segmented XOR over the recorded
    equation combinations and merged into ``result.solution``.
    """
    solved_vars, comb_flat, comb_offsets = compile_residual(flat, offsets, n_unknowns, result)
    if solved_vars.size and values is not None and result.solution is not None:
        result.solution[solved_vars] = xor_reduce_segments(values, comb_flat, comb_offsets)
    return result


# -- CSR helpers ----------------------------------------------------------------
def concat_csr(
    parts: Sequence[Tuple[np.ndarray, np.ndarray]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack several CSR systems into one (concatenating their equations)."""
    flats: List[np.ndarray] = []
    counts: List[np.ndarray] = []
    for flat, offsets in parts:
        flats.append(np.asarray(flat, dtype=np.int64))
        offs = np.asarray(offsets, dtype=np.int64)
        counts.append(offs[1:] - offs[:-1])
    if not flats:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    flat = np.concatenate(flats) if flats else np.empty(0, dtype=np.int64)
    all_counts = np.concatenate(counts) if counts else np.empty(0, dtype=np.int64)
    offsets = np.zeros(all_counts.size + 1, dtype=np.int64)
    np.cumsum(all_counts, out=offsets[1:])
    return flat, offsets


def csr_take(
    flat: np.ndarray, offsets: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract the CSR subsystem formed by ``rows`` (in the given order)."""
    flat = np.asarray(flat, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    rows = np.asarray(rows, dtype=np.int64)
    lens = offsets[rows + 1] - offsets[rows]
    total = int(lens.sum())
    out_offsets = np.zeros(rows.size + 1, dtype=np.int64)
    np.cumsum(lens, out=out_offsets[1:])
    if total == 0:
        return np.empty(0, dtype=np.int64), out_offsets
    take = np.repeat(offsets[rows] - out_offsets[:-1], lens) + np.arange(total, dtype=np.int64)
    return flat[take], out_offsets
