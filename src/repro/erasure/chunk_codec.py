"""Chunk-level encode/decode helpers and the code registry.

:class:`ChunkCodec` ties an :class:`~repro.erasure.base.ErasureCode` to the
chunk-handling conventions of the storage system: how many blocks a chunk is
split into, how large a chunk may be given the smallest block capacity offered
by the probed nodes, and measurement helpers used by the Table 2 experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.erasure.base import CodeSpec, EncodedChunk, ErasureCode
from repro.erasure.null_code import NullCode
from repro.erasure.online_code import OnlineCode, OnlineCodeParameters
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.xor_code import XorParityCode


#: Factory registry mapping code names to zero-argument constructors with the
#: paper's default parameters.
registry: Dict[str, Callable[[], ErasureCode]] = {
    "null": NullCode,
    "xor": lambda: XorParityCode(group_size=2),
    "online": lambda: OnlineCode(OnlineCodeParameters(epsilon=0.01, q=3)),
    "reed-solomon": lambda: ReedSolomonCode(parity_blocks=2),
}


def get_code(name: str) -> ErasureCode:
    """Instantiate a registered code by name ("null", "xor", "online", "reed-solomon")."""
    try:
        factory = registry[name]
    except KeyError as error:
        raise KeyError(f"unknown erasure code {name!r}; known: {sorted(registry)}") from error
    return factory()


def clear_coding_caches() -> None:
    """Drop every cached code structure (cold-path measurements).

    Clears the online-code graph/program cache, the cached degree
    distributions, and the Reed-Solomon generator-matrix caches.
    """
    from repro.erasure import online_code, reed_solomon

    online_code.clear_code_graph_cache()
    online_code._degree_distribution_cached.cache_clear()
    online_code._rho_cdf_cached.cache_clear()
    reed_solomon._cauchy_parity_rows.cache_clear()
    reed_solomon._full_generator_cached.cache_clear()


@dataclass
class CodingMeasurement:
    """Timing/size record for one encode(+decode) round (Table 2 rows)."""

    code_name: str
    chunk_size: int
    encoded_size: int
    encode_seconds: float
    decode_seconds: float

    @property
    def size_overhead(self) -> float:
        """Fractional growth of stored bytes relative to the chunk size."""
        if self.chunk_size == 0:
            return 0.0
        return self.encoded_size / self.chunk_size - 1.0

    @property
    def encode_throughput_mb_s(self) -> float:
        """Encode throughput in MB/s (the unit tracked by BENCH_coding.json)."""
        if self.encode_seconds <= 0.0:
            return 0.0
        return self.chunk_size / (1 << 20) / self.encode_seconds

    @property
    def decode_throughput_mb_s(self) -> float:
        """Decode throughput in MB/s."""
        if self.decode_seconds <= 0.0:
            return 0.0
        return self.chunk_size / (1 << 20) / self.decode_seconds


class ChunkCodec:
    """Erasure coding applied at chunk granularity (Section 4.2 of the paper)."""

    def __init__(self, code: ErasureCode, blocks_per_chunk: int = 4) -> None:
        if blocks_per_chunk < 1:
            raise ValueError("blocks_per_chunk must be >= 1")
        self.code = code
        self.blocks_per_chunk = blocks_per_chunk

    # -- capacity negotiation helpers ------------------------------------------
    def spec(self) -> CodeSpec:
        """The capacity-simulation spec for the configured block count."""
        return self.code.spec(self.blocks_per_chunk)

    def max_chunk_size(self, max_block_size: int) -> int:
        """Largest chunk storable when every encoded block must fit ``max_block_size``.

        Section 4.3: the chunk size is the product of the negotiated block size
        and the number of *original* blocks per chunk.
        """
        return self.code.chunk_size_for_block_size(max_block_size, self.blocks_per_chunk)

    def encoded_block_size(self, chunk_size: int) -> int:
        """Size of each encoded block for a chunk of ``chunk_size`` bytes."""
        if chunk_size <= 0:
            return 0
        return -(-chunk_size // self.blocks_per_chunk)

    def encoded_block_count(self) -> int:
        """Number of encoded blocks produced per chunk."""
        return self.code.encoded_block_count(self.blocks_per_chunk)

    # -- real-bytes mode ---------------------------------------------------------
    def encode(self, data: bytes) -> EncodedChunk:
        """Encode one chunk's payload."""
        return self.code.encode(data, self.blocks_per_chunk)

    def decode(self, chunk: EncodedChunk, available: Dict[int, bytes]) -> bytes:
        """Decode one chunk from the available encoded blocks."""
        return self.code.decode(chunk, available)

    # -- measurement ---------------------------------------------------------------
    def measure(
        self, data: bytes, decode_subset: Optional[int] = None, cold: bool = False
    ) -> CodingMeasurement:
        """Encode then decode ``data``, recording wall-clock time and sizes.

        ``decode_subset`` limits how many encoded blocks the decoder sees
        (defaults to all of them); pass a smaller count to exercise the
        loss-recovery path.  ``cold=True`` drops the cached code-structure
        layer first, so the measurement includes graph derivation and decode
        program compilation rather than the steady-state hot path.
        """
        if cold:
            clear_coding_caches()
        start = time.perf_counter()
        encoded = self.encode(data)
        encode_seconds = time.perf_counter() - start

        minimum = self.code.minimum_blocks(self.blocks_per_chunk)
        count = decode_subset if decode_subset is not None else len(encoded.blocks)
        count = max(minimum, min(count, len(encoded.blocks)))
        available = {block.index: block.data for block in encoded.blocks[:count]}

        start = time.perf_counter()
        restored = self.decode(encoded, available)
        decode_seconds = time.perf_counter() - start
        if restored != data:
            raise AssertionError(f"{self.code.name} round trip failed during measurement")

        return CodingMeasurement(
            code_name=self.code.name,
            chunk_size=len(data),
            encoded_size=encoded.encoded_size,
            encode_seconds=encode_seconds,
            decode_seconds=decode_seconds,
        )
