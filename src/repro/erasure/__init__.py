"""Erasure-coding substrate.

The paper protects every variable-sized chunk with an erasure code applied
*within* the chunk (Section 4.2): the chunk is split into ``n`` equal blocks,
the code produces ``m`` encoded blocks, and the chunk can be recovered from a
subset of the encoded blocks.  Three codes appear in the evaluation
(Table 2 / Figure 10): a NULL code (plain copy), a (2, 3) XOR parity code, and
Maymounkov's rateless *online code* with q = 3 and epsilon = 0.01.  A
Reed-Solomon code over GF(256) is provided as an extension (it is the optimal
erasure code the paper alludes to when discussing "optimal" vs "sub-optimal"
codes in Section 2.2).

All coders operate on real bytes so the coding-performance experiment is a
real measurement; :class:`CodeSpec` captures the per-code metadata (blocks
produced, blocks needed, loss tolerance) used by the capacity-only
simulations.
"""

from repro.erasure.base import (
    CodeSpec,
    DecodingError,
    EncodedBlock,
    EncodedChunk,
    ErasureCode,
    split_into_blocks,
)
from repro.erasure.null_code import NullCode
from repro.erasure.xor_code import XorParityCode
from repro.erasure.online_code import OnlineCode, OnlineCodeParameters
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.chunk_codec import ChunkCodec, registry, get_code

__all__ = [
    "CodeSpec",
    "DecodingError",
    "EncodedBlock",
    "EncodedChunk",
    "ErasureCode",
    "split_into_blocks",
    "NullCode",
    "XorParityCode",
    "OnlineCode",
    "OnlineCodeParameters",
    "ReedSolomonCode",
    "ChunkCodec",
    "registry",
    "get_code",
]
