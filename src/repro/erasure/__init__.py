"""Erasure-coding substrate.

The paper protects every variable-sized chunk with an erasure code applied
*within* the chunk (Section 4.2): the chunk is split into ``n`` equal blocks,
the code produces ``m`` encoded blocks, and the chunk can be recovered from a
subset of the encoded blocks.  Three codes appear in the evaluation
(Table 2 / Figure 10): a NULL code (plain copy), a (2, 3) XOR parity code, and
Maymounkov's rateless *online code* with q = 3 and epsilon = 0.01.  A
Reed-Solomon code over GF(256) is provided as an extension (it is the optimal
erasure code the paper alludes to when discussing "optimal" vs "sub-optimal"
codes in Section 2.2).

Architecture — the vectorized coding kernel
-------------------------------------------

All four codes sit on top of :mod:`repro.erasure.gf2`, a bit-packed GF(2)
kernel that turns the coding hot paths into batched NumPy operations:

* ``pack_matrix`` / ``xor_reduce_segments`` — payload blocks are stacked into
  ``uint64``-word matrices and encode is a single segmented XOR-reduce over a
  CSR description of each output block's neighbours (online code, XOR
  parities, aux-block construction);
* ``peel`` — a vectorized belief-propagation scheduler driven by
  per-equation degree counters (the online-code decoder and the encoder's
  decodability guarantee), processing whole frontiers of degree-1 equations
  per round instead of re-scanning every equation;
* ``bits_from_csr`` / ``eliminate`` — bit-packed Gauss-Jordan elimination for
  the small-system exact fallback and rank tests;
* ``hash_counters`` — counter-based splitmix64 streams so rateless graph
  structure is derived in vectorized batches *and* any single stream index
  can be regenerated independently (online-code stream version 2; version-1
  chunks from the per-index RNG era still decode via
  :mod:`repro.erasure._legacy`).

Code structures (aux assignments, degree CDFs, check-neighbour prefixes,
Reed-Solomon generator matrices) are memoised in ``lru_cache`` layers keyed
by the chunk seed and code parameters, so decode and the repair path reuse
exactly the graph the encoder built.  The storage/recovery layers
(:mod:`repro.core.storage`, :mod:`repro.core.recovery`) and the coding
benchmarks (``benchmarks/test_bench_coding_throughput.py``) all ride on this
kernel.

All coders operate on real bytes so the coding-performance experiment is a
real measurement; :class:`CodeSpec` captures the per-code metadata (blocks
produced, blocks needed, loss tolerance) used by the capacity-only
simulations.
"""

from repro.erasure.base import (
    CodeSpec,
    DecodingError,
    EncodedBlock,
    EncodedChunk,
    ErasureCode,
    split_into_blocks,
    split_into_matrix,
)
from repro.erasure.null_code import NullCode
from repro.erasure.xor_code import XorParityCode
from repro.erasure.online_code import (
    STREAM_VERSION,
    OnlineCode,
    OnlineCodeParameters,
    clear_code_graph_cache,
)
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.chunk_codec import ChunkCodec, clear_coding_caches, registry, get_code

__all__ = [
    "CodeSpec",
    "DecodingError",
    "EncodedBlock",
    "EncodedChunk",
    "ErasureCode",
    "split_into_blocks",
    "split_into_matrix",
    "NullCode",
    "XorParityCode",
    "OnlineCode",
    "OnlineCodeParameters",
    "STREAM_VERSION",
    "clear_code_graph_cache",
    "clear_coding_caches",
    "ReedSolomonCode",
    "ChunkCodec",
    "registry",
    "get_code",
]
