"""Reference (seed) implementations of the coding hot paths, kept verbatim.

The vectorized kernel (:mod:`repro.erasure.gf2`) replaced the original
per-block Python loops everywhere that matters.  The originals are preserved
here for two reasons:

* **Stream-format compatibility.** Online-code chunks encoded before the
  batched stream derivation (metadata without ``stream_version``, i.e.
  version 1) derive their graphs from per-index ``np.random.default_rng``
  draws.  The new decoder reproduces those graphs exactly by calling
  :func:`legacy_aux_assignment` / :func:`legacy_check_neighbors`.
* **Benchmark baselines.** ``benchmarks/test_bench_coding_throughput.py``
  measures :class:`LegacyOnlineCode` and :class:`LegacyReedSolomonCode` on
  the same machine as the vectorized codes so ``BENCH_coding.json`` records
  honest speedups rather than numbers blessed at some other point in time.

Nothing outside benchmarks and compatibility tests should import the legacy
classes; production call sites use :class:`repro.erasure.online_code.OnlineCode`
and :class:`repro.erasure.reed_solomon.ReedSolomonCode`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.erasure.base import (
    DecodingError,
    EncodedBlock,
    EncodedChunk,
    join_blocks,
    split_into_blocks,
)
from repro.sim.rng import derive_seed


# -- online-code stream version 1 derivation (seed behaviour, bit-for-bit) ------
def legacy_aux_assignment(
    n_blocks: int, aux_count: int, q: int, chunk_seed: int
) -> List[List[int]]:
    """For each auxiliary block, the original-block indices XORed into it."""
    rng = np.random.default_rng(derive_seed(chunk_seed, "outer"))
    membership: List[List[int]] = [[] for _ in range(aux_count)]
    for original in range(n_blocks):
        chosen = rng.choice(aux_count, size=min(q, aux_count), replace=False)
        for aux_index in chosen:
            membership[int(aux_index)].append(original)
    return membership


def legacy_check_neighbors(
    composite_count: int, check_index: int, chunk_seed: int, rho_cdf: np.ndarray
) -> List[int]:
    """Composite-block neighbours of check block ``check_index`` (stream v1)."""
    rng = np.random.default_rng(derive_seed(chunk_seed, "inner", check_index))
    degree = int(np.searchsorted(rho_cdf, rng.random(), side="right")) + 1
    degree = min(max(1, degree), composite_count)
    neighbors = rng.choice(composite_count, size=degree, replace=False)
    return [int(v) for v in neighbors]


class LegacyOnlineCode:
    """The seed online-code implementation (scalar loops, per-block RNGs)."""

    name = "online-legacy"
    GAUSSIAN_FALLBACK_LIMIT = 2048
    SMALL_SYSTEM_GUARANTEE = 640

    def __init__(self, parameters=None, seed: int = 0) -> None:
        from repro.erasure.online_code import OnlineCodeParameters

        self.parameters = parameters or OnlineCodeParameters()
        self.seed = int(seed)

    def _aux_assignment(self, n_blocks: int, chunk_seed: int) -> List[List[int]]:
        params = self.parameters
        return legacy_aux_assignment(
            n_blocks, params.auxiliary_count(n_blocks), params.q, chunk_seed
        )

    def _rho_cdf(self) -> np.ndarray:
        rho = self.parameters.degree_distribution()
        return np.cumsum(np.asarray(rho, dtype=float))

    @staticmethod
    def _graph_peel_succeeds(
        n_blocks: int,
        composite_count: int,
        aux_membership: Sequence[Sequence[int]],
        neighbor_sets: Sequence[Sequence[int]],
    ) -> bool:
        known = [False] * composite_count
        equations: List[set] = [set(neighbors) for neighbors in neighbor_sets]
        aux_added = [False] * len(aux_membership)
        progress = True
        while progress:
            progress = False
            for neighbors in equations:
                resolved = [n for n in neighbors if known[n]]
                for n in resolved:
                    neighbors.discard(n)
                if len(neighbors) == 1:
                    target = neighbors.pop()
                    if not known[target]:
                        known[target] = True
                        progress = True
            for aux_offset in range(len(aux_membership)):
                if not aux_added[aux_offset] and known[n_blocks + aux_offset]:
                    equations.append(set(aux_membership[aux_offset]) | {n_blocks + aux_offset})
                    aux_added[aux_offset] = True
        return all(known[:n_blocks])

    def _decodable_from_all(
        self, n_blocks, composite_count, aux_membership, neighbor_sets
    ) -> bool:
        if self._graph_peel_succeeds(n_blocks, composite_count, aux_membership, neighbor_sets):
            return True
        if composite_count <= self.GAUSSIAN_FALLBACK_LIMIT:
            return self._stream_determines_originals(
                n_blocks, composite_count, aux_membership, neighbor_sets
            )
        return False

    @staticmethod
    def _stream_determines_originals(
        n_blocks, composite_count, aux_membership, neighbor_sets
    ) -> bool:
        rows: List[np.ndarray] = []
        for neighbors in neighbor_sets:
            row = np.zeros(composite_count, dtype=np.uint8)
            for neighbor in neighbors:
                row[neighbor] ^= 1
            rows.append(row)
        for aux_offset, members in enumerate(aux_membership):
            row = np.zeros(composite_count, dtype=np.uint8)
            row[n_blocks + aux_offset] ^= 1
            for member in members:
                row[member] ^= 1
            rows.append(row)
        matrix = np.vstack(rows)
        solvable = np.zeros(composite_count, dtype=bool)
        pivot_row = 0
        for column in range(composite_count):
            candidates = np.nonzero(matrix[pivot_row:, column])[0]
            if candidates.size == 0:
                continue
            chosen = pivot_row + int(candidates[0])
            if chosen != pivot_row:
                matrix[[pivot_row, chosen]] = matrix[[chosen, pivot_row]]
            for row_index in np.nonzero(matrix[:, column])[0]:
                if row_index != pivot_row:
                    matrix[row_index] ^= matrix[pivot_row]
            pivot_row += 1
            if pivot_row == matrix.shape[0]:
                break
        row_weights = matrix.sum(axis=1)
        for row_index in np.nonzero(row_weights == 1)[0]:
            solvable[int(np.nonzero(matrix[row_index])[0][0])] = True
        return bool(solvable[:n_blocks].all())

    def default_output_blocks(self, n_blocks: int) -> int:
        params = self.parameters
        composite = n_blocks + params.auxiliary_count(n_blocks)
        return int(math.ceil(params.quality * (1.0 + params.epsilon) * composite)) + params.margin

    def encode(self, data: bytes, n_blocks: int, output_blocks: Optional[int] = None) -> EncodedChunk:
        originals = split_into_blocks(data, n_blocks)
        block_size = len(originals[0]) if originals else 0
        chunk_seed = derive_seed(self.seed, "chunk", len(data), n_blocks)
        aux_membership = self._aux_assignment(n_blocks, chunk_seed)
        aux_blocks: List[np.ndarray] = []
        for members in aux_membership:
            value = np.zeros(block_size, dtype=np.uint8)
            for original in members:
                np.bitwise_xor(value, originals[original], out=value)
            aux_blocks.append(value)
        composites: List[np.ndarray] = list(originals) + aux_blocks
        composite_count = len(composites)

        if output_blocks is None:
            output_blocks = self.default_output_blocks(n_blocks)
        if output_blocks < 1:
            raise ValueError("output_blocks must be >= 1")
        rho_cdf = self._rho_cdf()

        encoded: List[EncodedBlock] = []
        neighbor_sets: List[List[int]] = []
        for check_index in range(output_blocks):
            neighbors = legacy_check_neighbors(composite_count, check_index, chunk_seed, rho_cdf)
            value = np.zeros(block_size, dtype=np.uint8)
            for neighbor in neighbors:
                np.bitwise_xor(value, composites[neighbor], out=value)
            encoded.append(EncodedBlock(index=check_index, data=value.tobytes()))
            neighbor_sets.append(neighbors)

        if composite_count <= self.SMALL_SYSTEM_GUARANTEE:
            extra_cap = 8 * composite_count + 16
            while len(encoded) < output_blocks + extra_cap and not self._decodable_from_all(
                n_blocks, composite_count, aux_membership, neighbor_sets
            ):
                check_index = len(encoded)
                neighbors = legacy_check_neighbors(
                    composite_count, check_index, chunk_seed, rho_cdf
                )
                value = np.zeros(block_size, dtype=np.uint8)
                for neighbor in neighbors:
                    np.bitwise_xor(value, composites[neighbor], out=value)
                encoded.append(EncodedBlock(index=check_index, data=value.tobytes()))
                neighbor_sets.append(neighbors)
            output_blocks = len(encoded)

        return EncodedChunk(
            code_name="online",
            original_size=len(data),
            block_size=block_size,
            n_blocks=n_blocks,
            blocks=encoded,
            metadata={
                "chunk_seed": chunk_seed,
                "output_blocks": output_blocks,
                "epsilon": self.parameters.epsilon,
                "q": self.parameters.q,
            },
        )

    def decode(self, chunk: EncodedChunk, available: Dict[int, bytes]) -> bytes:
        chunk_seed = int(chunk.metadata["chunk_seed"])
        n_blocks = chunk.n_blocks
        aux_membership = self._aux_assignment(n_blocks, chunk_seed)
        composite_count = n_blocks + len(aux_membership)
        total_outputs = int(chunk.metadata["output_blocks"])
        rho_cdf = self._rho_cdf()

        block_size = chunk.block_size
        known: List[Optional[np.ndarray]] = [None] * composite_count

        equations: List[Tuple[set, np.ndarray]] = []
        for index, payload in available.items():
            if not 0 <= index < total_outputs:
                raise DecodingError(f"unknown encoded block index {index}")
            neighbors = set(legacy_check_neighbors(composite_count, index, chunk_seed, rho_cdf))
            value = np.frombuffer(payload, dtype=np.uint8).copy()
            equations.append((neighbors, value))

        aux_equations_added = [False] * len(aux_membership)

        def add_aux_equation(aux_offset: int) -> None:
            if aux_equations_added[aux_offset]:
                return
            aux_composite = n_blocks + aux_offset
            if known[aux_composite] is None:
                return
            members = set(aux_membership[aux_offset])
            equations.append((members | {aux_composite}, np.zeros(block_size, dtype=np.uint8)))
            aux_equations_added[aux_offset] = True

        progress = True
        while progress:
            progress = False
            for neighbors, value in equations:
                resolved = [n for n in neighbors if known[n] is not None]
                for n in resolved:
                    np.bitwise_xor(value, known[n], out=value)
                    neighbors.discard(n)
                if len(neighbors) == 1:
                    target = neighbors.pop()
                    known[target] = value.copy()
                    progress = True
                    if target >= n_blocks:
                        add_aux_equation(target - n_blocks)
            for aux_offset in range(len(aux_membership)):
                add_aux_equation(aux_offset)

        if any(known[i] is None for i in range(n_blocks)):
            if composite_count <= self.GAUSSIAN_FALLBACK_LIMIT:
                self._gaussian_fallback(chunk, available, known, aux_membership, chunk_seed, rho_cdf)
            if any(known[i] is None for i in range(n_blocks)):
                missing = sum(1 for i in range(n_blocks) if known[i] is None)
                raise DecodingError(
                    f"legacy online peeling stalled: {missing}/{n_blocks} unrecovered"
                )
        return join_blocks([known[i] for i in range(n_blocks)], chunk.original_size)  # type: ignore[list-item]

    def _gaussian_fallback(
        self,
        chunk: EncodedChunk,
        available: Dict[int, bytes],
        known: List[Optional[np.ndarray]],
        aux_membership: Sequence[Sequence[int]],
        chunk_seed: int,
        rho_cdf: np.ndarray,
    ) -> None:
        """Exact GF(2) elimination over all equations (seed implementation)."""
        n_blocks = chunk.n_blocks
        composite_count = n_blocks + len(aux_membership)
        block_size = chunk.block_size

        rows: List[np.ndarray] = []
        values: List[np.ndarray] = []
        for index, payload in available.items():
            row = np.zeros(composite_count, dtype=np.uint8)
            for neighbor in legacy_check_neighbors(composite_count, index, chunk_seed, rho_cdf):
                row[neighbor] ^= 1
            rows.append(row)
            values.append(np.frombuffer(payload, dtype=np.uint8).copy())
        for aux_offset, members in enumerate(aux_membership):
            row = np.zeros(composite_count, dtype=np.uint8)
            row[n_blocks + aux_offset] ^= 1
            for member in members:
                row[member] ^= 1
            rows.append(row)
            values.append(np.zeros(block_size, dtype=np.uint8))
        if not rows:
            return

        matrix = np.vstack(rows)
        payload = np.vstack(values) if block_size else np.zeros((len(rows), 0), dtype=np.uint8)

        pivot_of_column: Dict[int, int] = {}
        pivot_row = 0
        for column in range(composite_count):
            candidates = np.nonzero(matrix[pivot_row:, column])[0]
            if candidates.size == 0:
                continue
            chosen = pivot_row + int(candidates[0])
            if chosen != pivot_row:
                matrix[[pivot_row, chosen]] = matrix[[chosen, pivot_row]]
                payload[[pivot_row, chosen]] = payload[[chosen, pivot_row]]
            others = np.nonzero(matrix[:, column])[0]
            for row_index in others:
                if row_index != pivot_row:
                    matrix[row_index] ^= matrix[pivot_row]
                    payload[row_index] ^= payload[pivot_row]
            pivot_of_column[column] = pivot_row
            pivot_row += 1
            if pivot_row == matrix.shape[0]:
                break

        for column, row_index in pivot_of_column.items():
            if int(matrix[row_index].sum()) == 1:
                known[column] = payload[row_index].copy()


# -- Reed-Solomon seed implementation (scalar GF(256) inner loops) --------------
class LegacyReedSolomonCode:
    """The seed Reed-Solomon implementation: per-coefficient vector multiplies."""

    name = "reed-solomon-legacy"

    def __init__(self, parity_blocks: int = 2) -> None:
        if parity_blocks < 1:
            raise ValueError("parity_blocks must be >= 1")
        self.parity_blocks = parity_blocks

    @staticmethod
    def _gf_mul_vector(scalar: int, vector: np.ndarray) -> np.ndarray:
        from repro.erasure.reed_solomon import _EXP, _LOG

        if scalar == 0:
            return np.zeros_like(vector)
        if scalar == 1:
            return vector.copy()
        log_s = _LOG[scalar]
        result = np.zeros_like(vector)
        nonzero = vector != 0
        result[nonzero] = _EXP[log_s + _LOG[vector[nonzero]]]
        return result.astype(np.uint8)

    def _generator_rows(self, k: int) -> np.ndarray:
        from repro.erasure.reed_solomon import gf_inv

        if k + self.parity_blocks > 255:
            raise ValueError("k + parity must be <= 255 for GF(256) Cauchy construction")
        x_values = np.arange(k, dtype=np.int32)
        y_values = np.arange(k, k + self.parity_blocks, dtype=np.int32) + 1
        rows = np.zeros((self.parity_blocks, k), dtype=np.int32)
        for i, y in enumerate(y_values):
            for j, x in enumerate(x_values):
                rows[i, j] = gf_inv(int(x) ^ int(y))
        return rows

    def _full_generator(self, k: int) -> np.ndarray:
        return np.vstack([np.eye(k, dtype=np.int32), self._generator_rows(k)])

    def encode(self, data: bytes, n_blocks: int) -> EncodedChunk:
        originals = split_into_blocks(data, n_blocks)
        block_size = len(originals[0]) if originals else 0
        parity_rows = self._generator_rows(n_blocks)
        encoded: List[EncodedBlock] = [
            EncodedBlock(index=i, data=block.tobytes()) for i, block in enumerate(originals)
        ]
        for parity_index in range(self.parity_blocks):
            value = np.zeros(block_size, dtype=np.uint8)
            for data_index in range(n_blocks):
                coefficient = int(parity_rows[parity_index, data_index])
                np.bitwise_xor(value, self._gf_mul_vector(coefficient, originals[data_index]), out=value)
            encoded.append(EncodedBlock(index=n_blocks + parity_index, data=value.tobytes()))
        return EncodedChunk(
            code_name="reed-solomon",
            original_size=len(data),
            block_size=block_size,
            n_blocks=n_blocks,
            blocks=encoded,
            metadata={"parity_blocks": self.parity_blocks},
        )

    def decode(self, chunk: EncodedChunk, available: Dict[int, bytes]) -> bytes:
        from repro.erasure.reed_solomon import _legacy_gf_matrix_inverse

        k = chunk.n_blocks
        if len(available) < k:
            raise DecodingError(
                f"reed-solomon needs {k} blocks, only {len(available)} available"
            )
        if all(index in available for index in range(k)):
            blocks = [np.frombuffer(available[i], dtype=np.uint8) for i in range(k)]
            return join_blocks(blocks, chunk.original_size)

        generator = self._full_generator(k)
        chosen = sorted(available)[:k]
        sub_matrix = generator[chosen, :]
        inverse = _legacy_gf_matrix_inverse(sub_matrix)
        received = [np.frombuffer(available[index], dtype=np.uint8) for index in chosen]
        originals: List[np.ndarray] = []
        for row in range(k):
            value = np.zeros(chunk.block_size, dtype=np.uint8)
            for column in range(k):
                coefficient = int(inverse[row, column])
                if coefficient:
                    np.bitwise_xor(value, self._gf_mul_vector(coefficient, received[column]), out=value)
            originals.append(value)
        return join_blocks(originals, chunk.original_size)
