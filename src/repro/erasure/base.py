"""Common interfaces and helpers for erasure codes."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np


class DecodingError(RuntimeError):
    """Raised when the available encoded blocks are insufficient to decode."""


@dataclass(frozen=True)
class EncodedBlock:
    """One encoded block: its index within the chunk encoding and its payload."""

    index: int
    data: bytes

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.data)


@dataclass(frozen=True)
class EncodedChunk:
    """The result of encoding a chunk: encoded blocks plus decode metadata."""

    code_name: str
    original_size: int
    block_size: int
    n_blocks: int
    blocks: List[EncodedBlock]
    #: Code-specific metadata needed by the decoder (e.g. online-code seed).
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def encoded_size(self) -> int:
        """Total bytes across encoded blocks."""
        return sum(block.size for block in self.blocks)

    @property
    def storage_overhead(self) -> float:
        """Extra bytes stored relative to the original chunk size."""
        if self.original_size == 0:
            return 0.0
        return self.encoded_size / self.original_size - 1.0


@dataclass(frozen=True)
class CodeSpec:
    """Capacity-simulation view of a code: counts only, no payloads.

    ``input_blocks`` original blocks become ``output_blocks`` encoded blocks,
    and the chunk survives the loss of up to ``loss_tolerance`` of them.  The
    ``size_overhead`` is the multiplicative growth of stored bytes.
    """

    name: str
    input_blocks: int
    output_blocks: int
    loss_tolerance: int
    size_overhead: float

    def __post_init__(self) -> None:
        if self.input_blocks < 1 or self.output_blocks < self.input_blocks:
            raise ValueError("invalid code spec block counts")
        if not 0 <= self.loss_tolerance < self.output_blocks:
            raise ValueError("loss tolerance must be in [0, output_blocks)")

    @property
    def rate(self) -> float:
        """The code rate r = n / (n + k) defined in Section 2.2 of the paper."""
        return self.input_blocks / self.output_blocks

    def required_blocks(self) -> int:
        """Minimum surviving encoded blocks for the chunk to remain decodable."""
        return self.output_blocks - self.loss_tolerance


def split_into_matrix(data: bytes, n_blocks: int) -> np.ndarray:
    """Split ``data`` into an ``(n_blocks, block_size)`` uint8 matrix (zero padded).

    The paper's coder "divides the chunk into n equal size blocks"; padding is
    removed at reassembly using the recorded original size.  The 2-D layout is
    what the vectorized kernel (:mod:`repro.erasure.gf2`) operates on: whole
    encode passes become one segmented XOR-reduce over this matrix instead of
    per-block Python loops.
    """
    if n_blocks < 1:
        raise ValueError("n_blocks must be >= 1")
    buffer = np.frombuffer(data, dtype=np.uint8)
    block_size = -(-len(buffer) // n_blocks) if len(buffer) else 1
    padded = np.zeros(block_size * n_blocks, dtype=np.uint8)
    padded[: len(buffer)] = buffer
    return padded.reshape(n_blocks, block_size)


def split_into_blocks(data: bytes, n_blocks: int) -> List[np.ndarray]:
    """Split ``data`` into ``n_blocks`` equal-size uint8 blocks (zero padded).

    Row views of :func:`split_into_matrix`, kept for call sites that want a
    list of 1-D blocks.
    """
    matrix = split_into_matrix(data, n_blocks)
    return [matrix[i] for i in range(n_blocks)]


def join_blocks(blocks: Sequence[np.ndarray], original_size: int) -> bytes:
    """Concatenate decoded blocks and strip padding back to ``original_size``."""
    if not blocks:
        return b""
    joined = np.concatenate([np.asarray(block, dtype=np.uint8) for block in blocks])
    return joined[:original_size].tobytes()


class ErasureCode(abc.ABC):
    """Interface implemented by every erasure code in the reproduction."""

    #: Registry/display name ("null", "xor", "online", "reed-solomon").
    name: str = "abstract"

    @abc.abstractmethod
    def encode(self, data: bytes, n_blocks: int) -> EncodedChunk:
        """Encode ``data`` (one chunk) split into ``n_blocks`` original blocks."""

    @abc.abstractmethod
    def decode(self, chunk: EncodedChunk, available: Dict[int, bytes]) -> bytes:
        """Reassemble the chunk from the ``available`` encoded blocks.

        ``available`` maps encoded-block index to payload.  Raises
        :class:`DecodingError` when the available subset is insufficient.
        """

    @abc.abstractmethod
    def spec(self, n_blocks: int) -> CodeSpec:
        """The counts-only description used by capacity simulations."""

    # -- shared helpers ------------------------------------------------------
    def encoded_block_count(self, n_blocks: int) -> int:
        """Number of encoded blocks produced for ``n_blocks`` original blocks."""
        return self.spec(n_blocks).output_blocks

    def minimum_blocks(self, n_blocks: int) -> int:
        """Minimum encoded blocks required for successful decode."""
        return self.spec(n_blocks).required_blocks()

    def chunk_size_for_block_size(self, block_size: int, n_blocks: int) -> int:
        """Largest chunk representable when every encoded block is ``block_size``.

        Used by the chunk-size negotiation of Section 4.3: "if the maximum
        block size returned is 10 MB, under the (2, 3) XOR code the chunk size
        can be 20 MB".
        """
        if block_size <= 0:
            return 0
        return block_size * n_blocks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
