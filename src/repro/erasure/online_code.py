"""Maymounkov's rateless *online code* (the paper's preferred erasure code).

The online code (Section 2.2 of the paper, following Maymounkov's TR2003-883)
is a sub-optimal rateless erasure code built from two layers:

* the **outer code** produces ``0.55 * q * epsilon * n`` auxiliary blocks; each
  original block is XORed into ``q`` pseudo-randomly chosen auxiliary blocks;
* the **inner code** produces an unbounded stream of *check blocks*; each check
  block XORs ``d`` composite blocks (originals + auxiliaries), where ``d`` is
  drawn from the online-code degree distribution parameterised by ``epsilon``.

Only the check blocks are stored.  Decoding is the classic belief-propagation
("peeling") process, with an exact GF(2) Gaussian-elimination fallback for
small systems so that unit tests decode deterministically.

Implementation notes (the vectorized kernel):

* All graph structure — auxiliary assignments, check-block degrees and
  neighbour sets — is derived in *batched* vectorized passes from
  counter-based splitmix64 hashes (stream version 2), so any index range of
  the unbounded check stream can be generated in one call and any single
  index independently (the rateless property).  Chunks encoded by the seed
  implementation (per-index ``np.random.default_rng`` streams, version 1)
  carry no ``stream_version`` metadata and are still decoded bit-for-bit via
  the preserved derivation in :mod:`repro.erasure._legacy`.
* Payload math runs on the bit-packed GF(2) kernel
  (:mod:`repro.erasure.gf2`): encode is a segmented XOR-reduce over a stacked
  composite matrix, decode is the vectorized peeling scheduler driven by
  per-equation degree counters, and the small-system fallback is bit-packed
  Gauss-Jordan elimination.
* Code structures are cached per ``(epsilon, q, n_blocks, chunk_seed,
  version)`` in an LRU layer, so decode and
  :meth:`OnlineCode.generate_additional_blocks` reuse the graph the encoder
  just built instead of recomputing it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.erasure import gf2
from repro.erasure._legacy import legacy_aux_assignment, legacy_check_neighbors
from repro.erasure.base import (
    CodeSpec,
    DecodingError,
    EncodedBlock,
    EncodedChunk,
    ErasureCode,
    split_into_matrix,
)
from repro.sim.rng import derive_seed

#: Stream-derivation version written into chunk metadata.  Version 1 (the
#: seed implementation) derived each check block from its own freshly
#: constructed generator; version 2 derives whole index ranges from
#: counter-based hashes in one vectorized pass.  Decoders accept both.
STREAM_VERSION = 2


@lru_cache(maxsize=None)
def _degree_distribution_cached(epsilon: float) -> np.ndarray:
    big_f = OnlineCodeParameters.max_degree_for(epsilon)
    rho = np.zeros(big_f, dtype=float)
    rho[0] = 1.0 - (1.0 + 1.0 / big_f) / (1.0 + epsilon)
    for degree in range(2, big_f + 1):
        rho[degree - 1] = (1.0 - rho[0]) * big_f / ((big_f - 1) * degree * (degree - 1))
    rho = np.clip(rho, 0.0, None)
    rho /= rho.sum()
    rho.setflags(write=False)
    return rho


@lru_cache(maxsize=None)
def _rho_cdf_cached(epsilon: float) -> np.ndarray:
    cdf = np.cumsum(_degree_distribution_cached(epsilon))
    cdf.setflags(write=False)
    return cdf


@dataclass(frozen=True)
class OnlineCodeParameters:
    """Tuning parameters of the online code.

    The paper uses ``q = 3`` and ``epsilon = 0.01`` (Section 6.2).  ``quality``
    multiplies the nominal ``(1 + epsilon) * n'`` check-block count when the
    caller does not specify an explicit output size, and ``margin`` adds a
    small constant number of further check blocks.  The defaults keep the
    storage overhead for a paper-sized chunk (4096 blocks) at ~3-4 %, matching
    Table 2, while giving small chunks enough extra equations that decoding
    from the full block set virtually never fails.
    """

    epsilon: float = 0.01
    q: int = 3
    quality: float = 1.0
    margin: int = 16

    def __post_init__(self) -> None:
        if not 0 < self.epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if self.q < 1:
            raise ValueError("q must be >= 1")
        if self.quality < 1.0:
            raise ValueError("quality must be >= 1.0")
        if self.margin < 0:
            raise ValueError("margin must be non-negative")

    @staticmethod
    def max_degree_for(epsilon: float) -> int:
        """F, the maximum check-block degree, as a function of epsilon."""
        return max(2, int(math.ceil(math.log(epsilon**2 / 4.0) / math.log(1.0 - epsilon / 2.0))))

    @property
    def max_degree(self) -> int:
        """F, the maximum check-block degree."""
        return self.max_degree_for(self.epsilon)

    def degree_distribution(self) -> np.ndarray:
        """Probabilities rho_1..rho_F of the check-block degree distribution.

        Cached per ``epsilon`` (the distribution is recomputed for every
        encode *and* decode otherwise); the returned array is read-only.
        """
        return _degree_distribution_cached(self.epsilon)

    def rho_cdf(self) -> np.ndarray:
        """Cumulative degree distribution used by inverse-CDF sampling (cached)."""
        return _rho_cdf_cached(self.epsilon)

    def auxiliary_count(self, n_blocks: int) -> int:
        """Number of auxiliary blocks produced by the outer code."""
        return max(1, int(math.ceil(0.55 * self.q * self.epsilon * n_blocks)))


class DecodeProgram:
    """A compiled decode schedule for one (graph, available-index-set) pair.

    Decoding is GF(2)-linear and its control flow (which equation recovers
    which composite, in which order; which equations combine to solve the
    peeling residual) depends only on the graph — not on payload bytes.  The
    program stores that control flow as flat arrays:

    * ``schedule`` — one entry per peeling round: ``(targets, source_eqs,
      vars_sorted, unique_eqs, seg_offsets)``.  Replay assigns
      ``solution[targets] = values[source_eqs]`` and then XORs the
      newly-known payloads into the affected equations with one segmented
      reduce.  Events that can no longer influence the outcome (updates to
      equations already consumed) are filtered out at compile time.
    * ``residual_vars``/``residual_flat``/``residual_offsets`` — the
      inactivation step: each residual-solved composite is one XOR over the
      peel-reduced equation values.

    ``missing`` is non-zero (and the schedule unusable for full decode) when
    the available set cannot determine every original block.  ``rounds`` /
    ``events`` preserve peeling statistics for fingerprints and diagnostics.
    """

    __slots__ = (
        "missing",
        "n_equations",
        "schedule",
        "residual_vars",
        "residual_flat",
        "residual_offsets",
        "events",
        "rounds",
    )

    def __init__(
        self,
        missing: int,
        n_equations: int,
        schedule: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
        residual_vars: np.ndarray,
        residual_flat: np.ndarray,
        residual_offsets: np.ndarray,
        events: int,
        rounds: int,
    ):
        self.missing = missing
        self.n_equations = n_equations
        self.schedule = schedule
        self.residual_vars = residual_vars
        self.residual_flat = residual_flat
        self.residual_offsets = residual_offsets
        self.events = events
        self.rounds = rounds

    def run(self, check_values: np.ndarray, composite_count: int) -> np.ndarray:
        """Replay the schedule over packed check payloads; returns solutions.

        ``check_values`` is the ``(n_checks, words)`` packed payload matrix in
        sorted-available order; rows for the zero-valued auxiliary constraints
        are appended internally.
        """
        words = check_values.shape[1]
        values = np.zeros((self.n_equations, words), dtype=np.uint64)
        values[: check_values.shape[0]] = check_values
        solution = np.zeros((composite_count, words), dtype=np.uint64)
        for targets, source_eqs, vars_sorted, unique_eqs, seg_offsets in self.schedule:
            solution[targets] = values[source_eqs]
            if vars_sorted.size:
                values[unique_eqs] ^= gf2.xor_reduce_segments(solution, vars_sorted, seg_offsets)
        if self.residual_vars.size:
            solution[self.residual_vars] = gf2.xor_reduce_segments(
                values, self.residual_flat, self.residual_offsets
            )
        return solution


class CodeGraph:
    """The full coding graph of one chunk, derived from its seed.

    Holds the auxiliary-block memberships (CSR), the degree CDF, and a lazily
    extended prefix of the unbounded check-block stream, also in CSR form.
    Instances are shared through :func:`code_graph`'s LRU cache so the
    decoder, the repair path and ``generate_additional_blocks`` all reuse the
    structure the encoder built.
    """

    __slots__ = (
        "epsilon",
        "q",
        "n_blocks",
        "chunk_seed",
        "version",
        "aux_count",
        "composite_count",
        "rho_cdf",
        "aux_flat",
        "aux_offsets",
        "_inner_seed",
        "_check_flat",
        "_check_offsets",
        "_aux_eq",
        "decodable_cache",
        "_programs",
    )

    def __init__(self, epsilon: float, q: int, n_blocks: int, chunk_seed: int, version: int):
        params = OnlineCodeParameters(epsilon=epsilon, q=q)
        self.epsilon = epsilon
        self.q = q
        self.n_blocks = int(n_blocks)
        self.chunk_seed = int(chunk_seed)
        self.version = int(version)
        self.aux_count = params.auxiliary_count(n_blocks)
        self.composite_count = self.n_blocks + self.aux_count
        self.rho_cdf = params.rho_cdf()
        self.aux_flat, self.aux_offsets = self._derive_aux()
        self._inner_seed = derive_seed(self.chunk_seed, "inner-v2")
        self._check_flat = np.empty(0, dtype=np.int64)
        self._check_offsets = np.zeros(1, dtype=np.int64)
        self._aux_eq: Optional[Tuple[np.ndarray, np.ndarray]] = None
        #: Memoised results of the encoder's decodability guarantee, keyed by
        #: check-block count (the answer is a pure function of the graph).
        self.decodable_cache: Dict[int, bool] = {}
        #: Compiled decode programs keyed by the available-index tuple.
        self._programs: Dict[Tuple[int, ...], "DecodeProgram"] = {}

    # -- auxiliary (outer code) -------------------------------------------------
    def _derive_aux(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR of aux block -> original members."""
        n, aux_count = self.n_blocks, self.aux_count
        take = min(self.q, aux_count)
        if self.version == 1:
            membership = legacy_aux_assignment(n, aux_count, self.q, self.chunk_seed)
            counts = np.array([len(m) for m in membership], dtype=np.int64)
            flat = np.array([i for m in membership for i in m], dtype=np.int64)
            offsets = np.zeros(aux_count + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            return flat, offsets
        outer_seed = derive_seed(self.chunk_seed, "outer-v2")
        keys = gf2.hash_counters(
            outer_seed, np.arange(n * aux_count, dtype=np.uint64)
        ).reshape(n, aux_count)
        if take < aux_count:
            chosen = np.argpartition(keys, take - 1, axis=1)[:, :take]
        else:
            chosen = np.broadcast_to(np.arange(aux_count, dtype=np.int64), (n, aux_count))
        aux_of_pair = chosen.reshape(-1).astype(np.int64)
        orig_of_pair = np.repeat(np.arange(n, dtype=np.int64), take)
        order = np.lexsort((orig_of_pair, aux_of_pair))
        members = orig_of_pair[order]
        counts = np.bincount(aux_of_pair, minlength=aux_count).astype(np.int64)
        offsets = np.zeros(aux_count + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return members, offsets

    def aux_equations(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR of the outer-code constraints: members(j) + composite ``n + j``.

        These equations hold unconditionally (aux = XOR of its members), so
        the decoder includes them from the start — peeling can recover an
        auxiliary block from its members or vice versa.
        """
        if self._aux_eq is None:
            member_counts = self.aux_offsets[1:] - self.aux_offsets[:-1]
            counts = member_counts + 1
            offsets = np.zeros(self.aux_count + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            flat = np.empty(int(offsets[-1]), dtype=np.int64)
            if self.aux_flat.size:
                positions = np.repeat(offsets[:-1] - self.aux_offsets[:-1], member_counts)
                positions += np.arange(self.aux_flat.size, dtype=np.int64)
                flat[positions] = self.aux_flat
            flat[offsets[1:] - 1] = self.n_blocks + np.arange(self.aux_count, dtype=np.int64)
            self._aux_eq = (flat, offsets)
        return self._aux_eq

    # -- check blocks (inner code) ----------------------------------------------
    def _derive_checks(self, start: int, stop: int) -> Tuple[np.ndarray, np.ndarray]:
        """Derive neighbour CSR for check indices [start, stop) in one pass."""
        if self.version == 1:
            flats: List[List[int]] = [
                legacy_check_neighbors(self.composite_count, index, self.chunk_seed, self.rho_cdf)
                for index in range(start, stop)
            ]
            counts = np.array([len(f) for f in flats], dtype=np.int64)
            flat = np.array([v for f in flats for v in f], dtype=np.int64)
            offsets = np.zeros(counts.size + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            return flat, offsets
        indices = np.arange(start, stop, dtype=np.uint64)
        keys = gf2.hash_counters(self._inner_seed, indices)
        uniforms = gf2.to_unit_interval(keys)
        degrees = np.searchsorted(self.rho_cdf, uniforms, side="right") + 1
        degrees = np.clip(degrees, 1, self.composite_count).astype(np.int64)
        total = int(degrees.sum())
        base = np.repeat(keys, degrees)
        draw_offsets = np.zeros(degrees.size + 1, dtype=np.int64)
        np.cumsum(degrees, out=draw_offsets[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(draw_offsets[:-1], degrees)
        draws = (gf2.hash_subcounters(base, within) % np.uint64(self.composite_count)).astype(
            np.int64
        )
        # Deduplicate within each row (set semantics: a neighbour drawn twice
        # still participates once), keeping CSR form.
        rows = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
        order = np.lexsort((draws, rows))
        rows_sorted = rows[order]
        draws_sorted = draws[order]
        first = np.ones(total, dtype=bool)
        first[1:] = (rows_sorted[1:] != rows_sorted[:-1]) | (draws_sorted[1:] != draws_sorted[:-1])
        kept = draws_sorted[first]
        kept_counts = np.bincount(rows_sorted[first], minlength=degrees.size).astype(np.int64)
        offsets = np.zeros(degrees.size + 1, dtype=np.int64)
        np.cumsum(kept_counts, out=offsets[1:])
        return kept, offsets

    def ensure_checks(self, count: int) -> None:
        """Extend the cached check-stream prefix to cover indices [0, count)."""
        have = self._check_offsets.size - 1
        if count <= have:
            return
        flat, offsets = self._derive_checks(have, count)
        self._check_flat = np.concatenate([self._check_flat, flat])
        self._check_offsets = np.concatenate(
            [self._check_offsets, offsets[1:] + self._check_offsets[-1]]
        )

    def check_csr(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """CSR of the first ``count`` check blocks' neighbour sets."""
        self.ensure_checks(count)
        end = self._check_offsets[count]
        return self._check_flat[:end], self._check_offsets[: count + 1]

    def checks_for(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """CSR of the neighbour sets for an arbitrary array of stream indices."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size:
            self.ensure_checks(int(indices.max()) + 1)
        return gf2.csr_take(self._check_flat, self._check_offsets, indices)

    # -- compiled decoding --------------------------------------------------------
    def decode_program(
        self, indices: Tuple[int, ...], residual_limit: int = 8192
    ) -> "DecodeProgram":
        """Compile (and cache) the linear decode map for an available-index set.

        Decoding is GF(2)-linear, so for a fixed graph and a fixed set of
        available check blocks each original block is one fixed XOR of check
        payloads.  The peeling scheduler and the residual eliminator are run
        once *symbolically* — with bit rows tracking which check equations
        combine into each composite — and the result is flattened into a CSR
        "program".  Replaying the program is a single batched XOR-reduce, so
        repeated decodes of the same shape (benchmarks, repair storms,
        retrieve-all paths) skip graph peeling entirely.  When the available
        set cannot determine every original block, the returned (negatively
        cached) program has ``missing > 0`` and must not be replayed.
        """
        if indices in self._programs:
            return self._programs[indices]
        index_array = np.asarray(indices, dtype=np.int64)
        flat, offsets = gf2.concat_csr([self.checks_for(index_array), self.aux_equations()])
        n_equations = offsets.size - 1

        result = gf2.peel(flat, offsets, self.composite_count, record=True)
        residual_vars = np.empty(0, dtype=np.int64)
        residual_flat = np.empty(0, dtype=np.int64)
        residual_offsets = np.zeros(1, dtype=np.int64)
        if not bool(result.known[: self.n_blocks].all()) and (
            self.composite_count <= residual_limit
        ):
            residual_vars, residual_flat, residual_offsets = gf2.compile_residual(
                flat, offsets, self.composite_count, result
            )
        missing = int(self.n_blocks - result.known[: self.n_blocks].sum())

        # An equation's value stops mattering once it has been consumed as a
        # peeling source (unless the residual solver reads it): drop the
        # events that only update dead equations.
        trace = result.trace or []
        use_round = np.full(n_equations, len(trace) + 1, dtype=np.int64)
        for round_index, (_, source_eqs, _, _) in enumerate(trace):
            use_round[source_eqs] = round_index
        keep_always = result.counts > 0  # residual rows
        schedule = []
        events = 0
        for round_index, (targets, source_eqs, ev_eqs, ev_vars) in enumerate(trace):
            if ev_eqs.size:
                keep = keep_always[ev_eqs] | (use_round[ev_eqs] > round_index)
                ev_eqs = ev_eqs[keep]
                ev_vars = ev_vars[keep]
            if ev_eqs.size:
                order = np.argsort(ev_eqs)
                eqs_sorted = ev_eqs[order]
                vars_sorted = ev_vars[order]
                boundary = np.empty(eqs_sorted.size, dtype=bool)
                boundary[0] = True
                np.not_equal(eqs_sorted[1:], eqs_sorted[:-1], out=boundary[1:])
                starts = np.flatnonzero(boundary)
                unique_eqs = eqs_sorted[starts]
                seg_offsets = np.append(starts, eqs_sorted.size)
                events += int(vars_sorted.size)
            else:
                vars_sorted = unique_eqs = np.empty(0, dtype=np.int64)
                seg_offsets = np.zeros(1, dtype=np.int64)
            schedule.append((targets, source_eqs, vars_sorted, unique_eqs, seg_offsets))
        events += int(residual_flat.size)

        program = DecodeProgram(
            missing=missing,
            n_equations=n_equations,
            schedule=schedule,
            residual_vars=residual_vars,
            residual_flat=residual_flat,
            residual_offsets=residual_offsets,
            events=events,
            rounds=len(trace),
        )
        if len(self._programs) >= 8:
            self._programs.pop(next(iter(self._programs)))
        self._programs[indices] = program
        return program


@lru_cache(maxsize=64)
def code_graph(epsilon: float, q: int, n_blocks: int, chunk_seed: int, version: int) -> CodeGraph:
    """The LRU-cached code-structure layer shared by encode/decode/repair."""
    return CodeGraph(epsilon, q, n_blocks, chunk_seed, version)


def clear_code_graph_cache() -> None:
    """Drop cached code graphs (benchmark cold-path measurements)."""
    code_graph.cache_clear()


class OnlineCode(ErasureCode):
    """Rateless online code with deterministic, seed-derived block composition."""

    name = "online"

    #: Systems with at most this many composite blocks fall back to exact
    #: GF(2) elimination when peeling stalls.  Inactivation decoding on the
    #: bit-packed kernel only eliminates the (small) residual system, which is
    #: cheap enough to cover paper-scale chunks (4096 blocks + auxiliaries).
    GAUSSIAN_FALLBACK_LIMIT = 8192

    #: Systems with at most this many composite blocks get the encode-time
    #: guarantee that the full encoded stream determines every original block
    #: (extra check blocks are appended until it does).  At the paper's scale
    #: (4096 blocks per chunk) the asymptotic guarantees of the online code
    #: apply and no such check is performed.
    SMALL_SYSTEM_GUARANTEE = 640

    def __init__(
        self,
        parameters: Optional[OnlineCodeParameters] = None,
        seed: int = 0,
        stream_version: int = STREAM_VERSION,
    ) -> None:
        self.parameters = parameters or OnlineCodeParameters()
        self.seed = int(seed)
        if stream_version not in (1, STREAM_VERSION):
            raise ValueError(f"unsupported stream version {stream_version}")
        self.stream_version = int(stream_version)
        #: Peeling statistics of the most recent decode (rounds, events);
        #: exposed for the determinism fingerprints and perf diagnostics.
        self.last_decode_stats: Dict[str, int] = {}

    # -- graph access -----------------------------------------------------------
    def _graph(self, n_blocks: int, chunk_seed: int, version: Optional[int] = None) -> CodeGraph:
        return code_graph(
            self.parameters.epsilon,
            self.parameters.q,
            n_blocks,
            chunk_seed,
            self.stream_version if version is None else version,
        )

    @staticmethod
    def _graph_for_chunk(chunk: EncodedChunk, fallback: OnlineCodeParameters) -> CodeGraph:
        """Graph for an encoded chunk, honouring its recorded stream metadata."""
        return code_graph(
            float(chunk.metadata.get("epsilon", fallback.epsilon)),
            int(chunk.metadata.get("q", fallback.q)),
            chunk.n_blocks,
            int(chunk.metadata["chunk_seed"]),
            int(chunk.metadata.get("stream_version", 1)),
        )

    # -- composite construction -------------------------------------------------
    @staticmethod
    def _composite_words(graph: CodeGraph, matrix: np.ndarray) -> np.ndarray:
        """Stack originals + aux blocks as packed uint64 words, vectorized."""
        words = gf2.words_for_bytes(matrix.shape[1])
        composites = np.zeros((graph.composite_count, words), dtype=np.uint64)
        composites[: graph.n_blocks] = gf2.pack_matrix(matrix)
        gf2.xor_reduce_segments(
            composites[: graph.n_blocks],
            graph.aux_flat,
            graph.aux_offsets,
            out=composites[graph.n_blocks :],
        )
        return composites

    # -- decodability (symbolic) ------------------------------------------------
    def _decodable_from_all(self, graph: CodeGraph, check_count: int) -> bool:
        """Would the decoder succeed given every encoded block produced so far?

        Vectorized graph peeling is tried first; when it stalls (and the
        system is small enough for the decoder's exact GF(2) fallback) the
        small residual system is eliminated exactly (inactivation).  The
        answer is memoised on the cached graph, so re-encoding another chunk
        with the same shape skips the check entirely.
        """
        cached = graph.decodable_cache.get(check_count)
        if cached is not None:
            return cached
        flat, offsets = gf2.concat_csr(
            [graph.check_csr(check_count), graph.aux_equations()]
        )
        result = gf2.peel(flat, offsets, graph.composite_count)
        if not bool(result.known[: graph.n_blocks].all()) and (
            graph.composite_count <= self.GAUSSIAN_FALLBACK_LIMIT
        ):
            gf2.solve_residual(flat, offsets, graph.composite_count, result)
        decodable = bool(result.known[: graph.n_blocks].all())
        graph.decodable_cache[check_count] = decodable
        return decodable

    def default_output_blocks(self, n_blocks: int) -> int:
        """Check blocks produced when the caller does not ask for a count."""
        params = self.parameters
        composite = n_blocks + params.auxiliary_count(n_blocks)
        return int(math.ceil(params.quality * (1.0 + params.epsilon) * composite)) + params.margin

    # -- encode -------------------------------------------------------------------
    def encode(self, data: bytes, n_blocks: int, output_blocks: Optional[int] = None) -> EncodedChunk:
        matrix = split_into_matrix(data, n_blocks)
        block_size = matrix.shape[1]
        chunk_seed = derive_seed(self.seed, "chunk", len(data), n_blocks)
        graph = self._graph(n_blocks, chunk_seed)
        composites = self._composite_words(graph, matrix)

        if output_blocks is None:
            output_blocks = self.default_output_blocks(n_blocks)
        if output_blocks < 1:
            raise ValueError("output_blocks must be >= 1")

        flat, offsets = graph.check_csr(output_blocks)
        check_words = gf2.xor_reduce_segments(composites, flat, offsets)

        # Rateless small-system guarantee: for chunks split into few blocks the
        # nominal (1 + epsilon) overhead gives no probabilistic guarantee, so
        # keep appending check blocks (continuing the same stream, in batches)
        # until the full set of encoded blocks determines every original block.
        if graph.composite_count <= self.SMALL_SYSTEM_GUARANTEE:
            cap = output_blocks + 8 * graph.composite_count + 16
            total = output_blocks
            extra_words: List[np.ndarray] = []
            while total < cap and not self._decodable_from_all(graph, total):
                batch = min(max(8, graph.composite_count // 8), cap - total)
                graph.ensure_checks(total + batch)
                new_flat, new_offsets = gf2.csr_take(
                    graph._check_flat,
                    graph._check_offsets,
                    np.arange(total, total + batch, dtype=np.int64),
                )
                extra_words.append(gf2.xor_reduce_segments(composites, new_flat, new_offsets))
                total += batch
            if extra_words:
                check_words = np.concatenate([check_words] + extra_words, axis=0)
            output_blocks = total

        payload_bytes = gf2.unpack_matrix(check_words, block_size)
        encoded = [
            EncodedBlock(index=index, data=payload_bytes[index].tobytes())
            for index in range(output_blocks)
        ]
        return EncodedChunk(
            code_name=self.name,
            original_size=len(data),
            block_size=block_size,
            n_blocks=n_blocks,
            blocks=encoded,
            metadata={
                "chunk_seed": chunk_seed,
                "output_blocks": output_blocks,
                "epsilon": self.parameters.epsilon,
                "q": self.parameters.q,
                "stream_version": self.stream_version,
            },
        )

    def generate_additional_blocks(self, chunk: EncodedChunk, data: bytes, count: int) -> List[EncodedBlock]:
        """Produce ``count`` *new* check blocks for an already-encoded chunk.

        This is the rateless property the recovery pipeline relies on: new
        encoded blocks can be created for a chunk without touching the blocks
        that already exist (their indices simply continue the stream).  The
        cached code graph means only the *new* stream indices are derived —
        the encoder's graph and the composite matrix are not rebuilt from
        scratch beyond one pass over the chunk payload.
        """
        if count < 1:
            return []
        graph = self._graph_for_chunk(chunk, self.parameters)
        matrix = split_into_matrix(data, chunk.n_blocks)
        composites = self._composite_words(graph, matrix)
        start = int(chunk.metadata["output_blocks"])
        flat, offsets = graph.checks_for(np.arange(start, start + count, dtype=np.int64))
        words = gf2.xor_reduce_segments(composites, flat, offsets)
        payload_bytes = gf2.unpack_matrix(words, chunk.block_size)
        return [
            EncodedBlock(index=start + offset, data=payload_bytes[offset].tobytes())
            for offset in range(count)
        ]

    # -- decode -------------------------------------------------------------------
    def decode(self, chunk: EncodedChunk, available: Dict[int, bytes]) -> bytes:
        graph = self._graph_for_chunk(chunk, self.parameters)
        n_blocks = chunk.n_blocks
        total_outputs = int(chunk.metadata["output_blocks"])
        block_size = chunk.block_size

        indices = sorted(available)
        for index in indices:
            if not 0 <= index < total_outputs:
                raise DecodingError(f"unknown encoded block index {index}")

        # Decoding is GF(2)-linear: the cached program maps check payloads to
        # originals in one batched XOR-reduce (peeling + residual elimination
        # ran once, symbolically, when the program was compiled).
        program = graph.decode_program(tuple(indices), self.GAUSSIAN_FALLBACK_LIMIT)
        self.last_decode_stats = {"rounds": program.rounds, "events": program.events}
        if program.missing:
            epsilon = float(chunk.metadata.get("epsilon", self.parameters.epsilon))
            raise DecodingError(
                f"online code peeling stalled: {program.missing}/{n_blocks} original "
                f"blocks unrecovered from {len(available)} check blocks "
                f"(epsilon={epsilon})"
            )

        values = gf2.pack_rows([available[i] for i in indices], block_size)
        solution = program.run(values, graph.composite_count)
        originals = gf2.unpack_matrix(solution[:n_blocks], block_size)
        return originals.reshape(-1)[: chunk.original_size].tobytes()

    # -- metadata -------------------------------------------------------------------
    def spec(self, n_blocks: int) -> CodeSpec:
        output = self.default_output_blocks(n_blocks)
        composite = n_blocks + self.parameters.auxiliary_count(n_blocks)
        required = int(math.ceil((1.0 + self.parameters.epsilon) * composite))
        required = min(required, output)
        return CodeSpec(
            name=self.name,
            input_blocks=n_blocks,
            output_blocks=output,
            loss_tolerance=max(0, output - required),
            size_overhead=(output / n_blocks - 1.0) if n_blocks else 0.0,
        )
