"""Maymounkov's rateless *online code* (the paper's preferred erasure code).

The online code (Section 2.2 of the paper, following Maymounkov's TR2003-883)
is a sub-optimal rateless erasure code built from two layers:

* the **outer code** produces ``0.55 * q * epsilon * n`` auxiliary blocks; each
  original block is XORed into ``q`` pseudo-randomly chosen auxiliary blocks;
* the **inner code** produces an unbounded stream of *check blocks*; each check
  block XORs ``d`` composite blocks (originals + auxiliaries), where ``d`` is
  drawn from the online-code degree distribution parameterised by ``epsilon``.

Only the check blocks are stored.  Decoding is the classic belief-propagation
("peeling") process: a check block whose neighbourhood contains exactly one
unknown composite recovers it, auxiliary-block constraints are peeled the same
way, and the process repeats until all original blocks are known.  Because the
stream is rateless, losing encoded blocks never requires re-encoding: new check
blocks can always be generated — the property the paper exploits to "simply
drop an encoded chunk on a neighbor node and create another one at a different
location" (Section 4.4).

For small chunks (few blocks) belief propagation needs noticeably more than
``(1 + epsilon) * n`` check blocks to start; the implementation therefore also
offers an exact GF(2) Gaussian-elimination fallback that is used automatically
for small systems so that unit tests decode deterministically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.erasure.base import (
    CodeSpec,
    DecodingError,
    EncodedBlock,
    EncodedChunk,
    ErasureCode,
    join_blocks,
    split_into_blocks,
)
from repro.sim.rng import derive_seed


@dataclass(frozen=True)
class OnlineCodeParameters:
    """Tuning parameters of the online code.

    The paper uses ``q = 3`` and ``epsilon = 0.01`` (Section 6.2).  ``quality``
    multiplies the nominal ``(1 + epsilon) * n'`` check-block count when the
    caller does not specify an explicit output size, and ``margin`` adds a
    small constant number of further check blocks.  The defaults keep the
    storage overhead for a paper-sized chunk (4096 blocks) at ~3-4 %, matching
    Table 2, while giving small chunks enough extra equations that decoding
    from the full block set virtually never fails.
    """

    epsilon: float = 0.01
    q: int = 3
    quality: float = 1.0
    margin: int = 16

    def __post_init__(self) -> None:
        if not 0 < self.epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if self.q < 1:
            raise ValueError("q must be >= 1")
        if self.quality < 1.0:
            raise ValueError("quality must be >= 1.0")
        if self.margin < 0:
            raise ValueError("margin must be non-negative")

    @property
    def max_degree(self) -> int:
        """F, the maximum check-block degree."""
        return max(2, int(math.ceil(math.log(self.epsilon**2 / 4.0) / math.log(1.0 - self.epsilon / 2.0))))

    def degree_distribution(self) -> np.ndarray:
        """Probabilities rho_1..rho_F of the check-block degree distribution."""
        big_f = self.max_degree
        rho = np.zeros(big_f, dtype=float)
        rho[0] = 1.0 - (1.0 + 1.0 / big_f) / (1.0 + self.epsilon)
        for degree in range(2, big_f + 1):
            rho[degree - 1] = (1.0 - rho[0]) * big_f / ((big_f - 1) * degree * (degree - 1))
        rho = np.clip(rho, 0.0, None)
        rho /= rho.sum()
        return rho

    def auxiliary_count(self, n_blocks: int) -> int:
        """Number of auxiliary blocks produced by the outer code."""
        return max(1, int(math.ceil(0.55 * self.q * self.epsilon * n_blocks)))


class OnlineCode(ErasureCode):
    """Rateless online code with deterministic, seed-derived block composition."""

    name = "online"

    #: Systems with at most this many composite blocks fall back to exact
    #: GF(2) elimination when peeling stalls (keeps small tests deterministic).
    GAUSSIAN_FALLBACK_LIMIT = 2048

    #: Systems with at most this many composite blocks get the encode-time
    #: guarantee that the full encoded stream determines every original block
    #: (extra check blocks are appended until it does).  At the paper's scale
    #: (4096 blocks per chunk) the asymptotic guarantees of the online code
    #: apply and no such check is performed.
    SMALL_SYSTEM_GUARANTEE = 640

    def __init__(self, parameters: Optional[OnlineCodeParameters] = None, seed: int = 0) -> None:
        self.parameters = parameters or OnlineCodeParameters()
        self.seed = int(seed)

    # -- graph construction -----------------------------------------------------
    def _aux_assignment(self, n_blocks: int, chunk_seed: int) -> List[List[int]]:
        """For each auxiliary block, the original-block indices XORed into it."""
        params = self.parameters
        aux_count = params.auxiliary_count(n_blocks)
        rng = np.random.default_rng(derive_seed(chunk_seed, "outer"))
        membership: List[List[int]] = [[] for _ in range(aux_count)]
        for original in range(n_blocks):
            chosen = rng.choice(aux_count, size=min(params.q, aux_count), replace=False)
            for aux_index in chosen:
                membership[int(aux_index)].append(original)
        return membership

    def _check_neighbors(
        self, composite_count: int, check_index: int, chunk_seed: int, rho_cdf: np.ndarray
    ) -> List[int]:
        """Composite-block indices XORed into check block ``check_index``.

        Every check block's composition is derived solely from the chunk seed
        and its own index (degree via inverse-CDF sampling of the online-code
        degree distribution, then a uniform neighbour set), so any block of the
        unbounded stream can be regenerated independently -- the property that
        makes the code rateless and keeps encoder and decoder in agreement.
        """
        rng = np.random.default_rng(derive_seed(chunk_seed, "inner", check_index))
        degree = int(np.searchsorted(rho_cdf, rng.random(), side="right")) + 1
        degree = min(max(1, degree), composite_count)
        neighbors = rng.choice(composite_count, size=degree, replace=False)
        return [int(v) for v in neighbors]

    def _rho_cdf(self) -> np.ndarray:
        """Cumulative degree distribution used by inverse-CDF sampling."""
        return np.cumsum(self.parameters.degree_distribution())

    @staticmethod
    def _graph_peel_succeeds(
        n_blocks: int,
        composite_count: int,
        aux_membership: Sequence[Sequence[int]],
        neighbor_sets: Sequence[Sequence[int]],
    ) -> bool:
        """Symbolic belief-propagation check (no payloads): would peeling finish?"""
        known = [False] * composite_count
        equations: List[set] = [set(neighbors) for neighbors in neighbor_sets]
        aux_added = [False] * len(aux_membership)
        progress = True
        while progress:
            progress = False
            for neighbors in equations:
                resolved = [n for n in neighbors if known[n]]
                for n in resolved:
                    neighbors.discard(n)
                if len(neighbors) == 1:
                    target = neighbors.pop()
                    if not known[target]:
                        known[target] = True
                        progress = True
            for aux_offset in range(len(aux_membership)):
                if not aux_added[aux_offset] and known[n_blocks + aux_offset]:
                    equations.append(set(aux_membership[aux_offset]) | {n_blocks + aux_offset})
                    aux_added[aux_offset] = True
        return all(known[:n_blocks])

    def _decodable_from_all(
        self,
        n_blocks: int,
        composite_count: int,
        aux_membership: Sequence[Sequence[int]],
        neighbor_sets: Sequence[Sequence[int]],
    ) -> bool:
        """Would the decoder succeed given every encoded block produced so far?

        Cheap graph peeling is tried first; only when it stalls (and the system
        is small enough for the decoder's exact GF(2) fallback) is the rank
        test run.
        """
        if self._graph_peel_succeeds(n_blocks, composite_count, aux_membership, neighbor_sets):
            return True
        if composite_count <= self.GAUSSIAN_FALLBACK_LIMIT:
            return self._stream_determines_originals(
                n_blocks, composite_count, aux_membership, neighbor_sets
            )
        return False

    @staticmethod
    def _stream_determines_originals(
        n_blocks: int,
        composite_count: int,
        aux_membership: Sequence[Sequence[int]],
        neighbor_sets: Sequence[Sequence[int]],
    ) -> bool:
        """GF(2) rank test: do the check + auxiliary equations pin down every original?"""
        rows: List[np.ndarray] = []
        for neighbors in neighbor_sets:
            row = np.zeros(composite_count, dtype=np.uint8)
            for neighbor in neighbors:
                row[neighbor] ^= 1
            rows.append(row)
        for aux_offset, members in enumerate(aux_membership):
            row = np.zeros(composite_count, dtype=np.uint8)
            row[n_blocks + aux_offset] ^= 1
            for member in members:
                row[member] ^= 1
            rows.append(row)
        matrix = np.vstack(rows)
        solvable = np.zeros(composite_count, dtype=bool)
        pivot_row = 0
        for column in range(composite_count):
            candidates = np.nonzero(matrix[pivot_row:, column])[0]
            if candidates.size == 0:
                continue
            chosen = pivot_row + int(candidates[0])
            if chosen != pivot_row:
                matrix[[pivot_row, chosen]] = matrix[[chosen, pivot_row]]
            for row_index in np.nonzero(matrix[:, column])[0]:
                if row_index != pivot_row:
                    matrix[row_index] ^= matrix[pivot_row]
            pivot_row += 1
            if pivot_row == matrix.shape[0]:
                break
        # After reduction, an original column is determined iff some row has
        # its only 1 in that column.
        row_weights = matrix.sum(axis=1)
        for row_index in np.nonzero(row_weights == 1)[0]:
            solvable[int(np.nonzero(matrix[row_index])[0][0])] = True
        return bool(solvable[:n_blocks].all())

    def default_output_blocks(self, n_blocks: int) -> int:
        """Check blocks produced when the caller does not ask for a count."""
        params = self.parameters
        composite = n_blocks + params.auxiliary_count(n_blocks)
        return int(math.ceil(params.quality * (1.0 + params.epsilon) * composite)) + params.margin

    # -- encode -------------------------------------------------------------------
    def encode(self, data: bytes, n_blocks: int, output_blocks: Optional[int] = None) -> EncodedChunk:
        originals = split_into_blocks(data, n_blocks)
        block_size = len(originals[0]) if originals else 0
        chunk_seed = derive_seed(self.seed, "chunk", len(data), n_blocks)
        aux_membership = self._aux_assignment(n_blocks, chunk_seed)
        aux_blocks: List[np.ndarray] = []
        for members in aux_membership:
            value = np.zeros(block_size, dtype=np.uint8)
            for original in members:
                np.bitwise_xor(value, originals[original], out=value)
            aux_blocks.append(value)
        composites: List[np.ndarray] = list(originals) + aux_blocks
        composite_count = len(composites)

        if output_blocks is None:
            output_blocks = self.default_output_blocks(n_blocks)
        if output_blocks < 1:
            raise ValueError("output_blocks must be >= 1")
        rho_cdf = self._rho_cdf()

        encoded: List[EncodedBlock] = []
        neighbor_sets: List[List[int]] = []
        for check_index in range(output_blocks):
            neighbors = self._check_neighbors(composite_count, check_index, chunk_seed, rho_cdf)
            value = np.zeros(block_size, dtype=np.uint8)
            for neighbor in neighbors:
                np.bitwise_xor(value, composites[neighbor], out=value)
            encoded.append(EncodedBlock(index=check_index, data=value.tobytes()))
            neighbor_sets.append(neighbors)

        # Rateless small-system guarantee: for chunks split into few blocks the
        # nominal (1 + epsilon) overhead gives no probabilistic guarantee, so
        # keep appending check blocks (continuing the same stream) until the
        # full set of encoded blocks determines every original block.
        if composite_count <= self.SMALL_SYSTEM_GUARANTEE:
            extra_cap = 8 * composite_count + 16
            while len(encoded) < output_blocks + extra_cap and not self._decodable_from_all(
                n_blocks, composite_count, aux_membership, neighbor_sets
            ):
                check_index = len(encoded)
                neighbors = self._check_neighbors(composite_count, check_index, chunk_seed, rho_cdf)
                value = np.zeros(block_size, dtype=np.uint8)
                for neighbor in neighbors:
                    np.bitwise_xor(value, composites[neighbor], out=value)
                encoded.append(EncodedBlock(index=check_index, data=value.tobytes()))
                neighbor_sets.append(neighbors)
            output_blocks = len(encoded)

        return EncodedChunk(
            code_name=self.name,
            original_size=len(data),
            block_size=block_size,
            n_blocks=n_blocks,
            blocks=encoded,
            metadata={
                "chunk_seed": chunk_seed,
                "output_blocks": output_blocks,
                "epsilon": self.parameters.epsilon,
                "q": self.parameters.q,
            },
        )

    def generate_additional_blocks(self, chunk: EncodedChunk, data: bytes, count: int) -> List[EncodedBlock]:
        """Produce ``count`` *new* check blocks for an already-encoded chunk.

        This is the rateless property the recovery pipeline relies on: new
        encoded blocks can be created for a chunk without touching the blocks
        that already exist (their indices simply continue the stream).
        """
        if count < 1:
            return []
        start = int(chunk.metadata["output_blocks"])
        extended = self.encode(data, chunk.n_blocks, output_blocks=start + count)
        return extended.blocks[start:]

    # -- decode -------------------------------------------------------------------
    def decode(self, chunk: EncodedChunk, available: Dict[int, bytes]) -> bytes:
        chunk_seed = int(chunk.metadata["chunk_seed"])
        n_blocks = chunk.n_blocks
        params_eps = float(chunk.metadata.get("epsilon", self.parameters.epsilon))
        aux_membership = self._aux_assignment(n_blocks, chunk_seed)
        composite_count = n_blocks + len(aux_membership)
        total_outputs = int(chunk.metadata["output_blocks"])
        rho_cdf = self._rho_cdf()

        block_size = chunk.block_size
        known: List[Optional[np.ndarray]] = [None] * composite_count

        # Equations: each available check block, plus (lazily) each auxiliary
        # block constraint once the auxiliary value itself is known.
        equations: List[Tuple[set, np.ndarray]] = []
        for index, payload in available.items():
            if not 0 <= index < total_outputs:
                raise DecodingError(f"unknown encoded block index {index}")
            neighbors = set(self._check_neighbors(composite_count, index, chunk_seed, rho_cdf))
            value = np.frombuffer(payload, dtype=np.uint8).copy()
            equations.append((neighbors, value))

        aux_equations_added = [False] * len(aux_membership)

        def add_aux_equation(aux_offset: int) -> None:
            if aux_equations_added[aux_offset]:
                return
            aux_composite = n_blocks + aux_offset
            if known[aux_composite] is None:
                return
            members = set(aux_membership[aux_offset])
            equations.append((members | {aux_composite}, np.zeros(block_size, dtype=np.uint8)))
            aux_equations_added[aux_offset] = True

        # Peeling loop.
        progress = True
        while progress:
            progress = False
            for neighbors, value in equations:
                # Reduce the equation by already-known composites.
                resolved = [n for n in neighbors if known[n] is not None]
                for n in resolved:
                    np.bitwise_xor(value, known[n], out=value)
                    neighbors.discard(n)
                if len(neighbors) == 1:
                    target = neighbors.pop()
                    known[target] = value.copy()
                    progress = True
                    if target >= n_blocks:
                        add_aux_equation(target - n_blocks)
            # Auxiliary constraints may have become useful even without new
            # recoveries from check blocks (e.g. aux known from the start).
            for aux_offset in range(len(aux_membership)):
                add_aux_equation(aux_offset)

        if any(known[i] is None for i in range(n_blocks)):
            if composite_count <= self.GAUSSIAN_FALLBACK_LIMIT:
                self._gaussian_fallback(chunk, available, known, aux_membership, chunk_seed, rho_cdf)
            if any(known[i] is None for i in range(n_blocks)):
                missing = sum(1 for i in range(n_blocks) if known[i] is None)
                raise DecodingError(
                    f"online code peeling stalled: {missing}/{n_blocks} original blocks "
                    f"unrecovered from {len(available)} check blocks (epsilon={params_eps})"
                )

        return join_blocks([known[i] for i in range(n_blocks)], chunk.original_size)  # type: ignore[list-item]

    def _gaussian_fallback(
        self,
        chunk: EncodedChunk,
        available: Dict[int, bytes],
        known: List[Optional[np.ndarray]],
        aux_membership: Sequence[Sequence[int]],
        chunk_seed: int,
        rho_cdf: np.ndarray,
    ) -> None:
        """Exact GF(2) elimination over all equations (small systems only)."""
        n_blocks = chunk.n_blocks
        composite_count = n_blocks + len(aux_membership)
        block_size = chunk.block_size
        total_outputs = int(chunk.metadata["output_blocks"])

        rows: List[np.ndarray] = []
        values: List[np.ndarray] = []
        for index, payload in available.items():
            row = np.zeros(composite_count, dtype=np.uint8)
            for neighbor in self._check_neighbors(composite_count, index, chunk_seed, rho_cdf):
                row[neighbor] ^= 1
            rows.append(row)
            values.append(np.frombuffer(payload, dtype=np.uint8).copy())
        for aux_offset, members in enumerate(aux_membership):
            row = np.zeros(composite_count, dtype=np.uint8)
            row[n_blocks + aux_offset] ^= 1
            for member in members:
                row[member] ^= 1
            rows.append(row)
            values.append(np.zeros(block_size, dtype=np.uint8))
        if not rows:
            return

        matrix = np.vstack(rows)
        payload = np.vstack(values) if block_size else np.zeros((len(rows), 0), dtype=np.uint8)

        pivot_of_column: Dict[int, int] = {}
        pivot_row = 0
        for column in range(composite_count):
            candidates = np.nonzero(matrix[pivot_row:, column])[0]
            if candidates.size == 0:
                continue
            chosen = pivot_row + int(candidates[0])
            if chosen != pivot_row:
                matrix[[pivot_row, chosen]] = matrix[[chosen, pivot_row]]
                payload[[pivot_row, chosen]] = payload[[chosen, pivot_row]]
            others = np.nonzero(matrix[:, column])[0]
            for row_index in others:
                if row_index != pivot_row:
                    matrix[row_index] ^= matrix[pivot_row]
                    payload[row_index] ^= payload[pivot_row]
            pivot_of_column[column] = pivot_row
            pivot_row += 1
            if pivot_row == matrix.shape[0]:
                break

        for column, row_index in pivot_of_column.items():
            # After full reduction the pivot row expresses exactly one composite.
            if int(matrix[row_index].sum()) == 1:
                known[column] = payload[row_index].copy()

    # -- metadata -------------------------------------------------------------------
    def spec(self, n_blocks: int) -> CodeSpec:
        output = self.default_output_blocks(n_blocks)
        composite = n_blocks + self.parameters.auxiliary_count(n_blocks)
        required = int(math.ceil((1.0 + self.parameters.epsilon) * composite))
        required = min(required, output)
        return CodeSpec(
            name=self.name,
            input_blocks=n_blocks,
            output_blocks=output,
            loss_tolerance=max(0, output - required),
            size_overhead=(output / n_blocks - 1.0) if n_blocks else 0.0,
        )
