"""The NULL code: a plain copy, used as the no-redundancy baseline in Table 2."""

from __future__ import annotations

from typing import Dict

from repro.erasure.base import (
    CodeSpec,
    DecodingError,
    EncodedBlock,
    EncodedChunk,
    ErasureCode,
    join_blocks,
    split_into_blocks,
)


class NullCode(ErasureCode):
    """Splits the chunk into blocks and stores them unmodified.

    Every block is required for decoding, so the code tolerates zero losses.
    It exists to give the coding-performance experiment its baseline and to
    model the "no error code" configuration of the availability experiment.
    """

    name = "null"

    def encode(self, data: bytes, n_blocks: int) -> EncodedChunk:
        blocks = split_into_blocks(data, n_blocks)
        encoded = [EncodedBlock(index=i, data=block.tobytes()) for i, block in enumerate(blocks)]
        return EncodedChunk(
            code_name=self.name,
            original_size=len(data),
            block_size=len(blocks[0]) if blocks else 0,
            n_blocks=n_blocks,
            blocks=encoded,
        )

    def decode(self, chunk: EncodedChunk, available: Dict[int, bytes]) -> bytes:
        missing = [index for index in range(chunk.n_blocks) if index not in available]
        if missing:
            raise DecodingError(f"null code cannot tolerate losses; missing blocks {missing}")
        ordered = [available[index] for index in range(chunk.n_blocks)]
        return join_blocks([memoryview_to_array(block) for block in ordered], chunk.original_size)

    def spec(self, n_blocks: int) -> CodeSpec:
        return CodeSpec(
            name=self.name,
            input_blocks=n_blocks,
            output_blocks=n_blocks,
            loss_tolerance=0,
            size_overhead=0.0,
        )


def memoryview_to_array(block: bytes):
    """Return the block as a uint8 NumPy array (cheap view when possible)."""
    import numpy as np

    return np.frombuffer(block, dtype=np.uint8)
