"""Multicast-based replica dissemination (Bullet + RanSub).

Section 4.4.1 of the paper replaces the usual primary-creates-replicas scheme
with a multicast push: once the k replica holders of an encoded chunk are
known, a locality-aware overlay tree is built from the source to those
holders (children are chosen greedily from the proximity-aware Pastry routing
table) and the Bullet algorithm disseminates the chunk's packets down the
tree, with nodes also pulling missing packets from peers they learn about
through RanSub epochs.

* :mod:`repro.multicast.ransub` -- the epoch-based distribute/collect random
  subset protocol;
* :mod:`repro.multicast.tree` -- tree construction (fixed binary trees for the
  paper's experiment, locality-aware trees from the overlay);
* :mod:`repro.multicast.bullet` -- the packet dissemination session and the
  per-epoch statistics reported in Figures 11 and 12.
"""

from repro.multicast.ransub import RanSubProtocol, RanSubView
from repro.multicast.tree import MulticastTree, TreeNode, build_binary_tree, build_locality_tree
from repro.multicast.bullet import BulletConfig, BulletSession, EpochStats
from repro.multicast.replication import MulticastReplicator, ReplicationReport

__all__ = [
    "RanSubProtocol",
    "RanSubView",
    "MulticastTree",
    "TreeNode",
    "build_binary_tree",
    "build_locality_tree",
    "BulletConfig",
    "BulletSession",
    "EpochStats",
    "MulticastReplicator",
    "ReplicationReport",
]
