"""Bullet-style packet dissemination over a multicast tree.

Bullet (Kostic et al., SOSP 2003) pushes data down a tree while letting every
vertex also *pull* missing packets from peers it learns about through RanSub,
so that bandwidth bottlenecks high in the tree do not starve whole subtrees.
The reproduction models dissemination in epochs:

1. the RanSub protocol refreshes every vertex's random peer view;
2. every vertex receives up to ``link_capacity`` packets it is missing from
   its parent (the tree push);
3. every vertex additionally pulls up to ``peer_capacity`` missing packets
   from each peer in its RanSub view that holds packets it lacks, subject to
   an overall ``download_capacity`` per epoch (the mesh recovery).

The experiment of Section 6.3 uses a 63-node binary tree with the source at
the root, 32 leaf receivers and a chunk split into 1000 packets, sweeping the
RanSub size from 3 % to 16 % of the tree; :class:`BulletSession` records the
per-epoch minimum / average / maximum packets per node needed for Figures 11
and 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.multicast.ransub import RanSubProtocol, RanSubView
from repro.multicast.tree import MulticastTree, TreeNode


@dataclass(frozen=True)
class BulletConfig:
    """Tunables of a dissemination session."""

    #: Number of packets the chunk is divided into (paper: 1000).
    total_packets: int = 1000
    #: RanSub view size as a fraction of the tree population (paper: 3 %-16 %).
    ransub_fraction: float = 0.16
    #: Packets a parent can push to each child per epoch.
    link_capacity: int = 10
    #: Packets that can be pulled from one mesh peer per epoch.
    peer_capacity: int = 5
    #: Total packets a vertex can download per epoch (push + pull combined).
    download_capacity: int = 25
    #: Hard stop on epochs even if dissemination has not completed.
    max_epochs: int = 2000

    def __post_init__(self) -> None:
        if self.total_packets < 1:
            raise ValueError("total_packets must be >= 1")
        if not 0.0 < self.ransub_fraction <= 1.0:
            raise ValueError("ransub_fraction must be in (0, 1]")
        if self.link_capacity < 0 or self.peer_capacity < 0 or self.download_capacity < 1:
            raise ValueError("capacities must be positive")
        if self.max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")


@dataclass(frozen=True)
class EpochStats:
    """Per-epoch packet counts across the non-source vertices."""

    epoch: int
    minimum: float
    average: float
    maximum: float
    complete_leaves: int


class BulletSession:
    """One replica-dissemination run over a given tree."""

    def __init__(
        self,
        tree: MulticastTree,
        config: Optional[BulletConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.tree = tree
        self.config = config or BulletConfig()
        self.rng = rng or np.random.default_rng(0)
        subset_size = max(1, int(round(self.config.ransub_fraction * len(tree))))
        self.ransub = RanSubProtocol(tree, subset_size=subset_size, rng=self.rng)
        #: Packets held per vertex label (the root/source starts with all).
        self.packets: Dict[int, Set[int]] = {
            node.label: set() for node in tree.nodes()
        }
        self.packets[tree.root.label] = set(range(self.config.total_packets))
        self.history: List[EpochStats] = []

    # -- helpers -----------------------------------------------------------------
    def _missing(self, label: int) -> Set[int]:
        return set(range(self.config.total_packets)) - self.packets[label]

    def _transfer(self, source_label: int, dest_label: int, budget: int) -> int:
        """Move up to ``budget`` packets the destination lacks; returns how many."""
        if budget <= 0:
            return 0
        candidates = list(self.packets[source_label] - self.packets[dest_label])
        if not candidates:
            return 0
        if len(candidates) > budget:
            picks = self.rng.choice(len(candidates), size=budget, replace=False)
            chosen = [candidates[int(index)] for index in picks]
        else:
            chosen = candidates
        self.packets[dest_label].update(chosen)
        return len(chosen)

    def node_packet_count(self, label: int) -> int:
        """Packets currently held by a vertex."""
        return len(self.packets[label])

    def leaves_complete(self) -> int:
        """Number of leaf vertices holding the full chunk."""
        return sum(
            1
            for leaf in self.tree.leaves()
            if len(self.packets[leaf.label]) >= self.config.total_packets
        )

    def is_complete(self) -> bool:
        """Whether every leaf (replica recipient) holds the full chunk."""
        return self.leaves_complete() == len(self.tree.leaves())

    # -- epoch loop ----------------------------------------------------------------
    def run_epoch(self) -> EpochStats:
        """Run one RanSub refresh plus one round of push/pull transfers."""
        views: Dict[int, RanSubView] = self.ransub.run_epoch(self.node_packet_count)

        # Process vertices in breadth-first order so data flows down the tree
        # within an epoch the same way Bullet's recursive push does.
        order: List[TreeNode] = []
        frontier = [self.tree.root]
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            frontier.extend(node.children)

        for node in order:
            if node.is_root:
                continue
            budget = self.config.download_capacity
            # Tree push from the parent.
            assert node.parent is not None
            received = self._transfer(
                node.parent.label, node.label, min(budget, self.config.link_capacity)
            )
            budget -= received
            # Mesh pulls from RanSub peers that hold something we lack.
            view = views.get(node.label)
            if view is not None and budget > 0:
                peers = [
                    member
                    for member in view.members
                    if member.label != node.label and member.packets_held > 0
                ]
                # Prefer peers advertising more data (Bullet picks peers whose
                # content overlaps least with what the receiver already has;
                # advertised volume is the available proxy).
                peers.sort(key=lambda member: -member.packets_held)
                for member in peers:
                    if budget <= 0:
                        break
                    pulled = self._transfer(
                        member.label, node.label, min(budget, self.config.peer_capacity)
                    )
                    budget -= pulled

        counts = np.asarray(
            [len(self.packets[node.label]) for node in self.tree.nodes() if not node.is_root],
            dtype=float,
        )
        stats = EpochStats(
            epoch=len(self.history) + 1,
            minimum=float(counts.min()) if counts.size else 0.0,
            average=float(counts.mean()) if counts.size else 0.0,
            maximum=float(counts.max()) if counts.size else 0.0,
            complete_leaves=self.leaves_complete(),
        )
        self.history.append(stats)
        return stats

    def run(self, until_complete: bool = True, epochs: Optional[int] = None) -> List[EpochStats]:
        """Run epochs until every leaf holds the chunk (or a fixed epoch count)."""
        limit = epochs if epochs is not None else self.config.max_epochs
        for _ in range(limit):
            self.run_epoch()
            if until_complete and epochs is None and self.is_complete():
                break
        return self.history

    # -- summaries -------------------------------------------------------------------
    def completion_epoch(self) -> Optional[int]:
        """First epoch at which every leaf held the full chunk, if reached."""
        leaf_count = len(self.tree.leaves())
        for stats in self.history:
            if stats.complete_leaves == leaf_count:
                return stats.epoch
        return None

    def average_series(self) -> List[float]:
        """Average packets per node after each epoch (Figure 11 series)."""
        return [stats.average for stats in self.history]
