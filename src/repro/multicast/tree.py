"""Multicast tree construction.

Three constructors are provided:

* :func:`build_binary_tree` -- the fixed complete binary tree used by the
  paper's multicast experiments (height 5, 63 nodes, the 32 leaves being the
  replica recipients);
* :func:`build_locality_tree` -- the locality-aware tree of Section 4.4.1:
  starting from the source, children are chosen greedily as the proximity-
  closest nodes known from the overlay routing tables, walking towards the
  replica targets' identifiers;
* :func:`build_routed_tree` -- the Scribe-style dissemination tree: the
  union of the overlay-routed paths from the source to every replica
  target, as produced by an array routing engine's batched ``route_many``.
  Interior vertices are the overlay nodes the lookups actually traverse,
  so tree depth is the routed hop count (~log16 N for Pastry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.overlay.ids import NodeId
from repro.overlay.network import OverlayNetwork


@dataclass
class TreeNode:
    """One vertex of a multicast tree."""

    label: int
    parent: Optional["TreeNode"] = None
    children: List["TreeNode"] = field(default_factory=list)
    #: Overlay node backing this vertex (None for purely synthetic trees).
    overlay_id: Optional[NodeId] = None

    @property
    def is_leaf(self) -> bool:
        """Whether the vertex has no children (a replica recipient)."""
        return not self.children

    @property
    def is_root(self) -> bool:
        """Whether the vertex is the source of the dissemination."""
        return self.parent is None

    def depth(self) -> int:
        """Distance from the root."""
        node, depth = self, 0
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth


class MulticastTree:
    """A rooted tree of :class:`TreeNode` vertices."""

    def __init__(self, root: TreeNode) -> None:
        self.root = root
        self._nodes: List[TreeNode] = []
        self._collect(root)

    def _collect(self, node: TreeNode) -> None:
        self._nodes.append(node)
        for child in node.children:
            self._collect(child)

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> List[TreeNode]:
        """All vertices in preorder."""
        return list(self._nodes)

    def leaves(self) -> List[TreeNode]:
        """The replica recipients."""
        return [node for node in self._nodes if node.is_leaf]

    def internal_nodes(self) -> List[TreeNode]:
        """Vertices with at least one child (including the root)."""
        return [node for node in self._nodes if node.children]

    def height(self) -> int:
        """Maximum depth over all vertices."""
        return max((node.depth() for node in self._nodes), default=0)

    def by_label(self) -> Dict[int, TreeNode]:
        """Label -> vertex map."""
        return {node.label: node for node in self._nodes}


def build_binary_tree(height: int) -> MulticastTree:
    """A complete binary tree of the given height (height 5 => 63 vertices)."""
    if height < 0:
        raise ValueError("height must be non-negative")
    counter = 0

    def make(depth: int, parent: Optional[TreeNode]) -> TreeNode:
        nonlocal counter
        node = TreeNode(label=counter, parent=parent)
        counter += 1
        if depth < height:
            node.children = [make(depth + 1, node), make(depth + 1, node)]
        return node

    return MulticastTree(make(0, None))


def build_routed_tree(
    router,
    source: NodeId,
    targets: Sequence[NodeId],
) -> MulticastTree:
    """The union of the routed overlay paths from ``source`` to ``targets``.

    ``router`` is anything with the ``route_many(keys, starts,
    collect_paths=True)`` surface (an array engine, or an
    :class:`~repro.overlay.network.OverlayNetwork` falling back to its
    scalar router).  Every node on a routed path becomes a vertex; the
    parent of a vertex is the hop that reached it first (first-seen wins,
    so shared prefixes of later paths reuse the existing spine, exactly
    how Scribe trees form from reverse-path forwarding).
    """
    unique_targets = [target for target in dict.fromkeys(targets) if target != source]
    root = TreeNode(label=0, overlay_id=source)
    by_id: Dict[int, TreeNode] = {int(source): root}
    if not unique_targets:
        return MulticastTree(root)
    result = router.route_many(unique_targets, source, collect_paths=True)
    if result.paths is None:
        raise ValueError("router did not return routed paths")
    label = 1
    for path in result.paths:
        parent = root
        for value in path:
            vertex = by_id.get(value)
            if vertex is None:
                vertex = TreeNode(label=label, parent=parent,
                                  overlay_id=NodeId(value))
                label += 1
                parent.children.append(vertex)
                by_id[value] = vertex
            parent = vertex
    return MulticastTree(root)


def build_locality_tree(
    network: OverlayNetwork,
    source: NodeId,
    targets: Sequence[NodeId],
    fanout: int = 2,
) -> MulticastTree:
    """Greedy locality-aware tree from ``source`` to the replica ``targets``.

    Following Section 4.4.1: starting from the source, up to ``fanout``
    children are picked per vertex as the proximity-closest candidate nodes,
    where the candidate pool is the remaining targets plus intermediate nodes
    drawn from the current vertex's routing table.  Each remaining target is
    attached under the interior vertex closest to it, so the tree "provides
    strong locality at each step" without guaranteeing globally shortest
    paths -- exactly the property the paper claims.
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    remaining = [target for target in dict.fromkeys(targets) if target != source]
    label = 0
    root = TreeNode(label=label, overlay_id=source)
    label += 1
    frontier: List[TreeNode] = [root]
    while remaining:
        next_frontier: List[TreeNode] = []
        for vertex in frontier:
            if not remaining:
                break
            assert vertex.overlay_id is not None
            # Order remaining targets by proximity to this vertex and adopt up
            # to ``fanout`` of them as children.
            remaining.sort(key=lambda nid: network.proximity(vertex.overlay_id, nid))
            adopted = remaining[:fanout]
            del remaining[: len(adopted)]
            for target in adopted:
                child = TreeNode(label=label, parent=vertex, overlay_id=target)
                label += 1
                vertex.children.append(child)
                next_frontier.append(child)
        if not next_frontier:
            # No vertex could adopt (should not happen); attach the rest to root.
            for target in remaining:
                child = TreeNode(label=label, parent=root, overlay_id=target)
                label += 1
                root.children.append(child)
            remaining = []
            break
        frontier = next_frontier
    return MulticastTree(root)
