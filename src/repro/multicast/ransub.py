"""RanSub: epoch-based random-subset dissemination over a tree.

RanSub (Kostic et al., USITS 2003) gives every vertex of a tree a uniformly
random subset of the participants, refreshed every epoch, using two phases:

* **collect** -- leaves send a descriptor of themselves up the tree; every
  interior vertex merges its children's sets with its own descriptor and
  *compacts* the union down to the configured subset size by uniform sampling
  before forwarding it to its parent;
* **distribute** -- the root pushes its compacted set down; each vertex merges
  what it receives from its parent with the sets collected from its own
  subtree (excluding descendants it forwards to), again compacting to the
  subset size.

The descriptors carry "what data those nodes have received" (the paper's
wording): here, the number of packets a node holds, which Bullet uses to pick
peers worth pulling missing packets from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.multicast.tree import MulticastTree, TreeNode


@dataclass(frozen=True)
class MemberDescriptor:
    """What one participant advertises through RanSub."""

    label: int
    packets_held: int


@dataclass
class RanSubView:
    """The random subset a vertex ends an epoch with."""

    epoch: int
    members: List[MemberDescriptor] = field(default_factory=list)

    def labels(self) -> List[int]:
        """Labels of the members in the view."""
        return [member.label for member in self.members]


class RanSubProtocol:
    """Runs the collect/distribute phases of RanSub over a multicast tree."""

    def __init__(
        self,
        tree: MulticastTree,
        subset_size: int,
        rng: np.random.Generator,
    ) -> None:
        if subset_size < 1:
            raise ValueError("subset_size must be >= 1")
        self.tree = tree
        self.subset_size = subset_size
        self.rng = rng
        self.epoch = 0
        #: Messages exchanged during the last epoch (collect + distribute).
        self.messages_last_epoch = 0

    def _compact(self, members: Sequence[MemberDescriptor]) -> List[MemberDescriptor]:
        """Uniformly sample the members down to the subset size."""
        unique: Dict[int, MemberDescriptor] = {member.label: member for member in members}
        pool = list(unique.values())
        if len(pool) <= self.subset_size:
            return pool
        picks = self.rng.choice(len(pool), size=self.subset_size, replace=False)
        return [pool[int(index)] for index in picks]

    def run_epoch(self, packets_held: Callable[[int], int]) -> Dict[int, RanSubView]:
        """Run one collect + distribute round.

        ``packets_held`` maps a vertex label to the number of packets that
        vertex currently holds (supplied by the Bullet session).  Returns the
        per-vertex views for this epoch.
        """
        self.epoch += 1
        self.messages_last_epoch = 0
        collected: Dict[int, List[MemberDescriptor]] = {}

        def descriptor(node: TreeNode) -> MemberDescriptor:
            return MemberDescriptor(label=node.label, packets_held=packets_held(node.label))

        # Collect phase (post-order): children report up, parents compact.
        def collect(node: TreeNode) -> List[MemberDescriptor]:
            gathered: List[MemberDescriptor] = [descriptor(node)]
            for child in node.children:
                gathered.extend(collect(child))
                self.messages_last_epoch += 1  # child -> parent message
            compacted = self._compact(gathered)
            collected[node.label] = compacted
            return compacted

        collect(self.tree.root)

        # Distribute phase (pre-order): parents push their view down; each
        # vertex merges what it hears from its parent with what it collected
        # from the rest of the tree (its own compacted set), and compacts.
        views: Dict[int, RanSubView] = {}

        def distribute(node: TreeNode, from_parent: List[MemberDescriptor]) -> None:
            merged = self._compact(list(from_parent) + collected[node.label])
            views[node.label] = RanSubView(epoch=self.epoch, members=merged)
            for child in node.children:
                self.messages_last_epoch += 1  # parent -> child message
                # The paper notes the distribute message carries the RanSubs of
                # the sender, of the sender's parent, and of the sender's other
                # children -- i.e. everything the sender knows except the
                # receiving child's own subtree.
                sibling_info: List[MemberDescriptor] = []
                for sibling in node.children:
                    if sibling is not child:
                        sibling_info.extend(collected[sibling.label])
                distribute(child, self._compact(merged + sibling_info))

        distribute(self.tree.root, [descriptor(self.tree.root)])
        return views
