"""Multicast-driven replica creation for stored chunks (Section 4.4.1).

The paper replaces the usual "primary node creates the replicas" scheme with a
push over a locality-aware multicast tree: once the k replica holders of an
encoded block are chosen (the block's DHT root plus k-1 of its identifier-space
neighbours), the storing node builds a tree towards them using the
proximity-aware routing state and runs Bullet to disseminate the block.

:class:`MulticastReplicator` ties that machinery to
:class:`repro.core.storage.StorageSystem`: it picks the replica holders,
reserves the space, runs a :class:`~repro.multicast.bullet.BulletSession` per
block, and records the resulting replica placements back into the stored-file
metadata so that availability checks and recovery see them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.storage import BlockPlacement, StorageSystem
from repro.multicast.bullet import BulletConfig, BulletSession
from repro.multicast.tree import build_locality_tree
from repro.overlay.ids import NodeId


@dataclass
class ReplicationReport:
    """Outcome of replicating one chunk's encoded blocks."""

    filename: str
    chunk_no: int
    replicas_requested: int
    replicas_created: int = 0
    replicas_skipped_no_space: int = 0
    epochs_used: int = 0
    packets_per_block: int = 0
    #: Replica holders per block name.
    holders: Dict[str, List[NodeId]] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Whether every requested replica of every block was created."""
        return self.replicas_skipped_no_space == 0 and self.replicas_created > 0


class MulticastReplicator:
    """Creates k replicas of stored chunks by multicast push."""

    def __init__(
        self,
        storage: StorageSystem,
        config: Optional[BulletConfig] = None,
        rng: Optional[np.random.Generator] = None,
        fanout: int = 2,
        simulate_push: bool = True,
    ) -> None:
        self.storage = storage
        self.dht = storage.dht
        self.config = config or BulletConfig(total_packets=100, ransub_fraction=0.16)
        self.rng = rng or np.random.default_rng(0)
        self.fanout = fanout
        #: Run the packet-level Bullet session per replicated chunk.  The
        #: serving engine's popularity-triggered promotion turns this off:
        #: there the push cost is already charged on the transfer fabric,
        #: and the per-packet dissemination model would dominate wall time.
        self.simulate_push = simulate_push

    # -- target selection -----------------------------------------------------
    def _replica_targets(self, primary: NodeId, block_name: str, size: int, count: int) -> List[NodeId]:
        """k-1 identifier-space neighbours of the primary that can hold the block."""
        targets: List[NodeId] = []
        for candidate in self.dht.neighbors(primary, count * 3):
            if len(targets) >= count:
                break
            if candidate.node_id == primary:
                continue
            if candidate.store_block(block_name, size):
                targets.append(candidate.node_id)
        return targets

    # -- replication ------------------------------------------------------------
    def replicate_chunk(self, filename: str, chunk_no: int, replicas: int) -> ReplicationReport:
        """Create ``replicas`` additional copies of every encoded block of a chunk.

        Data movement is modelled by one Bullet session per chunk: the source
        is the node that stored the chunk, the leaves are the replica holders,
        and the session's epochs measure how long the push takes.
        """
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        stored = self.storage.files.get(filename)
        if stored is None:
            raise KeyError(f"unknown file: {filename!r}")
        chunk = next((c for c in stored.chunks if c.chunk_no == chunk_no), None)
        if chunk is None or chunk.is_empty:
            raise KeyError(f"file {filename!r} has no data chunk {chunk_no}")

        report = ReplicationReport(
            filename=filename, chunk_no=chunk_no, replicas_requested=replicas
        )
        ledger = self.storage.ledger
        network = self.dht.network
        all_targets: List[NodeId] = []
        new_placements: List[BlockPlacement] = []
        for position, placement in enumerate(chunk.placements):
            targets = self._replica_targets(
                placement.node_id, placement.block_name, placement.size, replicas
            )
            if ledger is not None and chunk.ledger_index is not None:
                for target in targets:
                    ledger.add_replica_copy(
                        chunk.ledger_index,
                        position,
                        network.node(target),
                        placement.block_name,
                        placement.size,
                    )
            report.holders[placement.block_name] = targets
            report.replicas_created += len(targets)
            report.replicas_skipped_no_space += replicas - len(targets)
            all_targets.extend(targets)
            # When the store is attached to a transfer fabric, the multicast
            # push charges one tenant-tagged transfer per created replica.
            for target in targets:
                self.storage._charge(placement.size, int(placement.node_id), int(target))
            new_placements.append(
                BlockPlacement(
                    block_name=placement.block_name,
                    node_id=placement.node_id,
                    size=placement.size,
                    replica_nodes=placement.replica_nodes + tuple(targets),
                )
            )
            # Payload mode: the replica holders receive the block contents.
            if self.storage.payload_mode:
                payload = self.storage._block_payloads.get(
                    (int(placement.node_id), placement.block_name)
                )
                if payload is not None:
                    for target in targets:
                        self.storage._block_payloads[(int(target), placement.block_name)] = payload

        chunk.placements = new_placements

        if all_targets and self.simulate_push:
            source = chunk.placements[0].node_id
            tree = build_locality_tree(self.dht.network, source, all_targets, fanout=self.fanout)
            session = BulletSession(tree, self.config, rng=self.rng)
            session.run(until_complete=True)
            report.epochs_used = len(session.history)
            report.packets_per_block = self.config.total_packets
        return report

    def replicate_file(self, filename: str, replicas: int) -> List[ReplicationReport]:
        """Replicate every data chunk of a file; returns one report per chunk."""
        stored = self.storage.files.get(filename)
        if stored is None:
            raise KeyError(f"unknown file: {filename!r}")
        return [
            self.replicate_chunk(filename, chunk.chunk_no, replicas)
            for chunk in stored.data_chunks()
        ]
