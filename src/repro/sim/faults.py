"""Failure-domain fault injection: correlated outages as first-class events.

The paper's availability results (Fig 10, Table 3) are derived from
*independent* node failures, but a deployed archive dies in correlated
events: a rack loses power, a site drops off the network, a tenth of the
population reboots at once.  This module injects those events against the
discrete-event kernel of :mod:`repro.sim.engine`:

* every node carries a **failure domain** -- a ``site`` (machine room or
  campus) and a globally-unique ``rack`` id within it -- mirrored as int16
  columns alongside the owner column of the block ledger
  (:meth:`repro.core.block_ledger.BlockLedger.fail_domain`), so a whole-site
  or whole-rack outage kills every affected row with **one** owner-domain
  mask rather than N scalar per-node sweeps;
* the :class:`FaultInjector` composes scenarios -- domain outages,
  flash-crowd mass failure, staggered rolling restarts, slow/degraded
  nodes (bandwidth cut through
  :meth:`repro.core.transfer.TransferScheduler.set_node_bandwidth`) and
  degraded/partitioned core trunks (capacity cut through
  :meth:`~repro.core.transfer.TransferScheduler.set_trunk_bandwidth` against
  the attached :class:`~repro.core.transfer.NetworkTopology`) -- either
  immediately or scheduled on the simulator clock;
* when a :class:`~repro.core.recovery.RecoveryManager` is attached every
  outage is followed by the durability-grade repair pass (regeneration plus
  replica re-replication), and the injector reports per-event accounting
  (rows killed, bytes regenerated, data lost, time-to-repair).

End-state equivalence between the correlated mask and the scalar per-node
sequence is oracle-tested in ``tests/test_faults.py``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.overlay.network import OverlayNetwork
from repro.overlay.node import OverlayNode
from repro.sim.engine import Simulator


def assign_domains(
    nodes: Iterable[OverlayNode], sites: int, racks_per_site: int
) -> None:
    """Lay a ``sites x racks_per_site`` failure-domain grid over a population.

    Nodes are striped round-robin across racks in id order, so domains are
    deterministic for a given population and -- crucially -- no random stream
    is consumed: the overlay build RNG draws stay byte-identical whether or
    not domains are assigned.  Rack ids are globally unique
    (``site * racks_per_site + rack``), matching the convention of
    :attr:`repro.overlay.node.OverlayNode.rack`.
    """
    if sites < 1 or racks_per_site < 1:
        raise ValueError("need at least one site and one rack per site")
    ordered = sorted(nodes, key=lambda node: int(node.node_id))
    total_racks = sites * racks_per_site
    for index, node in enumerate(ordered):
        global_rack = index % total_racks
        node.site = global_rack // racks_per_site
        node.rack = global_rack


@dataclass
class FaultEvent:
    """Accounting for one injected fault scenario."""

    scenario: str
    at: float
    nodes_affected: int
    #: Ledger rows killed by the correlated mask (0 without a ledger, or for
    #: scenarios that do not kill rows, e.g. a bandwidth degradation).
    rows_killed: int = 0
    bytes_regenerated: int = 0
    replicas_restored: int = 0
    data_bytes_lost: int = 0
    chunks_lost: int = 0
    repair_traffic_bytes: int = 0
    #: Longest time-to-repair among the event's repair passes (None when
    #: repair ran instantaneously or was disabled).
    time_to_repair: Optional[float] = None
    details: dict = field(default_factory=dict)


class FaultInjector:
    """Schedules composable correlated-failure scenarios against a deployment.

    Parameters
    ----------
    sim:
        The discrete-event clock scenarios are scheduled on.
    network:
        The overlay population the faults act on.
    dht:
        Optional DHT view; failed nodes are removed from it (restarted nodes
        re-join).  When a recovery manager is attached its own DHT is used.
    recovery:
        Optional :class:`~repro.core.recovery.RecoveryManager`; when present
        every outage is followed by the repair pass and the event records the
        repair accounting.
    ledger:
        Optional :class:`~repro.core.block_ledger.BlockLedger` (or the
        storage's ledger when a recovery manager is attached).  Domain
        outages kill its rows with one mask.
    transfers:
        Optional :class:`~repro.core.transfer.TransferScheduler` for the
        slow-node scenario.
    repair_spacing:
        Simulated seconds between consecutive per-node repair passes after a
        correlated outage.  0 (the default) repairs every member synchronously
        at injection time; a positive spacing staggers the passes on the sim
        clock -- every member is already down before the first pass runs, so
        the correlated end state is unchanged, but in-flight repair transfers
        stay bounded by the spacing instead of all contending at once (at
        10 000-node scale an unstaggered site outage would put ~10^5 flows on
        the fair-share scheduler simultaneously).
    """

    def __init__(
        self,
        sim: Simulator,
        network: OverlayNetwork,
        dht=None,
        recovery=None,
        ledger=None,
        transfers=None,
        repair_spacing: float = 0.0,
    ) -> None:
        if repair_spacing < 0:
            raise ValueError("repair_spacing must be >= 0")
        self.sim = sim
        self.network = network
        self.recovery = recovery
        self.repair_spacing = repair_spacing
        if recovery is not None:
            dht = dht if dht is not None else recovery.dht
            if ledger is None:
                ledger = recovery.storage.ledger
        self.dht = dht
        self.ledger = ledger
        self.transfers = transfers
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------- primitives --
    def _down(self, node: OverlayNode) -> None:
        """Overlay-side transition for one failed node (no repair)."""
        if node.alive:
            self.network.fail(node.node_id)
        if self.dht is not None:
            self.dht.remove(node.node_id)

    def _repair_one(self, node: OverlayNode, event: FaultEvent) -> None:
        """One member's repair pass, folded into the event's accounting."""
        impact = self.recovery.handle_failure(node.node_id)
        event.bytes_regenerated += impact.bytes_regenerated
        event.replicas_restored += impact.replicas_restored
        event.data_bytes_lost += impact.data_bytes_lost
        event.chunks_lost += impact.chunks_lost
        event.repair_traffic_bytes += impact.repair_traffic_bytes
        ttr = impact.time_to_repair
        if ttr is not None:
            worst = event.time_to_repair
            event.time_to_repair = ttr if worst is None else max(worst, ttr)

    def _repair(self, members: Sequence[OverlayNode], event: FaultEvent) -> None:
        """Run the repair pass for every member and fold in its accounting.

        With a positive ``repair_spacing`` the passes are staggered on the
        sim clock (run the simulator to drain them); every member is already
        down, so the staggering never changes the repaired end state.
        """
        if self.recovery is None:
            for node in members:
                if self.dht is not None:
                    self.dht.remove(node.node_id)
            return
        if self.repair_spacing <= 0:
            for node in members:
                self._repair_one(node, event)
            return
        for index, node in enumerate(members):
            self.sim.schedule(
                index * self.repair_spacing,
                lambda node=node: self._repair_one(node, event),
            )

    def _fail_correlated(
        self, members: Sequence[OverlayNode], scenario: str, repair: bool, details: dict
    ) -> FaultEvent:
        """Down every member *simultaneously*, then (optionally) repair.

        All nodes drop before any repair runs -- the defining property of a
        correlated outage: no repair pass can read from, or place blocks on,
        a fellow casualty.  With a ledger attached the rows die in one
        owner-domain mask (:meth:`BlockLedger.fail_domain`) when the scenario
        provides one, otherwise through the per-node listener sweeps.
        """
        event = FaultEvent(
            scenario=scenario,
            at=self.sim.now,
            nodes_affected=len(members),
            details=details,
        )
        for node in members:
            if node.alive:
                self.network.fail(node.node_id)
        if repair:
            self._repair(members, event)
        elif self.dht is not None:
            for node in members:
                self.dht.remove(node.node_id)
        self.events.append(event)
        return event

    # -------------------------------------------------------- domain outages --
    def _domain_members(
        self, site: Optional[int], rack: Optional[int]
    ) -> List[OverlayNode]:
        if site is None and rack is None:
            raise ValueError("specify a site and/or a rack")
        return [
            node
            for node in self.network.nodes()
            if node.alive
            and (site is None or node.site == site)
            and (rack is None or node.rack == rack)
        ]

    def fail_domain(
        self, site: Optional[int] = None, rack: Optional[int] = None, repair: bool = True
    ) -> FaultEvent:
        """Whole-site or whole-rack outage: one correlated owner-domain mask.

        With a ledger attached every affected row is killed by a single
        vectorized mask over the int16 domain columns *before* the overlay
        transitions run (whose per-node listener sweeps then find nothing
        left to kill).  The repair passes observe the full outage -- exactly
        the semantics of N scalar failures applied atomically.
        """
        members = self._domain_members(site, rack)
        rows = 0
        if self.ledger is not None and members:
            rows = self.ledger.fail_domain(site=site, rack=rack)
        event = self._fail_correlated(
            members,
            scenario="site_outage" if rack is None else "rack_outage",
            repair=repair,
            details={"site": site, "rack": rack},
        )
        event.rows_killed = rows
        return event

    # ----------------------------------------------------------- flash crowd --
    def flash_crowd(
        self,
        fraction: float = 0.10,
        rng: Optional[random.Random] = None,
        repair: bool = True,
    ) -> FaultEvent:
        """Mass simultaneous failure of a population fraction (default 10%)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        live = sorted(self.network.live_nodes(), key=lambda node: int(node.node_id))
        count = max(1, math.ceil(len(live) * fraction)) if live else 0
        if rng is not None:
            members = rng.sample(live, count)
        else:
            # Deterministic stride across the id space when no RNG is given.
            stride = max(1, len(live) // count) if count else 1
            members = live[::stride][:count]
        event = self._fail_correlated(
            members, scenario="flash_crowd", repair=repair, details={"fraction": fraction}
        )
        return event

    # ------------------------------------------------------- rolling restart --
    def rolling_restart(
        self,
        node_ids: Sequence,
        interval: float,
        downtime: float,
        wipe: bool = False,
        repair: bool = False,
    ) -> List[FaultEvent]:
        """Staggered restarts: node *i* fails at ``i * interval``, returns
        ``downtime`` later.

        With ``wipe=False`` (a reboot, not a disk loss) the node returns with
        its blocks intact -- an attached ledger revives the rows -- so the
        default skips the repair pass; ``repair=True`` models an operator
        re-protecting data during long restarts.
        """
        if interval < 0 or downtime <= 0:
            raise ValueError("interval must be >= 0 and downtime > 0")
        events: List[FaultEvent] = []
        for index, node_id in enumerate(node_ids):
            node = self.network.node(node_id)

            def down(node=node) -> None:
                event = self._fail_correlated(
                    [node], scenario="rolling_restart", repair=repair,
                    details={"wipe": wipe},
                )
                events.append(event)

            def up(node=node) -> None:
                node.recover(wipe=wipe)
                if self.dht is not None:
                    self.dht.add(node)

            self.sim.schedule(index * interval, down)
            self.sim.schedule(index * interval + downtime, up)
        return events

    # ------------------------------------------------------------ slow nodes --
    def degrade_nodes(self, node_ids: Sequence, fraction: float) -> FaultEvent:
        """Cut the nodes' bandwidth to ``fraction`` of the current value.

        Requires a transfer scheduler.  ``fraction=0`` kills the links, which
        deterministically fails the node's in-flight transfers (and triggers
        the repair pipeline's retry-with-re-plan); fractions in between model
        slow or overloaded participants.
        """
        if self.transfers is None:
            raise ValueError("degrade_nodes requires a transfer scheduler")
        if fraction < 0:
            raise ValueError("fraction must be >= 0")
        for node_id in node_ids:
            nid = int(node_id)
            uplink = self.transfers.uplink_of(nid)
            downlink = self.transfers.downlink_of(nid)
            self.transfers.set_node_bandwidth(
                nid,
                None if uplink is None else uplink * fraction,
                None if downlink is None else downlink * fraction,
            )
        event = FaultEvent(
            scenario="degraded_nodes",
            at=self.sim.now,
            nodes_affected=len(node_ids),
            details={"fraction": fraction},
        )
        self.events.append(event)
        return event

    # ---------------------------------------------------------- trunk faults --
    def degrade_trunk(
        self,
        site: Optional[int] = None,
        rack: Optional[int] = None,
        fraction: float = 0.0,
    ) -> FaultEvent:
        """Degrade (or partition) one domain's shared trunk to ``fraction``.

        Requires a transfer scheduler with an attached
        :class:`~repro.core.transfer.NetworkTopology`.  The domain's trunk
        capacities (both directions) are scaled to ``fraction`` of their
        *current* value through
        :meth:`~repro.core.transfer.TransferScheduler.set_trunk_bandwidth`;
        ``fraction=0`` partitions the domain off the core, which
        deterministically fails every in-flight transfer crossing the trunk
        (repair transfers then retry re-planned onto surviving paths).  The
        event records the old capacities so a later
        :meth:`restore_trunk` -- or a scheduled repair of the cut -- can undo
        the fault exactly.
        """
        if self.transfers is None or self.transfers.topology is None:
            raise ValueError("degrade_trunk requires a scheduler with a topology")
        if fraction < 0:
            raise ValueError("fraction must be >= 0")
        topology = self.transfers.topology
        uplink, downlink = topology.trunk_capacity(site=site, rack=rack)
        self.transfers.set_trunk_bandwidth(
            site=site,
            rack=rack,
            uplink=None if uplink is None else uplink * fraction,
            downlink=None if downlink is None else downlink * fraction,
        )
        event = FaultEvent(
            scenario="trunk_partition" if fraction == 0 else "degraded_trunk",
            at=self.sim.now,
            nodes_affected=len(self._domain_members(site, rack)),
            details={
                "site": site,
                "rack": rack,
                "fraction": fraction,
                "uplink_before": uplink,
                "downlink_before": downlink,
            },
        )
        self.events.append(event)
        return event

    def restore_trunk(self, event: FaultEvent) -> None:
        """Undo a :meth:`degrade_trunk` fault (the cable is spliced back)."""
        details = event.details
        self.transfers.set_trunk_bandwidth(
            site=details["site"],
            rack=details["rack"],
            uplink=details["uplink_before"],
            downlink=details["downlink_before"],
        )

    # ------------------------------------------------------------ scheduling --
    def schedule_trunk_degradation(
        self,
        delay: float,
        site: Optional[int] = None,
        rack: Optional[int] = None,
        fraction: float = 0.0,
        duration: Optional[float] = None,
    ):
        """Queue a trunk degradation; with ``duration`` the cut heals itself."""

        def inject() -> None:
            event = self.degrade_trunk(site=site, rack=rack, fraction=fraction)
            if duration is not None:
                self.sim.schedule(duration, lambda: self.restore_trunk(event))

        return self.sim.schedule(delay, inject)

    def schedule_site_outage(self, delay: float, site: int, repair: bool = True):
        """Queue a whole-site outage ``delay`` from now on the sim clock."""
        return self.sim.schedule(delay, lambda: self.fail_domain(site=site, repair=repair))

    def schedule_rack_outage(self, delay: float, rack: int, repair: bool = True):
        """Queue a whole-rack outage ``delay`` from now on the sim clock."""
        return self.sim.schedule(delay, lambda: self.fail_domain(rack=rack, repair=repair))

    def schedule_flash_crowd(
        self, delay: float, fraction: float = 0.10, rng: Optional[random.Random] = None,
        repair: bool = True,
    ):
        """Queue a flash-crowd mass failure ``delay`` from now."""
        return self.sim.schedule(
            delay, lambda: self.flash_crowd(fraction=fraction, rng=rng, repair=repair)
        )
