"""A compact discrete-event simulation kernel.

The kernel follows the classic event-queue design: a priority queue of
``(time, tie_breaker, callback)`` entries and a virtual clock that jumps from
event to event.  On top of the raw event queue a *process* abstraction is
provided: a process is a Python generator that ``yield``\\ s :class:`Timeout`
or :class:`Event` objects and is resumed when the yielded condition fires.
This is the same programming model as SimPy, implemented here from scratch so
the reproduction has no dependencies beyond NumPy.

The kernel is intentionally single-threaded and deterministic: two runs with
the same seed and the same schedule produce identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid use of the simulation kernel."""


class Event:
    """A one-shot condition that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`) makes
    it fire at the current simulation time, resuming every process that is
    waiting on it.  Events may carry an arbitrary ``value``.
    """

    __slots__ = ("sim", "_value", "_ok", "_fired", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: Any = None
        self._ok: bool = True
        self._fired: bool = False
        self._callbacks: list[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether the event has fired."""
        return self._fired

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully (vs. failed)."""
        return self._ok

    @property
    def value(self) -> Any:
        """Value the event fired with (exception instance if it failed)."""
        return self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event fires."""
        if self._fired:
            # Fire immediately (still through the scheduler for determinism).
            self.sim.schedule(0.0, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully with ``value``."""
        self._trigger(value, ok=True)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception that will be raised in waiters."""
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception instance")
        self._trigger(exception, ok=False)
        return self

    def _trigger(self, value: Any, ok: bool) -> None:
        if self._fired:
            raise SimulationError("event already triggered")
        self._fired = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim.schedule(0.0, lambda cb=callback: cb(self))


class Timeout(Event):
    """An event that fires automatically after ``delay`` simulated time units."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = float(delay)
        sim.schedule(self.delay, lambda: self.succeed(value))


class Process(Event):
    """A running process.  Also an event that fires when the process returns."""

    __slots__ = ("generator", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator (did you call the function?)")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the generator at the current time.
        sim.schedule(0.0, lambda: self._resume(None, None))

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate into waiters
            self.fail(error)
            return
        if not isinstance(target, Event):
            self._resume(None, SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event/Timeout"
            ))
            return
        target.add_callback(self._on_target_fired)

    def _on_target_fired(self, event: Event) -> None:
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)


@dataclass(order=True)
class _QueueEntry:
    time: float
    order: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """Event loop: a virtual clock plus a priority queue of callbacks."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: list[_QueueEntry] = []
        self._counter = itertools.count()
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of executed callbacks (a determinism fingerprint)."""
        return self._event_count

    # -- scheduling ---------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> _QueueEntry:
        """Run ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        entry = _QueueEntry(self._now + float(delay), next(self._counter), callback)
        heapq.heappush(self._queue, entry)
        return entry

    def cancel(self, entry: _QueueEntry) -> None:
        """Cancel a previously scheduled callback (lazy removal)."""
        entry.cancelled = True

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: Optional[str] = None) -> Process:
        """Start a generator as a simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Return an event that fires once every event in ``events`` has fired."""
        events = list(events)
        gate = self.event()
        remaining = len(events)
        if remaining == 0:
            gate.succeed([])
            return gate
        results: list[Any] = [None] * remaining

        def make_cb(index: int) -> Callable[[Event], None]:
            def _cb(event: Event) -> None:
                nonlocal remaining
                if not gate.triggered:
                    if not event.ok:
                        gate.fail(event.value)
                        return
                    results[index] = event.value
                    remaining -= 1
                    if remaining == 0:
                        gate.succeed(list(results))
            return _cb

        for index, event in enumerate(events):
            event.add_callback(make_cb(index))
        return gate

    def any_of(self, events: Iterable[Event]) -> Event:
        """Return an event that fires as soon as any event in ``events`` fires."""
        events = list(events)
        gate = self.event()
        if not events:
            gate.succeed(None)
            return gate

        def _cb(event: Event) -> None:
            if not gate.triggered:
                if event.ok:
                    gate.succeed(event.value)
                else:
                    gate.fail(event.value)

        for event in events:
            event.add_callback(_cb)
        return gate

    # -- running ------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False if queue empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            if entry.time < self._now:
                raise SimulationError("event queue corrupted: time went backwards")
            self._now = entry.time
            self._event_count += 1
            entry.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the simulation time at which the run stopped.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            next_time = self._peek_time()
            if until is not None and next_time is not None and next_time > until:
                self._now = float(until)
                break
            if not self.step():
                break
            executed += 1
        if until is not None and self._now < until and not self._queue:
            self._now = float(until)
        return self._now

    def run_until_complete(self, process: Process, max_events: int = 10_000_000) -> Any:
        """Run until ``process`` finishes and return its value (or raise)."""
        executed = 0
        while not process.triggered:
            if executed >= max_events:
                raise SimulationError("run_until_complete exceeded max_events")
            if not self.step():
                raise SimulationError(
                    f"deadlock: process {process.name!r} never finished and queue is empty"
                )
            executed += 1
        if not process.ok:
            raise process.value
        return process.value

    def _peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None
