"""Discrete-event simulation substrate.

The paper evaluates its storage system in the "simulator mode" of FreePastry:
a directly connected network of simulated nodes driven by an event loop.  This
package provides the equivalent substrate for the reproduction:

* :mod:`repro.sim.engine` -- a small generator-based discrete-event simulation
  kernel (events, processes, timeouts) used by the churn, recovery and
  multicast experiments.
* :mod:`repro.sim.rng` -- deterministic, named random-number streams so that
  every experiment is reproducible from a single seed.
* :mod:`repro.sim.churn` -- node failure / arrival processes used by the fault
  tolerance experiments (Section 6.2 of the paper).
"""

from repro.sim.engine import Event, Process, Simulator, Timeout
from repro.sim.rng import RandomStreams, derive_seed
from repro.sim.churn import ChurnModel, FailureEvent, FailureSchedule

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "Timeout",
    "RandomStreams",
    "derive_seed",
    "ChurnModel",
    "FailureEvent",
    "FailureSchedule",
]
