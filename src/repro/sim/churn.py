"""Participant churn models.

Section 6.2 of the paper studies fault tolerance by failing randomly chosen
nodes one-by-one (up to 10% of 10 000 nodes for the availability experiment
and up to 20% for the regeneration experiment) "without any node recovery",
and by introducing a recovery delay proportional to the amount of data that
has to be regenerated.  This module provides:

* :class:`FailureSchedule` -- a deterministic ordered list of node failures
  (the paper's fail-one-by-one methodology);
* :class:`ChurnModel` -- a continuous churn process (exponential session and
  down times) used by the extension experiments and property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

import numpy as np


@dataclass(frozen=True)
class FailureEvent:
    """A single node failure: which node, at what (virtual) time, in what order."""

    order: int
    node_id: int
    time: float


class FailureSchedule:
    """An ordered schedule of node failures without recovery.

    Parameters
    ----------
    node_ids:
        The population of node identifiers that may fail.
    fraction:
        Fraction of the population to fail (e.g. ``0.1`` for the paper's
        Figure 10, ``0.2`` for Table 3).
    rng:
        NumPy generator used to pick the failure order.
    spacing:
        Virtual time between consecutive failures.  The storage experiments
        only need the *order*, but the recovery experiment (Table 3) spaces
        failures so that recovery delays can overlap subsequent failures.
    """

    def __init__(
        self,
        node_ids: Sequence[int],
        fraction: float,
        rng: np.random.Generator,
        spacing: float = 1.0,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be within [0, 1], got {fraction}")
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        population = list(node_ids)
        count = int(round(len(population) * fraction))
        count = min(count, len(population))
        chosen = rng.choice(len(population), size=count, replace=False)
        self._events: List[FailureEvent] = [
            FailureEvent(order=index, node_id=population[int(pick)], time=index * spacing)
            for index, pick in enumerate(chosen)
        ]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> FailureEvent:
        return self._events[index]

    @property
    def node_ids(self) -> List[int]:
        """Node ids in failure order."""
        return [event.node_id for event in self._events]

    def up_to(self, count: int) -> List[FailureEvent]:
        """The first ``count`` failures of the schedule."""
        return self._events[:count]


@dataclass(frozen=True)
class SessionSample:
    """One node's alternating up/down session lengths."""

    node_id: int
    up_times: np.ndarray
    down_times: np.ndarray


class ChurnModel:
    """Continuous churn: nodes alternate exponential up and down sessions.

    This goes beyond the paper's fail-without-recovery methodology and is used
    by the extension benchmarks and by property tests that check the recovery
    pipeline under sustained churn.

    Stream versions
    ---------------
    ``stream_version=3`` (the default) samples sessions in geometrically
    *doubling* batches: the first block is sized by a concentration bound on
    the expected pair count (``E + 4*sqrt(E)`` pairs), so a single draw
    covers the horizon with overwhelming probability, and each follow-up
    block -- only ever needed on heavy-tailed outliers -- doubles the
    previous size, bounding the number of RNG calls at ``O(log)`` regardless
    of the tail.  ``stream_version=2`` is the first batched sampler (blocks
    re-sized to ~1.5x the expected remaining count per iteration).  In every
    version the *returned* session lengths are identical to the seed scalar
    stream value-for-value (NumPy's exponential consumes the bit stream the
    same way batched or one at a time, and the batch is trimmed at the first
    pair crossing the horizon); the batched versions merely over-draw past
    the horizon, so the generator state after a call differs from version 1.
    ``stream_version=1`` preserves the seed one-pair-at-a-time loop
    bit-for-bit for experiments pinned to old seeds.
    """

    def __init__(
        self,
        mean_uptime: float,
        mean_downtime: float,
        rng: np.random.Generator,
        stream_version: int = 3,
    ) -> None:
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise ValueError("mean up/down times must be positive")
        if stream_version not in (1, 2, 3):
            raise ValueError(f"unsupported churn stream version {stream_version}")
        self.mean_uptime = float(mean_uptime)
        self.mean_downtime = float(mean_downtime)
        self.stream_version = int(stream_version)
        self._rng = rng

    def sample_sessions(self, node_id: int, horizon: float) -> SessionSample:
        """Sample alternating up/down session lengths covering ``horizon``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.stream_version == 1:
            return self._sample_sessions_v1(node_id, horizon)
        mean_pair = self.mean_uptime + self.mean_downtime
        batches: list[np.ndarray] = []
        elapsed = 0.0
        batch = 0
        while True:
            if self.stream_version == 2:
                # v2: re-estimate ~1.5x the expected remaining pairs per block.
                expected = (horizon - elapsed) / mean_pair
                batch = max(4, int(expected * 1.5) + 4)
            elif not batches:
                # v3 first block: expectation plus a 4-sigma concentration
                # margin -- one draw covers the horizon w.h.p.
                expected = horizon / mean_pair
                batch = max(4, int(expected + 4.0 * expected ** 0.5) + 4)
            else:
                # v3 follow-ups (heavy-tail outliers only): geometric doubling
                # bounds the RNG call count at O(log) regardless of the tail.
                batch *= 2
            pairs = self._rng.standard_exponential(size=(batch, 2))
            pairs[:, 0] *= self.mean_uptime
            pairs[:, 1] *= self.mean_downtime
            totals = elapsed + np.cumsum(pairs.sum(axis=1))
            crossing = int(np.searchsorted(totals, horizon, side="left"))
            if crossing < batch:
                # The scalar loop includes the pair that crosses the horizon.
                batches.append(pairs[: crossing + 1])
                break
            batches.append(pairs)
            elapsed = float(totals[-1])
        sessions = np.concatenate(batches) if len(batches) > 1 else batches[0]
        return SessionSample(
            node_id=node_id,
            up_times=np.ascontiguousarray(sessions[:, 0]),
            down_times=np.ascontiguousarray(sessions[:, 1]),
        )

    def _sample_sessions_v1(self, node_id: int, horizon: float) -> SessionSample:
        """The seed scalar sampler (stream version 1), preserved verbatim."""
        ups: list[float] = []
        downs: list[float] = []
        elapsed = 0.0
        while elapsed < horizon:
            up = float(self._rng.exponential(self.mean_uptime))
            down = float(self._rng.exponential(self.mean_downtime))
            ups.append(up)
            downs.append(down)
            elapsed += up + down
        return SessionSample(
            node_id=node_id,
            up_times=np.asarray(ups, dtype=float),
            down_times=np.asarray(downs, dtype=float),
        )

    def availability(self) -> float:
        """Long-run fraction of time a node is up."""
        return self.mean_uptime / (self.mean_uptime + self.mean_downtime)

    def failure_times(self, node_ids: Iterable[int], horizon: float) -> List[FailureEvent]:
        """First failure time of each node within ``horizon`` (if any), ordered by time.

        Vectorised: one batched exponential draw for the whole population.
        NumPy's ``Generator.exponential`` consumes the bit stream identically
        whether drawn one-by-one or as an array, so this matches the seed
        scalar loop draw-for-draw on both stream versions.
        """
        ids = list(node_ids)
        if not ids:
            return []
        first_ups = self._rng.exponential(self.mean_uptime, size=len(ids))
        within = first_ups < horizon
        order = np.argsort(first_ups[within], kind="stable")
        surviving_ids = np.asarray(ids, dtype=object)[within]
        times = first_ups[within]
        return [
            FailureEvent(order=index, node_id=surviving_ids[pick], time=float(times[pick]))
            for index, pick in enumerate(order)
        ]
