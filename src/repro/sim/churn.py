"""Participant churn models.

Section 6.2 of the paper studies fault tolerance by failing randomly chosen
nodes one-by-one (up to 10% of 10 000 nodes for the availability experiment
and up to 20% for the regeneration experiment) "without any node recovery",
and by introducing a recovery delay proportional to the amount of data that
has to be regenerated.  This module provides:

* :class:`FailureSchedule` -- a deterministic ordered list of node failures
  (the paper's fail-one-by-one methodology);
* :class:`ChurnModel` -- a continuous churn process (exponential session and
  down times) used by the extension experiments and property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

import numpy as np


@dataclass(frozen=True)
class FailureEvent:
    """A single node failure: which node, at what (virtual) time, in what order."""

    order: int
    node_id: int
    time: float


class FailureSchedule:
    """An ordered schedule of node failures without recovery.

    Parameters
    ----------
    node_ids:
        The population of node identifiers that may fail.
    fraction:
        Fraction of the population to fail (e.g. ``0.1`` for the paper's
        Figure 10, ``0.2`` for Table 3).
    rng:
        NumPy generator used to pick the failure order.
    spacing:
        Virtual time between consecutive failures.  The storage experiments
        only need the *order*, but the recovery experiment (Table 3) spaces
        failures so that recovery delays can overlap subsequent failures.
    """

    def __init__(
        self,
        node_ids: Sequence[int],
        fraction: float,
        rng: np.random.Generator,
        spacing: float = 1.0,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be within [0, 1], got {fraction}")
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        population = list(node_ids)
        count = int(round(len(population) * fraction))
        count = min(count, len(population))
        chosen = rng.choice(len(population), size=count, replace=False)
        self._events: List[FailureEvent] = [
            FailureEvent(order=index, node_id=population[int(pick)], time=index * spacing)
            for index, pick in enumerate(chosen)
        ]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> FailureEvent:
        return self._events[index]

    @property
    def node_ids(self) -> List[int]:
        """Node ids in failure order."""
        return [event.node_id for event in self._events]

    def up_to(self, count: int) -> List[FailureEvent]:
        """The first ``count`` failures of the schedule."""
        return self._events[:count]


@dataclass(frozen=True)
class SessionSample:
    """One node's alternating up/down session lengths."""

    node_id: int
    up_times: np.ndarray
    down_times: np.ndarray


class ChurnModel:
    """Continuous churn: nodes alternate exponential up and down sessions.

    This goes beyond the paper's fail-without-recovery methodology and is used
    by the extension benchmarks and by property tests that check the recovery
    pipeline under sustained churn.
    """

    def __init__(
        self,
        mean_uptime: float,
        mean_downtime: float,
        rng: np.random.Generator,
    ) -> None:
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise ValueError("mean up/down times must be positive")
        self.mean_uptime = float(mean_uptime)
        self.mean_downtime = float(mean_downtime)
        self._rng = rng

    def sample_sessions(self, node_id: int, horizon: float) -> SessionSample:
        """Sample alternating up/down session lengths covering ``horizon``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        ups: list[float] = []
        downs: list[float] = []
        elapsed = 0.0
        while elapsed < horizon:
            up = float(self._rng.exponential(self.mean_uptime))
            down = float(self._rng.exponential(self.mean_downtime))
            ups.append(up)
            downs.append(down)
            elapsed += up + down
        return SessionSample(
            node_id=node_id,
            up_times=np.asarray(ups, dtype=float),
            down_times=np.asarray(downs, dtype=float),
        )

    def availability(self) -> float:
        """Long-run fraction of time a node is up."""
        return self.mean_uptime / (self.mean_uptime + self.mean_downtime)

    def failure_times(self, node_ids: Iterable[int], horizon: float) -> List[FailureEvent]:
        """First failure time of each node within ``horizon`` (if any), ordered by time."""
        events: list[FailureEvent] = []
        for node_id in node_ids:
            first_up = float(self._rng.exponential(self.mean_uptime))
            if first_up < horizon:
                events.append(FailureEvent(order=0, node_id=node_id, time=first_up))
        events.sort(key=lambda event: event.time)
        return [
            FailureEvent(order=index, node_id=event.node_id, time=event.time)
            for index, event in enumerate(events)
        ]
