"""Deterministic random-number streams.

Every stochastic element of the reproduction (node id assignment, node
capacities, file sizes, failure order, RanSub sampling, ...) draws from a
*named* stream derived from one experiment seed.  This means:

* experiments are exactly reproducible from their seed;
* changing how many numbers one component consumes does not perturb the
  randomness seen by other components (no accidental coupling);
* the paper's "each case was simulated ten times" averaging is implemented by
  incrementing a single replication index.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(base_seed: int, *names: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation hashes the labels with SHA-256 so that distinct label
    tuples give independent, well-mixed seeds regardless of how "close" the
    labels are (e.g. replication 1 vs replication 2).
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for name in names:
        hasher.update(b"\x00")
        hasher.update(str(name).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


class RandomStreams:
    """A factory of named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, *names: object) -> np.random.Generator:
        """Return (creating if needed) the generator for the given label path."""
        key = "/".join(str(name) for name in names)
        if key not in self._streams:
            self._streams[key] = np.random.default_rng(derive_seed(self.seed, *names))
        return self._streams[key]

    def fresh(self, *names: object) -> np.random.Generator:
        """Return a brand-new generator for the label path (never cached)."""
        return np.random.default_rng(derive_seed(self.seed, *names))

    def spawn(self, *names: object) -> "RandomStreams":
        """Return a child :class:`RandomStreams` rooted at the label path."""
        return RandomStreams(derive_seed(self.seed, *names))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
