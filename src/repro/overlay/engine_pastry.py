"""Array-backed Pastry prefix routing, hop-for-hop identical to the seed.

One dense ``(capacity, rows, 16)`` int32 table holds every node's routing
table (``table[slot, row, col]`` = slot of the entry, ``-1`` empty); digits
are uint8 nibble views over the S20 digests.  Construction replaces the
seed's N^2 pairwise ``consider()`` calls with a prefix-group recursion:
nodes sharing the first ``row`` digits form contiguous runs in id-sorted
order, so each run's pairwise proximity matrix is computed once (in owner
chunks) and per-digit-bucket lexicographic argmins fill a whole row of
entries at a time.  The total work is still ~N^2 candidate comparisons —
the same information the seed consumes — but as a handful of large numpy
reductions instead of 10^8 Python calls.

Exactness (the oracle in ``tests/test_routing_engine.py`` pins all of it):

* **Tables are order-independent.**  Seed construction has every node
  consider every other, so entry ``(row, col)`` of owner ``o`` is simply
  the argmin over matching candidates by ``(proximity, id)`` — which is
  what the batch build computes.
* **Removal never refills.**  The seed's ``_repair_after_departure`` only
  deletes the departed id; for each owner there is exactly one slot that
  can reference a given node (``row`` = shared prefix, ``col`` = the
  node's digit there), so removal is one gather/compare/scatter.
* **Joins are candidate-replacement.**  The newcomer's own table is an
  argmin over the live population (one ``np.lexsort``); every existing
  owner compares the newcomer against the single slot it belongs to.
* **Leaf sets are positional.**  At all times the seed leaf set equals
  the <= ``half_size`` nearest live ids per ring side (side = half-ring
  test), so the engine reads them straight out of the sorted live order —
  nothing to store, nothing to repair.

Routing applies the same three rules as
:meth:`~repro.overlay.network.OverlayNetwork._next_hop` per hop over the
whole active batch; only Pastry's "rare case" third rule (statistically a
fraction of a percent of hops) drops to a per-request scalar fallback so
its candidate-pool semantics stay exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.overlay.engine import (
    ArrayRouterBase,
    BatchRouteResult,
    KeysLike,
    register_engine,
)
from repro.overlay.idmath import (
    HALF_RING_LIMBS,
    cw_dist,
    digest_bytes_matrix,
    digits_from_digests,
    lex_argmax,
    lex_argmin,
    lex_le,
    lex_lt,
    limbs_from_digests,
    ring_dist,
)
from repro.overlay.ids import DIGITS, ID_SPACE, IdLike
from repro.overlay.network import OverlayError
from repro.overlay.node import OverlayNode

_HALF_RING_INT = 1 << 159
_COLUMNS = 16


def _shared_prefix_int(a: int, b: int) -> int:
    delta = a ^ b
    if delta == 0:
        return DIGITS
    return (160 - delta.bit_length()) // 4


class PastryArrayRouter(ArrayRouterBase):
    """The vectorized Pastry engine (see module docstring for semantics)."""

    name = "pastry"

    def __init__(self, nodes: Sequence[OverlayNode], leaf_set_half_size: int = 8,
                 max_route_hops: int = 128) -> None:
        super().__init__(nodes, max_route_hops=max_route_hops)
        self.leaf_set_half_size = leaf_set_half_size
        self._coords = np.zeros((self._capacity, 2), dtype=np.float64)
        live = [node for node in nodes if node.alive]
        for slot, node in enumerate(live):
            self._coords[slot] = node.coordinates
        self._digits = np.zeros((self._capacity, DIGITS), dtype=np.uint8)
        if live:
            self._digits[:len(live)] = digits_from_digests(self._ids_bytes[:len(live)])
        self._rows = self._required_rows()
        self._table = np.full((self._capacity, self._rows, _COLUMNS), -1, dtype=np.int32)
        self._build_tables()

    @classmethod
    def from_network(cls, network, **kwargs) -> "PastryArrayRouter":
        """Build the engine over a network's live population."""
        kwargs.setdefault("leaf_set_half_size", network.leaf_set_half_size)
        kwargs.setdefault("max_route_hops", network.max_route_hops)
        return cls(network.live_nodes(), **kwargs)

    # -- table sizing ----------------------------------------------------------
    def _required_rows(self) -> int:
        """Rows needed = deepest shared prefix over any pair, plus slack.

        The deepest shared prefix over *all* pairs is attained by an
        adjacent pair in id-sorted order, so one pass over the sorted view
        suffices.  Random 160-bit ids keep this near log16(N) (~5 rows at
        10k, ~6 at 100k) — the dense table stays tiny next to 40 rows.
        """
        n = self.live_count
        if n <= 1:
            return 2
        digits = self._digits[self._sorted_slots]
        unequal = digits[1:] != digits[:-1]
        deepest = int(unequal.argmax(axis=1).max())
        return min(DIGITS, deepest + 2)

    def _ensure_rows(self, required: int) -> None:
        if required <= self._rows:
            return
        required = min(DIGITS, required)
        pad = required - self._rows
        self._table = np.pad(self._table, ((0, 0), (0, pad), (0, 0)),
                             constant_values=-1)
        self._rows = required

    def _grow_capacity(self, new_capacity: int) -> None:
        pad = new_capacity - self._capacity
        super()._grow_capacity(new_capacity)
        self._coords = np.pad(self._coords, ((0, pad), (0, 0)))
        self._digits = np.pad(self._digits, ((0, pad), (0, 0)))
        self._table = np.pad(self._table, ((0, pad), (0, 0), (0, 0)),
                             constant_values=-1)

    # -- vectorized batch construction ----------------------------------------
    def _build_tables(self) -> None:
        n = self.live_count
        if n <= 1:
            return
        order = self._sorted_slots
        stack = [(0, 0, n)]
        while stack:
            row, lo, hi = stack.pop()
            if hi - lo <= 1 or row >= self._rows:
                continue
            members = order[lo:hi]
            digits = self._digits[members, row]
            bounds = np.searchsorted(digits, np.arange(_COLUMNS + 1))
            for col in range(_COLUMNS):
                if bounds[col + 1] - bounds[col] > 1:
                    stack.append((row + 1, lo + int(bounds[col]), lo + int(bounds[col + 1])))
            self._fill_row(row, members, digits, bounds)

    def _fill_row(self, row: int, members: np.ndarray, digits: np.ndarray,
                  bounds: np.ndarray) -> None:
        """Fill entry (row, col) for every owner in a prefix group.

        Candidates for column ``col`` are the group's digit-``col`` bucket;
        each owner outside that bucket takes the bucket's argmin by
        ``(proximity, id)`` — the seed's ``consider()`` fixed point.
        """
        count = len(members)
        coords = self._coords[members]
        limbs = self._ids_limbs[members]
        # Bound the owner x member proximity matrix to ~4M cells per chunk.
        chunk = max(1, min(4096, (1 << 22) // count))
        for start in range(0, count, chunk):
            owners = members[start:start + chunk]
            owner_digits = digits[start:start + chunk]
            delta = coords[start:start + chunk, None, :] - coords[None, :, :]
            proximity = np.hypot(delta[..., 0], delta[..., 1])
            for col in range(_COLUMNS):
                lo, hi = int(bounds[col]), int(bounds[col + 1])
                if lo == hi:
                    continue
                sub = proximity[:, lo:hi]
                best = lex_argmin([sub, limbs[lo:hi, 2], limbs[lo:hi, 1],
                                   limbs[lo:hi, 0]], axis=1)
                entry = members[lo + best]
                outside = owner_digits != col
                self._table[owners[outside], row, col] = entry[outside]

    # -- incremental churn patches --------------------------------------------
    def on_join(self, node: OverlayNode) -> None:
        """O(N) vectorized join patch — exact, no rebuild."""
        value = int(node.node_id)
        slot = self._alloc_slot(value)
        self._coords[slot] = node.coordinates
        self._digits[slot] = digits_from_digests(self._ids_bytes[slot:slot + 1])[0]
        self._table[slot] = -1
        self._insert_sorted(slot)
        others = self._sorted_slots[self._sorted_slots != slot]
        if len(others) == 0:
            return
        unequal = self._digits[others] != self._digits[slot][None, :]
        prefix = unequal.argmax(axis=1)
        self._ensure_rows(int(prefix.max()) + 2)
        delta = self._coords[others] - self._coords[slot][None, :]
        proximity = np.hypot(delta[:, 0], delta[:, 1])
        limbs = self._ids_limbs[others]
        # The newcomer's own table: per-slot argmin by (proximity, id) over
        # the whole live population, via one lexsort + first-occurrence scan.
        slot_key = prefix.astype(np.int64) * _COLUMNS + self._digits[others, prefix]
        order = np.lexsort((limbs[:, 0], limbs[:, 1], limbs[:, 2], proximity, slot_key))
        filled, first = np.unique(slot_key[order], return_index=True)
        self._table[slot].reshape(-1)[filled] = others[order[first]]
        # Existing owners consider the newcomer at its single slot.
        column = self._digits[slot, prefix]
        current = self._table[others, prefix, column]
        occupied = current >= 0
        safe = np.where(occupied, current, 0)
        cur_delta = self._coords[others] - self._coords[safe]
        cur_proximity = np.hypot(cur_delta[:, 0], cur_delta[:, 1])
        better = ~occupied | (proximity < cur_proximity) | (
            (proximity == cur_proximity) & (self._ids_bytes[slot] < self._ids_bytes[safe])
        )
        self._table[others[better], prefix[better], column[better]] = slot

    def _on_departure(self, node_id: IdLike) -> None:
        """Clear the single slot per owner that can reference the departed
        node — the seed's remove-without-refill semantics."""
        slot = self._slot_of.get(int(node_id))
        if slot is None:
            return
        self._remove_sorted(slot)
        owners = self._sorted_slots
        if len(owners):
            unequal = self._digits[owners] != self._digits[slot][None, :]
            prefix = unequal.argmax(axis=1)
            safe_prefix = np.minimum(prefix, self._rows - 1)
            column = self._digits[slot, safe_prefix]
            hit = (prefix < self._rows) & (self._table[owners, safe_prefix, column] == slot)
            self._table[owners[hit], safe_prefix[hit], column[hit]] = -1
        self._table[slot] = -1
        self._release_slot(slot)

    def on_leave(self, node_id: IdLike) -> None:
        self._on_departure(node_id)

    def on_fail(self, node_id: IdLike) -> None:
        self._on_departure(node_id)

    # -- batched routing -------------------------------------------------------
    def route_many(self, keys: KeysLike, starts: KeysLike,
                   collect_paths: bool = False) -> BatchRouteResult:
        key_bytes = self._normalize_keys(keys)
        count = len(key_bytes)
        key_limbs = limbs_from_digests(key_bytes)
        key_digits = digits_from_digests(key_bytes)
        # int() via the uint8 view -- numpy S20 scalars strip trailing NUL
        # bytes, which would silently shift such keys right by whole bytes.
        key_ints = [int.from_bytes(row.tobytes(), "big")
                    for row in digest_bytes_matrix(key_bytes)]
        current = self._slots_for_starts(starts, count).copy()
        roots = self._pastry_roots(key_bytes, key_limbs)
        hops = np.zeros(count, dtype=np.int32)
        paths: Optional[List[List[int]]] = None
        if collect_paths:
            paths = [[self.slot_id(int(slot))] for slot in current]
        active = current != roots
        rounds = 0
        while active.any():
            if rounds >= self.max_route_hops:
                raise OverlayError(
                    f"batched routing exceeded {self.max_route_hops} hops")
            rounds += 1
            subset = np.flatnonzero(active)
            nxt = self._next_hops(
                current[subset], key_limbs[subset], key_digits[subset],
                [key_ints[i] for i in subset], roots[subset])
            current[subset] = nxt
            hops[subset] += 1
            if paths is not None:
                for i, slot in zip(subset, nxt):
                    paths[i].append(self.slot_id(int(slot)))
            active[subset] = nxt != roots[subset]
        return BatchRouteResult(hops=hops, root_slots=roots, engine=self, paths=paths)

    def _next_hops(self, current: np.ndarray, key_limbs: np.ndarray,
                   key_digits: np.ndarray, key_ints: List[int],
                   roots: np.ndarray) -> np.ndarray:
        count = len(current)
        nxt = np.full(count, -1, dtype=np.int32)
        cur_limbs = self._ids_limbs[current]
        own_dist = ring_dist(cur_limbs, key_limbs)

        # Rule 1: leaf-set coverage -> numerically closest member.
        members, kept, is_larger, fwd, back = self._leaf_windows(current)
        member_limbs = self._ids_limbs[members]
        member_dist = ring_dist(member_limbs, key_limbs[:, None, :])
        cand_dist = np.concatenate([member_dist, own_dist[:, None, :]], axis=1)
        cand_limbs = np.concatenate([member_limbs, cur_limbs[:, None, :]], axis=1)
        cand_valid = np.concatenate(
            [kept, np.ones((count, 1), dtype=bool)], axis=1)
        closest = lex_argmin(
            [cand_dist[..., 2], cand_dist[..., 1], cand_dist[..., 0],
             cand_limbs[..., 2], cand_limbs[..., 1], cand_limbs[..., 0]],
            axis=1, valid=cand_valid)
        rows = np.arange(count)
        closest_dist = cand_dist[rows, closest]
        strictly_closer = lex_lt(closest_dist, own_dist) & (closest < members.shape[1])
        member_count = kept.sum(axis=1)
        covers = self._covers(members, kept, is_larger, fwd, back, key_limbs, rows)
        gate = covers | (member_count < 2 * self.leaf_set_half_size)
        rule1 = gate & strictly_closer
        closest_member = members[rows, np.minimum(closest, members.shape[1] - 1)]
        nxt[rule1] = closest_member[rule1]

        # Rule 2: prefix-table gather at (shared prefix, next key digit).
        rest = ~rule1
        if rest.any():
            unequal = self._digits[current] != key_digits
            prefix = unequal.argmax(axis=1)
            safe_prefix = np.minimum(prefix, self._rows - 1)
            column = key_digits[rows, prefix]
            entry = np.where(prefix < self._rows,
                             self._table[current, safe_prefix, column], -1)
            rule2 = rest & (entry >= 0)
            nxt[rule2] = entry[rule2]
            # Rule 3 (rare case) / convergence jump, per leftover request.
            for i in np.flatnonzero(rest & ~rule2):
                fallback = self._rare_next_hop(int(current[i]), key_ints[i])
                nxt[i] = fallback if fallback >= 0 else roots[i]
        return nxt

    def _leaf_windows(self, current: np.ndarray):
        """Leaf-set members straight from the sorted live order.

        Returns the +-half window around each node (slots), the per-side
        keep mask (<= half nearest per side), the side flags, and the
        forward/backward clockwise distances.
        """
        n = self.live_count
        half = self.leaf_set_half_size
        width = 2 * half
        positions = self._positions()[current]
        offsets = np.concatenate([np.arange(1, half + 1), -np.arange(1, half + 1)])
        window = (positions[:, None] + offsets[None, :]) % n
        members = self._sorted_slots[window]
        reach = min(half, n - 1)
        valid = np.zeros(width, dtype=bool)
        steps = np.arange(1, half + 1)
        valid[:half] = steps <= n - 1
        valid[half:] = (steps <= n - 1) & (steps < n - reach)
        cur_limbs = self._ids_limbs[current][:, None, :]
        member_limbs = self._ids_limbs[members]
        fwd = cw_dist(cur_limbs, member_limbs)
        back = cw_dist(member_limbs, cur_limbs)
        is_larger = lex_le(fwd, HALF_RING_LIMBS[None, None, :])
        side_dist = np.where(is_larger[..., None], fwd, back)
        smaller = lex_lt(side_dist[:, None, :, :], side_dist[:, :, None, :])
        same_side = is_larger[:, :, None] == is_larger[:, None, :]
        rank = (smaller & same_side & valid[None, None, :]).sum(axis=2)
        kept = valid[None, :] & (rank < half)
        return members, kept, is_larger, fwd, back

    def _covers(self, members, kept, is_larger, fwd, back, key_limbs, rows):
        """The seed's ``LeafSet.covers``: key within the kept span."""
        small_kept = kept & ~is_larger
        large_kept = kept & is_larger
        has_both = small_kept.any(axis=1) & large_kept.any(axis=1)
        low_idx = lex_argmax([back[..., 2], back[..., 1], back[..., 0]],
                             axis=1, valid=small_kept)
        high_idx = lex_argmax([fwd[..., 2], fwd[..., 1], fwd[..., 0]],
                              axis=1, valid=large_kept)
        low = self._ids_limbs[members[rows, low_idx]]
        high = self._ids_limbs[members[rows, high_idx]]
        return has_both & lex_le(cw_dist(low, key_limbs), cw_dist(low, high))

    # -- the rare case, scalar ------------------------------------------------
    def _leaf_members_scalar(self, slot: int) -> List[int]:
        n = self.live_count
        half = self.leaf_set_half_size
        position = int(self._positions()[slot])
        owner = self.slot_id(slot)
        reach = min(half, n - 1)
        smaller: List[tuple] = []
        larger: List[tuple] = []
        seen = set()
        for step in range(1, half + 1):
            if step <= n - 1:
                seen.add(int(self._sorted_slots[(position + step) % n]))
            if step <= n - 1 and step < n - reach:
                seen.add(int(self._sorted_slots[(position - step) % n]))
        for candidate in seen:
            forward = (self.slot_id(candidate) - owner) % ID_SPACE
            if forward <= _HALF_RING_INT:
                larger.append((forward, candidate))
            else:
                smaller.append((ID_SPACE - forward, candidate))
        smaller.sort()
        larger.sort()
        return [s for _, s in smaller[:half]] + [s for _, s in larger[:half]]

    def _rare_next_hop(self, slot: int, key: int) -> int:
        """Pastry's third rule: any known node numerically closer to the key
        with at least as long a shared prefix.  Returns -1 for "converged"
        (the caller jumps to the root, as the seed does)."""
        owner = self.slot_id(slot)
        minimum = _shared_prefix_int(owner, key)
        delta = (owner - key) % ID_SPACE
        best_distance = min(delta, ID_SPACE - delta)
        best = -1
        pool: List[int] = []
        for entry in self._table[slot].reshape(-1):
            if entry >= 0 and _shared_prefix_int(self.slot_id(int(entry)), key) >= minimum:
                pool.append(int(entry))
        pool.extend(self._leaf_members_scalar(slot))
        for candidate in pool:
            delta = (self.slot_id(candidate) - key) % ID_SPACE
            candidate_distance = min(delta, ID_SPACE - delta)
            if candidate_distance < best_distance:
                best, best_distance = candidate, candidate_distance
        return best

    # -- accounting ------------------------------------------------------------
    def memory_footprint(self) -> Dict[str, int]:
        """Routing-column byte accounting (int32 slots, uint8 digits)."""
        out = self._base_footprint()
        out.update({
            "table_bytes": int(self._table.nbytes),
            "digit_bytes": int(self._digits.nbytes),
            "coord_bytes": int(self._coords.nbytes),
            "rows": int(self._rows),
        })
        out["total_bytes"] = (
            out["table_bytes"] + out["digit_bytes"] + out["coord_bytes"]
            + out["id_limbs_bytes"] + out["id_digest_bytes"] + out["sorted_view_bytes"]
        )
        out["bytes_per_node"] = out["total_bytes"] // max(1, self.live_count)
        return out


register_engine("pastry", PastryArrayRouter.from_network)
