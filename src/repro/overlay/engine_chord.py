"""Chord ring routing as columns over the same 160-bit id arrays.

The second engine behind the :class:`~repro.overlay.engine.OverlayRouting`
protocol: classic Chord with per-node successor lists (``(capacity, r)``
int32) and full 160-entry finger tables (``(capacity, 160)`` int32,
``finger[i] = successor(id + 2^i)``).  Fingers for the whole population are
built by one flattened ``np.searchsorted`` over the limb-added start
points; routing greedily forwards each request to the closest preceding
finger (ties impossible — candidates are distinct ids), finishing on the
key's successor, which is Chord's ownership rule (vs Pastry's numerically-
closest).  Expected hops ~ (log2 N)/2, against Pastry's ~log16 N — the
head-to-head the SNIPPETS churn experiment draws out.

Churn is patched incrementally, exactly:

* **leave/fail of x:** every finger entry pointing at x has its start in
  ``(pred(x), x]``, so its new successor is x's old successor — one masked
  scatter; the r predecessors' successor lists are recomputed from the
  sorted view.
* **join of x:** x's own fingers/successors are computed fresh; existing
  entries move to x iff they point at ``succ(x)`` *and* their start falls
  in ``(pred(x), x]`` (recomputed from the owners' ids + the power-of-two
  offsets) — ~160 entries in expectation, found with one mask.

Tiny rings (n <= r + 2) fall back to a full rebuild, which at that size is
cheaper than the patch bookkeeping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.overlay.engine import (
    ArrayRouterBase,
    BatchRouteResult,
    KeysLike,
    register_engine,
)
from repro.overlay.idmath import (
    add_mod,
    cw_dist,
    digests_from_limbs,
    is_zero,
    lex_argmax,
    lex_le,
    lex_lt,
    limbs_from_digests,
    limbs_from_ints,
)
from repro.overlay.ids import ID_BITS, IdLike
from repro.overlay.network import OverlayError
from repro.overlay.node import OverlayNode

#: Limb forms of 2^i for every finger index.
_POW2_LIMBS = limbs_from_ints([1 << i for i in range(ID_BITS)])


class ChordArrayRouter(ArrayRouterBase):
    """The Chord engine (see module docstring for semantics)."""

    name = "chord"

    def __init__(self, nodes: Sequence[OverlayNode], successor_count: int = 8,
                 max_route_hops: int = 128) -> None:
        super().__init__(nodes, max_route_hops=max_route_hops)
        self.successor_count = successor_count
        self._fingers = np.full((self._capacity, ID_BITS), -1, dtype=np.int32)
        self._succ = np.full((self._capacity, successor_count), -1, dtype=np.int32)
        self._rebuild_all()

    @classmethod
    def from_network(cls, network, **kwargs) -> "ChordArrayRouter":
        """Build the engine over a network's live population."""
        kwargs.setdefault("max_route_hops", network.max_route_hops)
        return cls(network.live_nodes(), **kwargs)

    def _grow_capacity(self, new_capacity: int) -> None:
        pad = new_capacity - self._capacity
        super()._grow_capacity(new_capacity)
        self._fingers = np.pad(self._fingers, ((0, pad), (0, 0)), constant_values=-1)
        self._succ = np.pad(self._succ, ((0, pad), (0, 0)), constant_values=-1)

    # -- construction ----------------------------------------------------------
    def _successor_lists_for(self, positions: np.ndarray) -> np.ndarray:
        """Successor lists (slots) for the nodes at ``positions`` in sorted order."""
        n = self.live_count
        r = self.successor_count
        steps = np.arange(1, r + 1)
        window = (positions[:, None] + steps[None, :]) % n
        lists = self._sorted_slots[window].astype(np.int32)
        if n - 1 < r:
            lists[:, n - 1:] = -1
        return lists

    def _fingers_for_slots(self, slots: np.ndarray) -> np.ndarray:
        """``finger[i] = successor(id + 2^i)`` for each slot, one searchsorted."""
        n = self.live_count
        starts = add_mod(self._ids_limbs[slots][:, None, :], _POW2_LIMBS[None, :, :])
        start_bytes = digests_from_limbs(starts.reshape(-1, 3))
        idx = np.searchsorted(self._sorted_bytes, start_bytes) % n
        return self._sorted_slots[idx].reshape(len(slots), ID_BITS).astype(np.int32)

    def _rebuild_all(self) -> None:
        self._fingers[:] = -1
        self._succ[:] = -1
        n = self.live_count
        if n == 0:
            return
        positions = np.arange(n)
        self._succ[self._sorted_slots] = self._successor_lists_for(positions)
        # Chunked so the temporary start digests stay ~13 MB even at 100k.
        for start in range(0, n, 4096):
            block = self._sorted_slots[start:start + 4096]
            self._fingers[block] = self._fingers_for_slots(block)

    # -- incremental churn patches --------------------------------------------
    def on_join(self, node: OverlayNode) -> None:
        value = int(node.node_id)
        slot = self._alloc_slot(value)
        self._fingers[slot] = -1
        self._succ[slot] = -1
        position = self._insert_sorted(slot)
        n = self.live_count
        if n <= self.successor_count + 2:
            self._rebuild_all()
            return
        succ_slot = int(self._sorted_slots[(position + 1) % n])
        pred_limbs = self._ids_limbs[self._sorted_slots[(position - 1) % n]]
        # The newcomer's own state.
        block = np.array([slot], dtype=np.int32)
        self._fingers[slot] = self._fingers_for_slots(block)[0]
        self._succ[slot] = self._successor_lists_for(np.array([position]))[0]
        # Predecessors' successor lists now include the newcomer.
        pred_positions = (position - np.arange(1, self.successor_count + 1)) % n
        self._succ[self._sorted_slots[pred_positions]] = (
            self._successor_lists_for(pred_positions))
        # Finger entries whose start falls in (pred, newcomer] move from the
        # old successor(start) -- the newcomer's successor -- to the newcomer.
        owner_rows, finger_cols = np.nonzero(self._fingers == succ_slot)
        if len(owner_rows):
            starts = add_mod(self._ids_limbs[owner_rows], _POW2_LIMBS[finger_cols])
            offset = cw_dist(pred_limbs[None, :], starts)
            span = cw_dist(pred_limbs, self._ids_limbs[slot])
            in_range = ~is_zero(offset) & lex_le(offset, span[None, :].reshape(1, 3))
            in_range = in_range.reshape(-1)
            self._fingers[owner_rows[in_range], finger_cols[in_range]] = slot

    def _on_departure(self, node_id: IdLike) -> None:
        slot = self._slot_of.get(int(node_id))
        if slot is None:
            return
        position = int(self._positions()[slot])
        self._remove_sorted(slot)
        n = self.live_count
        if n <= self.successor_count + 2:
            self._release_slot(slot)
            self._rebuild_all()
            return
        # successor(start) = x  =>  new successor = x's old successor.
        succ_slot = int(self._sorted_slots[position % n])
        self._fingers[self._fingers == slot] = succ_slot
        self._succ[self._succ == slot] = -1  # cleared; lists refilled below
        pred_positions = (position - 1 - np.arange(self.successor_count)) % n
        self._succ[self._sorted_slots[pred_positions]] = (
            self._successor_lists_for(pred_positions))
        self._fingers[slot] = -1
        self._succ[slot] = -1
        self._release_slot(slot)

    def on_leave(self, node_id: IdLike) -> None:
        self._on_departure(node_id)

    def on_fail(self, node_id: IdLike) -> None:
        self._on_departure(node_id)

    # -- batched routing -------------------------------------------------------
    def route_many(self, keys: KeysLike, starts: KeysLike,
                   collect_paths: bool = False) -> BatchRouteResult:
        key_bytes = self._normalize_keys(keys)
        count = len(key_bytes)
        key_limbs = limbs_from_digests(key_bytes)
        current = self._slots_for_starts(starts, count).copy()
        roots = self._successor_roots(key_bytes)
        hops = np.zeros(count, dtype=np.int32)
        paths: Optional[List[List[int]]] = None
        if collect_paths:
            paths = [[self.slot_id(int(slot))] for slot in current]
        active = current != roots
        rounds = 0
        while active.any():
            if rounds >= self.max_route_hops:
                raise OverlayError(
                    f"batched routing exceeded {self.max_route_hops} hops")
            rounds += 1
            subset = np.flatnonzero(active)
            nxt = self._next_hops(current[subset], key_limbs[subset])
            current[subset] = nxt
            hops[subset] += 1
            if paths is not None:
                for i, slot in zip(subset, nxt):
                    paths[i].append(self.slot_id(int(slot)))
            active[subset] = nxt != roots[subset]
        return BatchRouteResult(hops=hops, root_slots=roots, engine=self, paths=paths)

    def _next_hops(self, current: np.ndarray, key_limbs: np.ndarray) -> np.ndarray:
        count = len(current)
        nxt = np.empty(count, dtype=np.int32)
        # Chunked: candidate gathers are (chunk, 160 + r, 3) uint64.
        for start in range(0, count, 2048):
            sl = slice(start, start + 2048)
            cur = current[sl]
            cur_limbs = self._ids_limbs[cur]
            keys = key_limbs[sl]
            key_offset = cw_dist(cur_limbs, keys)
            successor = self._succ[cur, 0]
            succ_offset = cw_dist(cur_limbs, self._ids_limbs[successor])
            # key in (cur, successor] -> the successor owns it: final hop.
            finished = lex_le(key_offset, succ_offset)
            candidates = np.concatenate([self._fingers[cur], self._succ[cur]], axis=1)
            safe = np.where(candidates >= 0, candidates, 0)
            offsets = cw_dist(cur_limbs[:, None, :], self._ids_limbs[safe])
            preceding = ((candidates >= 0) & ~is_zero(offsets)
                         & lex_lt(offsets, key_offset[:, None, :]))
            best = lex_argmax([offsets[..., 2], offsets[..., 1], offsets[..., 0]],
                              axis=1, valid=preceding)
            rows = np.arange(len(cur))
            chosen = candidates[rows, best]
            has_preceding = preceding.any(axis=1)
            step = np.where(has_preceding, chosen, successor)
            nxt[sl] = np.where(finished, successor, step)
        return nxt

    # -- accounting ------------------------------------------------------------
    def memory_footprint(self) -> Dict[str, int]:
        """Routing-column byte accounting (int32 finger/successor slots)."""
        out = self._base_footprint()
        out.update({
            "finger_bytes": int(self._fingers.nbytes),
            "successor_bytes": int(self._succ.nbytes),
        })
        out["total_bytes"] = (
            out["finger_bytes"] + out["successor_bytes"]
            + out["id_limbs_bytes"] + out["id_digest_bytes"] + out["sorted_view_bytes"]
        )
        out["bytes_per_node"] = out["total_bytes"] // max(1, self.live_count)
        return out

    # -- invariants (exercised by the oracle tests) ----------------------------
    def successor_list_ids(self, node_id: IdLike) -> List[int]:
        """The node's successor list as ids (for invariant checks)."""
        slot = self._slot_of[int(node_id)]
        return [self.slot_id(int(s)) for s in self._succ[slot] if s >= 0]

    def finger_ids(self, node_id: IdLike) -> List[int]:
        """The node's 160 finger targets as ids (for invariant checks)."""
        slot = self._slot_of[int(node_id)]
        return [self.slot_id(int(s)) for s in self._fingers[slot]]


register_engine("chord", ChordArrayRouter.from_network)
