"""Fast DHT oracle view of the overlay.

The large-scale insertion experiments of the paper (1.2 M files over 10 000
nodes) charge the system per-lookup *costs* but do not depend on the exact
hop-by-hop path of each message -- only on which node every key resolves to,
which in a converged Pastry overlay is simply the live node numerically
closest to the key.  :class:`DHTView` provides that mapping through an
array-backed :class:`~repro.overlay.node_state.NodeArrayState`:

* :meth:`lookup` keeps the seed implementation (bisect over the sorted ids
  plus exact ring-distance comparison) -- it is the reference path the
  vectorized kernels are benchmarked against, and its per-call cost is the
  honest scalar baseline recorded in ``BENCH_insertion.json``;
* :meth:`lookup_many` / :meth:`resolve_digests` are the batched kernels: all
  keys are resolved with a single ``np.searchsorted`` over precomputed
  responsibility boundaries (no per-key distance math);
* capacity aggregates (:meth:`total_capacity`, :meth:`total_used`,
  :meth:`utilization`) are O(1), maintained incrementally by the state.

The result of :meth:`DHTView.lookup` is always identical to
:meth:`repro.overlay.network.OverlayNetwork.responsible_node`; tests assert
this equivalence, and ``tests/test_overlay_node_state.py`` asserts that the
vectorized kernels agree with :meth:`lookup` key-for-key.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List

import numpy as np

from repro.overlay.ids import ID_SPACE, NodeId, distance, key_for
from repro.overlay.network import OverlayNetwork
from repro.overlay.node import OverlayNode
from repro.overlay.node_state import NodeArrayState


class DHTView:
    """A sorted-ring index over the live nodes of an overlay."""

    def __init__(self, network: OverlayNetwork) -> None:
        self.network = network
        self.state = NodeArrayState()
        self.lookup_count = 0
        self.refresh()

    # -- maintenance ----------------------------------------------------------
    def refresh(self) -> None:
        """Rebuild the index from the overlay's current live population."""
        self.state.rebuild(self.network.live_nodes())

    def remove(self, node_id: NodeId) -> None:
        """Incrementally drop a node that failed or left."""
        self.state.remove(int(node_id))

    def add(self, node: OverlayNode) -> None:
        """Incrementally add a node that joined or recovered."""
        self.state.add(node)

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.state)

    @property
    def live_count(self) -> int:
        """Number of live nodes currently indexed."""
        return len(self.state)

    @property
    def _sorted_ids(self) -> List[int]:
        """The indexed node ids, ascending (kept for introspection/tests)."""
        return self.state.ids_int

    def lookup(self, key: NodeId) -> OverlayNode:
        """The live node numerically closest to ``key`` (the DHT root for the key).

        This is the seed scalar path, preserved verbatim so that
        ``vectorized=False`` pipelines measure the original per-lookup cost;
        the batched kernels below produce identical results.
        """
        sorted_ids = self.state.ids_int
        if not sorted_ids:
            raise LookupError("no live nodes in the DHT")
        self.lookup_count += 1
        value = int(key) % ID_SPACE
        index = bisect.bisect_left(sorted_ids, value)
        candidates = {
            sorted_ids[index % len(sorted_ids)],
            sorted_ids[(index - 1) % len(sorted_ids)],
        }
        best = min(candidates, key=lambda nid: (distance(nid, value), nid))
        return self.state.nodes[self.state.position(best)]

    def lookup_many(self, keys: Iterable[NodeId]) -> List[OverlayNode]:
        """Vectorised batch lookup: one ``searchsorted`` for the whole batch.

        Counts every key in :attr:`lookup_count`, exactly like issuing the
        lookups one by one.
        """
        key_list = [int(key) % ID_SPACE for key in keys]
        if not key_list:
            return []
        if not len(self.state):
            raise LookupError("no live nodes in the DHT")
        self.lookup_count += len(key_list)
        digests = b"".join(value.to_bytes(20, "big") for value in key_list)
        indices = self.state.lookup_digests(digests)
        nodes = self.state.nodes
        return [nodes[index] for index in indices]

    def locate_name(self, name: str, vectorized: bool = True) -> OverlayNode:
        """Resolve an object name to its responsible node, counting one lookup.

        The single place that owns the "scalar seed path vs boundary kernel"
        switch for by-name lookups: ``vectorized=True`` resolves through the
        array engine (counting the lookup only once it succeeded, matching
        :meth:`lookup`'s raise-before-count behaviour on an empty view);
        ``vectorized=False`` is exactly the seed :meth:`lookup` call.
        """
        if vectorized:
            # Raw int key (same value as ``key_for``) skips the NodeId
            # wrapper on the hot path -- one sha1 + from_bytes per lookup.
            state = self.state
            key = int.from_bytes(hashlib.sha1(name.encode("utf-8")).digest(), "big")
            node = state.nodes[state.lookup_index(key)]
            self.lookup_count += 1
            return node
        return self.lookup(key_for(name))

    def resolve_digests(self, digests, count: bool = True) -> np.ndarray:
        """Resolve raw 20-byte key digests to node indices (batch kernel).

        ``count=False`` skips the :attr:`lookup_count` accounting -- used by
        pipelines that resolve speculatively and charge lookups themselves to
        keep parity with the scalar retry accounting.
        """
        indices = self.state.lookup_digests(digests)
        if count:
            self.lookup_count += len(indices)
        return indices

    # -- routed-path access ----------------------------------------------------
    def attach_router(self, engine: str = "pastry", **kwargs):
        """Attach (or reuse) an array routing engine on the underlying network.

        Thin passthrough so pipelines that only hold a :class:`DHTView` can
        still opt into hop-accurate routed paths without reaching for the
        network object.  Returns the engine.
        """
        if self.network.router is not None and not kwargs:
            return self.network.router
        return self.network.attach_router(engine, **kwargs)

    def route(self, key: NodeId, start: NodeId):
        """Route a message on the underlying network (engine or seed tables)."""
        return self.network.route(key, start)

    def route_many(self, keys, starts=None, collect_paths: bool = False):
        """Batched routing on the underlying network (see ``OverlayNetwork.route_many``)."""
        return self.network.route_many(keys, starts, collect_paths=collect_paths)

    def successors(self, key: NodeId, count: int) -> List[OverlayNode]:
        """The ``count`` live nodes that follow ``key`` clockwise (CFS-style replica set)."""
        nodes = self.state.nodes
        return [nodes[index] for index in self.state.successor_indices(int(key), count)]

    def neighbors(self, node_id: NodeId, count: int) -> List[OverlayNode]:
        """The ``count`` live nodes numerically closest to ``node_id`` (excluding it).

        Used to pick replica targets "k-1 of its neighbors in the identifier
        space" (Section 4.4.1) and CAT replica holders.
        """
        nodes = self.state.nodes
        return [nodes[index] for index in self.state.neighbor_indices(int(node_id), count)]

    def immediate_neighbors(self, node_id: NodeId) -> List[OverlayNode]:
        """The immediate clockwise and counter-clockwise live neighbours of a node."""
        return self.neighbors(node_id, 2)

    def live_node_objects(self) -> List[OverlayNode]:
        """All live nodes in id order."""
        return list(self.state.nodes)

    # -- statistics --------------------------------------------------------------
    def total_capacity(self) -> int:
        """Total contributed capacity across indexed live nodes (bytes), O(1)."""
        return self.state.capacity_total

    def total_used(self) -> int:
        """Total consumed space across indexed live nodes (bytes), O(1)."""
        return self.state.used_total

    def utilization(self) -> float:
        """Used / capacity over the indexed live nodes, O(1)."""
        return self.state.utilization()

    def free_space_array(self) -> np.ndarray:
        """Free bytes per live node (in id order), for vectorised analyses."""
        return self.state.free_space_array()
