"""Fast DHT oracle view of the overlay.

The large-scale insertion experiments of the paper (1.2 M files over 10 000
nodes) charge the system per-lookup *costs* but do not depend on the exact
hop-by-hop path of each message -- only on which node every key resolves to,
which in a converged Pastry overlay is simply the live node numerically
closest to the key.  :class:`DHTView` provides that mapping in O(log N) per
lookup by keeping the live node ids in a sorted array (NumPy ``searchsorted``),
together with the neighbour/replica-set queries the storage system needs.

The result of :meth:`DHTView.lookup` is always identical to
:meth:`repro.overlay.network.OverlayNetwork.responsible_node`; tests assert
this equivalence.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.overlay.ids import ID_SPACE, NodeId, distance
from repro.overlay.network import OverlayNetwork
from repro.overlay.node import OverlayNode


class DHTView:
    """A sorted-ring index over the live nodes of an overlay."""

    def __init__(self, network: OverlayNetwork) -> None:
        self.network = network
        self._sorted_ids: List[int] = []
        self._id_to_node: Dict[int, OverlayNode] = {}
        self.lookup_count = 0
        self.refresh()

    # -- maintenance ----------------------------------------------------------
    def refresh(self) -> None:
        """Rebuild the index from the overlay's current live population."""
        live = self.network.live_nodes()
        self._id_to_node = {int(node.node_id): node for node in live}
        self._sorted_ids = sorted(self._id_to_node)

    def remove(self, node_id: NodeId) -> None:
        """Incrementally drop a node that failed or left."""
        value = int(node_id)
        if value in self._id_to_node:
            del self._id_to_node[value]
            index = bisect.bisect_left(self._sorted_ids, value)
            if index < len(self._sorted_ids) and self._sorted_ids[index] == value:
                del self._sorted_ids[index]

    def add(self, node: OverlayNode) -> None:
        """Incrementally add a node that joined or recovered."""
        value = int(node.node_id)
        if value not in self._id_to_node:
            self._id_to_node[value] = node
            bisect.insort(self._sorted_ids, value)

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sorted_ids)

    @property
    def live_count(self) -> int:
        """Number of live nodes currently indexed."""
        return len(self._sorted_ids)

    def lookup(self, key: NodeId) -> OverlayNode:
        """The live node numerically closest to ``key`` (the DHT root for the key)."""
        if not self._sorted_ids:
            raise LookupError("no live nodes in the DHT")
        self.lookup_count += 1
        value = int(key) % ID_SPACE
        index = bisect.bisect_left(self._sorted_ids, value)
        candidates = {
            self._sorted_ids[index % len(self._sorted_ids)],
            self._sorted_ids[(index - 1) % len(self._sorted_ids)],
        }
        best = min(candidates, key=lambda nid: (distance(nid, value), nid))
        return self._id_to_node[best]

    def lookup_many(self, keys: Iterable[NodeId]) -> List[OverlayNode]:
        """Vectorised convenience wrapper over :meth:`lookup`."""
        return [self.lookup(key) for key in keys]

    def successors(self, key: NodeId, count: int) -> List[OverlayNode]:
        """The ``count`` live nodes that follow ``key`` clockwise (CFS-style replica set)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if not self._sorted_ids:
            raise LookupError("no live nodes in the DHT")
        value = int(key) % ID_SPACE
        start = bisect.bisect_left(self._sorted_ids, value)
        result: List[OverlayNode] = []
        size = len(self._sorted_ids)
        for offset in range(min(count, size)):
            node_id = self._sorted_ids[(start + offset) % size]
            result.append(self._id_to_node[node_id])
        return result

    def neighbors(self, node_id: NodeId, count: int) -> List[OverlayNode]:
        """The ``count`` live nodes numerically closest to ``node_id`` (excluding it).

        Used to pick replica targets "k-1 of its neighbors in the identifier
        space" (Section 4.4.1) and CAT replica holders.
        """
        if count <= 0:
            return []
        if not self._sorted_ids:
            raise LookupError("no live nodes in the DHT")
        value = int(node_id) % ID_SPACE
        index = bisect.bisect_left(self._sorted_ids, value)
        size = len(self._sorted_ids)
        seen: set[int] = {value}
        candidates: List[int] = []
        # Walk outwards alternately on both sides; enough to cover `count`.
        for step in range(1, min(size, count * 2 + 2) + 1):
            for candidate in (
                self._sorted_ids[(index + step - 1) % size],
                self._sorted_ids[(index - step) % size],
            ):
                if candidate not in seen:
                    seen.add(candidate)
                    candidates.append(candidate)
        candidates.sort(key=lambda nid: (distance(nid, value), nid))
        return [self._id_to_node[nid] for nid in candidates[:count]]

    def immediate_neighbors(self, node_id: NodeId) -> List[OverlayNode]:
        """The immediate clockwise and counter-clockwise live neighbours of a node."""
        return self.neighbors(node_id, 2)

    def live_node_objects(self) -> List[OverlayNode]:
        """All live nodes in id order."""
        return [self._id_to_node[nid] for nid in self._sorted_ids]

    # -- statistics --------------------------------------------------------------
    def total_capacity(self) -> int:
        """Total contributed capacity across indexed live nodes (bytes)."""
        return sum(node.capacity for node in self._id_to_node.values())

    def total_used(self) -> int:
        """Total consumed space across indexed live nodes (bytes)."""
        return sum(node.used for node in self._id_to_node.values())

    def utilization(self) -> float:
        """Used / capacity over the indexed live nodes."""
        capacity = self.total_capacity()
        return (self.total_used() / capacity) if capacity else 0.0

    def free_space_array(self) -> np.ndarray:
        """Free bytes per live node (in id order), for vectorised analyses."""
        return np.asarray([node.free for node in self.live_node_objects()], dtype=np.int64)
