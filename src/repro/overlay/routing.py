"""Pastry prefix routing table with proximity-aware entries.

A Pastry routing table has one row per shared-prefix length and one column per
identifier digit.  Entry ``(row, column)`` holds a node whose id shares the
first ``row`` digits with the owner and whose ``row``-th digit equals
``column``.  Among equally suitable candidates, Pastry keeps the one that is
*closest by the proximity metric* (network latency); the paper's multicast
tree construction (Section 4.4.1) explicitly exploits this property, so the
reproduction keeps per-entry proximity as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.overlay.ids import BITS_PER_DIGIT, DIGITS, NodeId


@dataclass(frozen=True)
class RoutingEntry:
    """A routing-table slot: the node id it points at and its proximity."""

    node_id: NodeId
    proximity: float


class RoutingTable:
    """The prefix routing table of one overlay node."""

    ROWS = DIGITS
    COLUMNS = 1 << BITS_PER_DIGIT

    def __init__(self, owner: NodeId) -> None:
        self.owner = owner
        # Sparse representation: {(row, column): RoutingEntry}
        self._entries: Dict[Tuple[int, int], RoutingEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[RoutingEntry]:
        """Iterate over all populated entries."""
        return iter(self._entries.values())

    def slot_for(self, node_id: NodeId) -> Optional[Tuple[int, int]]:
        """The (row, column) slot a node id belongs to, or None for the owner itself."""
        if node_id == self.owner:
            return None
        row = self.owner.shared_prefix_length(node_id)
        column = node_id.digit(row)
        return (row, column)

    def get(self, row: int, column: int) -> Optional[RoutingEntry]:
        """The entry at (row, column), if populated."""
        return self._entries.get((row, column))

    def consider(self, node_id: NodeId, proximity: float) -> bool:
        """Offer a node for inclusion; keep it if the slot is empty or it is closer.

        Returns True if the table changed.
        """
        slot = self.slot_for(node_id)
        if slot is None:
            return False
        current = self._entries.get(slot)
        if current is None or proximity < current.proximity or (
            proximity == current.proximity and node_id < current.node_id
        ):
            self._entries[slot] = RoutingEntry(node_id=node_id, proximity=proximity)
            return True
        return False

    def remove(self, node_id: NodeId) -> bool:
        """Remove a (failed) node from the table.  Returns True if it was present."""
        slot = self.slot_for(node_id)
        if slot is None:
            return False
        current = self._entries.get(slot)
        if current is not None and current.node_id == node_id:
            del self._entries[slot]
            return True
        return False

    def next_hop(self, key: NodeId) -> Optional[NodeId]:
        """Pastry's primary routing rule: the entry matching one more digit of ``key``."""
        row = self.owner.shared_prefix_length(key)
        if row >= self.ROWS:
            return None
        column = key.digit(row)
        entry = self._entries.get((row, column))
        return entry.node_id if entry is not None else None

    def candidates_with_longer_or_equal_prefix(self, key: NodeId) -> List[NodeId]:
        """Fallback candidates: entries sharing at least as long a prefix with ``key``.

        Used by the "rare case" rule of Pastry routing when the primary entry
        is missing: forward to any known node that is numerically closer to the
        key than the present node and shares at least as long a prefix.
        """
        minimum = self.owner.shared_prefix_length(key)
        result: List[NodeId] = []
        for entry in self._entries.values():
            if entry.node_id.shared_prefix_length(key) >= minimum:
                result.append(entry.node_id)
        return result

    def closest_by_proximity(self, count: int, exclude: Callable[[NodeId], bool] | None = None) -> List[RoutingEntry]:
        """The ``count`` entries with smallest proximity (used for multicast trees)."""
        entries = [
            entry
            for entry in self._entries.values()
            if exclude is None or not exclude(entry.node_id)
        ]
        entries.sort(key=lambda entry: (entry.proximity, int(entry.node_id)))
        return entries[:count]

    def known_nodes(self) -> List[NodeId]:
        """All node ids present in the table."""
        return [entry.node_id for entry in self._entries.values()]
