"""The shared identifier space of nodes and keys.

Pastry assigns every node a 128-bit id and every object a key in the same
space; PAST and the paper's system both derive keys by hashing names with
SHA-1 (160 bits).  We use a 160-bit space throughout so that ``SHA-1(name)``
is directly a key, as in the paper (Section 4.1: "a unique identifier (UID)
for the chunk is first calculated by performing SHA-1 hash on the chunk
name").

Identifiers are plain Python integers in ``[0, 2**160)`` wrapped in a tiny
value type for readability; all arithmetic is modular ("ring") arithmetic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

#: Number of bits in the identifier space (SHA-1 output size).
ID_BITS: int = 160

#: Size of the identifier space.
ID_SPACE: int = 1 << ID_BITS

#: Digits per identifier when interpreted in base ``2**BITS_PER_DIGIT``
#: (Pastry's configuration parameter ``b``; b=4 gives hexadecimal digits).
BITS_PER_DIGIT: int = 4
DIGITS: int = ID_BITS // BITS_PER_DIGIT


@dataclass(frozen=True, order=True)
class NodeId:
    """An identifier on the ring (used for both node ids and object keys)."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < ID_SPACE:
            raise ValueError(f"identifier out of range: {self.value!r}")

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def hex(self) -> str:
        """Fixed-width hexadecimal rendering (40 hex digits)."""
        return f"{self.value:0{DIGITS}x}"

    def digit(self, position: int) -> int:
        """The ``position``-th most significant base-16 digit (Pastry b=4)."""
        if not 0 <= position < DIGITS:
            raise ValueError(f"digit position out of range: {position}")
        shift = (DIGITS - 1 - position) * BITS_PER_DIGIT
        return (self.value >> shift) & ((1 << BITS_PER_DIGIT) - 1)

    def shared_prefix_length(self, other: "NodeId") -> int:
        """Number of leading base-16 digits shared with ``other``."""
        for position in range(DIGITS):
            if self.digit(position) != other.digit(position):
                return position
        return DIGITS

    def __repr__(self) -> str:
        return f"NodeId(0x{self.hex()[:10]}…)"


IdLike = Union[NodeId, int]


def _as_int(identifier: IdLike) -> int:
    return int(identifier) % ID_SPACE


def node_id_from_int(value: int) -> NodeId:
    """Wrap an integer (reduced modulo the ring size) as a :class:`NodeId`."""
    return NodeId(value % ID_SPACE)


def key_for(name: Union[str, bytes]) -> NodeId:
    """SHA-1 hash of a name, as an identifier (the paper's UID construction)."""
    data = name.encode("utf-8") if isinstance(name, str) else bytes(name)
    digest = hashlib.sha1(data).digest()
    return NodeId(int.from_bytes(digest, "big"))


def random_node_id(rng: np.random.Generator) -> NodeId:
    """A uniformly random identifier (Pastry's random nodeId assignment)."""
    # Draw 160 bits as 20 bytes for exact uniformity over the ring.
    raw = rng.bytes(ID_BITS // 8)
    return NodeId(int.from_bytes(raw, "big"))


def distance(a: IdLike, b: IdLike) -> int:
    """Minimal ring distance between two identifiers."""
    delta = (_as_int(a) - _as_int(b)) % ID_SPACE
    return min(delta, ID_SPACE - delta)


def clockwise_distance(a: IdLike, b: IdLike) -> int:
    """Distance travelling clockwise (increasing ids) from ``a`` to ``b``."""
    return (_as_int(b) - _as_int(a)) % ID_SPACE


def ring_between(low: IdLike, target: IdLike, high: IdLike) -> bool:
    """Whether ``target`` lies in the clockwise arc ``(low, high]``."""
    low_int, target_int, high_int = _as_int(low), _as_int(target), _as_int(high)
    if low_int == high_int:
        return True
    return clockwise_distance(low_int, target_int) <= clockwise_distance(low_int, high_int) and target_int != low_int


def numerically_closest(target: IdLike, candidates: Iterable[IdLike]) -> int:
    """The candidate id numerically closest to ``target`` on the ring.

    Ties are broken towards the clockwise (higher-id) side, matching the
    deterministic tie-break used by :class:`repro.overlay.dht.DHTView`.
    """
    target_int = _as_int(target)
    best: int | None = None
    best_key: tuple[int, int] | None = None
    for candidate in candidates:
        candidate_int = _as_int(candidate)
        key = (distance(candidate_int, target_int), clockwise_distance(target_int, candidate_int))
        if best_key is None or key < best_key:
            best, best_key = candidate_int, key
    if best is None:
        raise ValueError("no candidates supplied")
    return best
