"""Vectorized 160-bit ring arithmetic over numpy limb arrays.

The overlay identifier space is the 160-bit SHA-1 ring
(:data:`repro.overlay.ids.ID_SPACE`).  Python integers handle single ids
fine, but the array routing engines (:mod:`repro.overlay.engine_pastry`,
:mod:`repro.overlay.engine_chord`) need ring distances, comparisons and
argmins over whole batches at once.  This module represents each id as
three little-endian ``uint64`` limbs (limb 0 = least significant 64 bits,
limb 2 holds the top 32 bits) stored on the last axis of a ``(..., 3)``
array, and implements exact modular arithmetic with explicit carry/borrow
propagation — no floats, no precision loss, bit-identical to the scalar
``int`` math in :mod:`repro.overlay.ids`.

Conventions:

* ``limbs``: ``(..., 3)`` ``uint64`` arrays, little-endian limb order.
* ``digests``: ``(n,)`` ``S20`` byte strings (big-endian SHA-1 digests) or
  ``(n, 20)`` ``uint8`` views of the same.
* ``digits``: ``(n, 40)`` ``uint8`` nibble matrices, most significant digit
  first — the layout :meth:`repro.overlay.ids.NodeId.digit` uses.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.overlay.ids import ID_SPACE

#: Number of 64-bit limbs per 160-bit id.
LIMB_COUNT = 3

_U64 = np.uint64
_MASK64 = (1 << 64) - 1
#: The top limb only carries bits 128..159.
_TOP_MASK = _U64(0xFFFFFFFF)

#: Half the ring (2^159) as limbs — the clockwise/counter-clockwise divide.
HALF_RING_LIMBS = np.array([0, 0, 1 << 31], dtype=np.uint64)


def limbs_from_ints(values: Sequence[int]) -> np.ndarray:
    """Python ints -> ``(n, 3)`` little-endian limb array."""
    out = np.empty((len(values), LIMB_COUNT), dtype=np.uint64)
    for i, value in enumerate(values):
        value %= ID_SPACE
        out[i, 0] = value & _MASK64
        out[i, 1] = (value >> 64) & _MASK64
        out[i, 2] = value >> 128
    return out


def int_from_limbs(limbs: np.ndarray) -> int:
    """One ``(3,)`` limb row -> Python int."""
    return int(limbs[0]) | (int(limbs[1]) << 64) | (int(limbs[2]) << 128)


def digest_bytes_matrix(digests: np.ndarray) -> np.ndarray:
    """``(n,)`` S20 digests -> ``(n, 20)`` uint8 (no copy when contiguous)."""
    arr = np.ascontiguousarray(digests)
    return arr.view(np.uint8).reshape(len(arr), 20)


def limbs_from_digests(digests: np.ndarray) -> np.ndarray:
    """``(n,)`` S20 (or ``(n, 20)`` uint8) big-endian digests -> limbs."""
    if digests.dtype != np.uint8:
        byte_rows = digest_bytes_matrix(digests)
    else:
        byte_rows = digests
    n = len(byte_rows)
    wide = byte_rows.astype(np.uint64)
    out = np.zeros((n, LIMB_COUNT), dtype=np.uint64)
    for j in range(4):  # bytes 0..3 -> limb 2 (most significant 32 bits)
        out[:, 2] = (out[:, 2] << _U64(8)) | wide[:, j]
    for j in range(4, 12):  # bytes 4..11 -> limb 1
        out[:, 1] = (out[:, 1] << _U64(8)) | wide[:, j]
    for j in range(12, 20):  # bytes 12..19 -> limb 0
        out[:, 0] = (out[:, 0] << _U64(8)) | wide[:, j]
    return out


def digests_from_limbs(limbs: np.ndarray) -> np.ndarray:
    """``(n, 3)`` limbs -> ``(n,)`` S20 big-endian digests."""
    n = len(limbs)
    byte_rows = np.empty((n, 20), dtype=np.uint8)
    for j in range(4):
        byte_rows[:, j] = (limbs[:, 2] >> _U64(8 * (3 - j))).astype(np.uint8)
    for j in range(4, 12):
        byte_rows[:, j] = (limbs[:, 1] >> _U64(8 * (11 - j))).astype(np.uint8)
    for j in range(12, 20):
        byte_rows[:, j] = (limbs[:, 0] >> _U64(8 * (19 - j))).astype(np.uint8)
    return np.ascontiguousarray(byte_rows).view("S20").reshape(n)


def digits_from_digests(digests: np.ndarray) -> np.ndarray:
    """``(n,)`` S20 digests -> ``(n, 40)`` uint8 nibble matrix (MSD first)."""
    byte_rows = digest_bytes_matrix(digests)
    out = np.empty((len(byte_rows), 40), dtype=np.uint8)
    out[:, 0::2] = byte_rows >> 4
    out[:, 1::2] = byte_rows & 0x0F
    return out


def sub_mod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(a - b) mod 2^160`` on limb arrays (broadcasts leading axes)."""
    a0, a1, a2 = a[..., 0], a[..., 1], a[..., 2]
    b0, b1, b2 = b[..., 0], b[..., 1], b[..., 2]
    d0 = a0 - b0
    borrow0 = (a0 < b0).astype(np.uint64)
    d1 = a1 - b1 - borrow0
    borrow1 = ((a1 < b1) | ((a1 == b1) & borrow0.astype(bool))).astype(np.uint64)
    d2 = (a2 - b2 - borrow1) & _TOP_MASK
    return np.stack([d0, d1, d2], axis=-1)


def add_mod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(a + b) mod 2^160`` on limb arrays (broadcasts leading axes)."""
    a0, a1, a2 = a[..., 0], a[..., 1], a[..., 2]
    b0, b1, b2 = b[..., 0], b[..., 1], b[..., 2]
    s0 = a0 + b0
    carry0 = s0 < a0
    t1 = a1 + b1
    s1 = t1 + carry0.astype(np.uint64)
    carry1 = ((t1 < a1) | (s1 < t1)).astype(np.uint64)
    s2 = (a2 + b2 + carry1) & _TOP_MASK
    return np.stack([s0, s1, s2], axis=-1)


def lex_lt(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a < b`` as 160-bit integers (limb-lexicographic compare)."""
    a0, a1, a2 = a[..., 0], a[..., 1], a[..., 2]
    b0, b1, b2 = b[..., 0], b[..., 1], b[..., 2]
    return (a2 < b2) | ((a2 == b2) & ((a1 < b1) | ((a1 == b1) & (a0 < b0))))


def lex_le(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a <= b`` as 160-bit integers."""
    return ~lex_lt(b, a)


def is_zero(a: np.ndarray) -> np.ndarray:
    """Elementwise ``a == 0`` over the limb axis."""
    return (a[..., 0] == 0) & (a[..., 1] == 0) & (a[..., 2] == 0)


def cw_dist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Clockwise ring distance from ``a`` to ``b`` (``(b - a) mod 2^160``)."""
    return sub_mod(b, a)


def ring_dist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Minimal ring distance ``min(|a-b|, 2^160 - |a-b|)`` as limbs."""
    forward = sub_mod(b, a)
    backward = sub_mod(a, b)
    take_forward = lex_lt(forward, backward)
    return np.where(take_forward[..., None], forward, backward)


def _sentinel_for(arr: np.ndarray, largest: bool) -> float:
    if np.issubdtype(arr.dtype, np.floating):
        return np.inf if largest else -np.inf
    info = np.iinfo(arr.dtype)
    return info.max if largest else info.min


def lex_argmin(keys: Sequence[np.ndarray], axis: int = -1,
               valid: Optional[np.ndarray] = None) -> np.ndarray:
    """Argmin along ``axis`` by lexicographic key order, first index on ties.

    ``keys`` is an ordered sequence of same-shape arrays (mixed dtypes are
    fine); ``valid`` masks out candidates.  Rows with no valid candidate
    return index 0 — callers must guarantee at least one valid entry.
    """
    mask = np.ones(np.broadcast_shapes(*(k.shape for k in keys)), dtype=bool)
    if valid is not None:
        mask &= valid
    for key in keys:
        key = np.broadcast_to(key, mask.shape)
        masked = np.where(mask, key, _sentinel_for(key, largest=True))
        best = masked.min(axis=axis, keepdims=True)
        mask &= masked == best
    return np.argmax(mask, axis=axis)


def lex_argmax(keys: Sequence[np.ndarray], axis: int = -1,
               valid: Optional[np.ndarray] = None) -> np.ndarray:
    """Argmax along ``axis`` by lexicographic key order, first index on ties."""
    mask = np.ones(np.broadcast_shapes(*(k.shape for k in keys)), dtype=bool)
    if valid is not None:
        mask &= valid
    for key in keys:
        key = np.broadcast_to(key, mask.shape)
        masked = np.where(mask, key, _sentinel_for(key, largest=False))
        best = masked.max(axis=axis, keepdims=True)
        mask &= masked == best
    return np.argmax(mask, axis=axis)
