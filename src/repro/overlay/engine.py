"""Pluggable array-backed overlay routing: protocol, registry, shared base.

The seed keeps per-node Python objects (:class:`~repro.overlay.node.LeafSet`,
:class:`~repro.overlay.routing.RoutingTable`) and builds them with O(N^2)
pairwise ``consider()`` calls — fine at a few hundred nodes, infeasible at
10k+.  The array engines in :mod:`repro.overlay.engine_pastry` and
:mod:`repro.overlay.engine_chord` replace that state with dense numpy
columns over the same 160-bit id space and resolve whole request batches
per hop (:meth:`OverlayRouting.route_many`).

This module holds what both engines share:

* :class:`OverlayRouting` — the small protocol an engine implements so
  :class:`~repro.overlay.network.OverlayNetwork` can dispatch to it
  (``attach_router``) and forward join/leave/fail churn as incremental
  patches (no full rebuilds on churn);
* :class:`ArrayRouterBase` — stable node *slots* (append-only with a free
  list, so table cells stay valid across churn), the id limb/byte columns,
  and the sorted live-id view used for batched root resolution;
* the engine registry (:func:`register_engine` / :func:`make_router`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Union, runtime_checkable

import numpy as np

from repro.overlay.idmath import LIMB_COUNT, lex_lt, limbs_from_digests, ring_dist
from repro.overlay.ids import ID_SPACE, IdLike, NodeId, node_id_from_int
from repro.overlay.network import OverlayError, RouteResult
from repro.overlay.node import OverlayNode

KeysLike = Union[np.ndarray, Sequence[IdLike]]


@runtime_checkable
class OverlayRouting(Protocol):
    """What an attachable overlay routing engine provides.

    ``name`` identifies the engine ("pastry", "chord", ...).  The churn
    hooks receive the same join/leave/fail events
    :class:`~repro.overlay.node_state.NodeArrayState` already consumes and
    must apply incremental patches, never full rebuilds.
    """

    name: str

    def route(self, key: IdLike, start: IdLike) -> RouteResult:
        """Route one key hop by hop from ``start``."""
        ...  # pragma: no cover - protocol

    def route_many(self, keys: KeysLike, starts: KeysLike,
                   collect_paths: bool = False) -> "BatchRouteResult":
        """Resolve a whole batch of lookups, one vectorized pass per hop."""
        ...  # pragma: no cover - protocol

    def on_join(self, node: OverlayNode) -> None:
        """Incremental patch for a newly joined node."""
        ...  # pragma: no cover - protocol

    def on_leave(self, node_id: NodeId) -> None:
        """Incremental patch for a graceful departure."""
        ...  # pragma: no cover - protocol

    def on_fail(self, node_id: NodeId) -> None:
        """Incremental patch for an abrupt failure."""
        ...  # pragma: no cover - protocol

    def memory_footprint(self) -> Dict[str, int]:
        """Bytes per routing column (the budget the bench asserts)."""
        ...  # pragma: no cover - protocol


@dataclass
class BatchRouteResult:
    """Outcome of :meth:`OverlayRouting.route_many`.

    ``hops`` and ``root_slots`` are per-request arrays; ``paths`` (only
    when requested) holds per-request node-id ints including start and
    root.  Slots are engine-internal — use :meth:`root_ids` for ids.
    """

    hops: np.ndarray
    root_slots: np.ndarray
    engine: Optional["ArrayRouterBase"] = field(default=None)
    paths: Optional[List[List[int]]] = field(default=None)
    #: Explicit per-request root ids (set by the scalar dispatch fallback,
    #: which has no slot table to resolve ``root_slots`` against).
    roots: Optional[List[int]] = field(default=None)

    def root_ids(self) -> List[int]:
        """The responsible node id (as int) per request."""
        if self.roots is not None:
            return list(self.roots)
        assert self.engine is not None
        return [self.engine.slot_id(int(slot)) for slot in self.root_slots]

    @property
    def mean_hops(self) -> float:
        """Average hop count over the batch."""
        return float(self.hops.mean()) if len(self.hops) else 0.0


def _id_digest(value: int) -> bytes:
    return int(value).to_bytes(20, "big")


class ArrayRouterBase:
    """Slot bookkeeping + sorted live view shared by the array engines.

    Slots are *stable*: a node keeps its slot for its whole life, freed
    slots are recycled only after every reference to them has been patched
    out.  (The sorted indices of
    :class:`~repro.overlay.node_state.NodeArrayState` shift on insert,
    which is fine for searchsorted lookups but would invalidate stored
    table cells — hence the indirection through ``_sorted_slots``.)
    """

    name = "base"

    def __init__(self, nodes: Sequence[OverlayNode], max_route_hops: int = 128) -> None:
        self.max_route_hops = max_route_hops
        live = [node for node in nodes if node.alive]
        n = len(live)
        self._capacity = max(8, n + max(16, n // 8))
        self._ids_limbs = np.zeros((self._capacity, LIMB_COUNT), dtype=np.uint64)
        self._ids_bytes = np.zeros(self._capacity, dtype="S20")
        self._alive = np.zeros(self._capacity, dtype=bool)
        self._slot_ids: List[int] = [0] * self._capacity
        self._slot_of: Dict[int, int] = {}
        self._free: List[int] = []
        for slot, node in enumerate(live):
            value = int(node.node_id)
            self._slot_ids[slot] = value
            self._slot_of[value] = slot
            self._ids_bytes[slot] = _id_digest(value)
        self._alive[:n] = True
        self._top = n  # high-water mark of ever-allocated slots
        if n:
            self._ids_limbs[:n] = limbs_from_digests(self._ids_bytes[:n])
        order = np.argsort(self._ids_bytes[:n], kind="stable")
        self._sorted_bytes = self._ids_bytes[:n][order].copy()
        self._sorted_slots = order.astype(np.int32)
        self._pos = np.zeros(self._capacity, dtype=np.int64)
        self._pos_dirty = True

    @property
    def live_count(self) -> int:
        """Number of live nodes the engine currently tracks."""
        return len(self._sorted_slots)

    def slot_id(self, slot: int) -> int:
        """The node id (int) occupying ``slot``."""
        return self._slot_ids[slot]

    # -- slot management ------------------------------------------------------
    def _grow_capacity(self, new_capacity: int) -> None:
        pad = new_capacity - self._capacity
        self._ids_limbs = np.pad(self._ids_limbs, ((0, pad), (0, 0)))
        self._ids_bytes = np.pad(self._ids_bytes, (0, pad))
        self._alive = np.pad(self._alive, (0, pad))
        self._slot_ids.extend([0] * pad)
        self._pos = np.zeros(new_capacity, dtype=np.int64)
        self._pos_dirty = True
        self._capacity = new_capacity

    def _alloc_slot(self, value: int) -> int:
        if self._free:
            slot = self._free.pop()
        else:
            if self._top >= self._capacity:
                self._grow_capacity(self._capacity * 2)
            slot = self._top
            self._top += 1
        self._slot_ids[slot] = value
        self._slot_of[value] = slot
        self._ids_bytes[slot] = _id_digest(value)
        self._ids_limbs[slot] = limbs_from_digests(self._ids_bytes[slot:slot + 1])[0]
        self._alive[slot] = True
        return slot

    def _release_slot(self, slot: int) -> None:
        self._slot_of.pop(self._slot_ids[slot], None)
        self._alive[slot] = False
        self._free.append(slot)

    def _insert_sorted(self, slot: int) -> int:
        idx = int(np.searchsorted(self._sorted_bytes, self._ids_bytes[slot:slot + 1])[0])
        self._sorted_bytes = np.insert(self._sorted_bytes, idx, self._ids_bytes[slot])
        self._sorted_slots = np.insert(self._sorted_slots, idx, np.int32(slot))
        self._pos_dirty = True
        return idx

    def _remove_sorted(self, slot: int) -> int:
        idx = int(np.searchsorted(self._sorted_bytes, self._ids_bytes[slot:slot + 1])[0])
        if idx >= len(self._sorted_slots) or self._sorted_slots[idx] != slot:
            raise OverlayError(f"router state desync removing slot {slot}")
        self._sorted_bytes = np.delete(self._sorted_bytes, idx)
        self._sorted_slots = np.delete(self._sorted_slots, idx)
        self._pos_dirty = True
        return idx

    def _positions(self) -> np.ndarray:
        if self._pos_dirty:
            self._pos[self._sorted_slots] = np.arange(len(self._sorted_slots))
            self._pos_dirty = False
        return self._pos

    # -- key / start normalization -------------------------------------------
    def _normalize_keys(self, keys: KeysLike) -> np.ndarray:
        if isinstance(keys, np.ndarray) and keys.dtype.kind == "S":
            return np.ascontiguousarray(keys).astype("S20")
        return np.array([_id_digest(int(key) % ID_SPACE) for key in keys], dtype="S20")

    def _slots_for_starts(self, starts: KeysLike, count: int) -> np.ndarray:
        if isinstance(starts, (int, NodeId)):
            starts = [starts] * count
        out = np.empty(count, dtype=np.int32)
        if len(starts) != count:
            raise OverlayError("starts length must match keys length")
        for i, start in enumerate(starts):
            slot = self._slot_of.get(int(start))
            if slot is None:
                raise OverlayError(f"routing from an unknown or failed node: {start!r}")
            out[i] = slot
        return out

    # -- batched root resolution ----------------------------------------------
    def _pastry_roots(self, key_bytes: np.ndarray, key_limbs: np.ndarray) -> np.ndarray:
        """Responsible node per key: numerically closest live id, ties to the
        smaller id — exactly :meth:`OverlayNetwork.responsible_node`."""
        n = len(self._sorted_slots)
        if n == 0:
            raise OverlayError("no live nodes in the overlay")
        idx = np.searchsorted(self._sorted_bytes, key_bytes)
        right = self._sorted_slots[idx % n]
        left = self._sorted_slots[(idx - 1) % n]
        right_dist = ring_dist(self._ids_limbs[right], key_limbs)
        left_dist = ring_dist(self._ids_limbs[left], key_limbs)
        left_closer = lex_lt(left_dist, right_dist)
        tied = ~left_closer & ~lex_lt(right_dist, left_dist)
        smaller_id = lex_lt(self._ids_limbs[left], self._ids_limbs[right])
        take_left = left_closer | (tied & smaller_id)
        return np.where(take_left, left, right).astype(np.int32)

    def _successor_roots(self, key_bytes: np.ndarray) -> np.ndarray:
        """Chord ownership: the first live id >= key (wrapping)."""
        n = len(self._sorted_slots)
        if n == 0:
            raise OverlayError("no live nodes in the overlay")
        idx = np.searchsorted(self._sorted_bytes, key_bytes) % n
        return self._sorted_slots[idx].astype(np.int32)

    # -- scalar convenience ----------------------------------------------------
    def route(self, key: IdLike, start: IdLike) -> RouteResult:
        """Scalar wrapper over :meth:`route_many` (a batch of one)."""
        result = self.route_many([key], [start], collect_paths=True)
        assert result.paths is not None
        path = tuple(node_id_from_int(value) for value in result.paths[0])
        return RouteResult(
            key=node_id_from_int(int(key)),
            root=node_id_from_int(self.slot_id(int(result.root_slots[0]))),
            hops=int(result.hops[0]),
            path=path,
        )

    def route_many(self, keys: KeysLike, starts: KeysLike,
                   collect_paths: bool = False) -> BatchRouteResult:
        raise NotImplementedError

    def _base_footprint(self) -> Dict[str, int]:
        return {
            "id_limbs_bytes": int(self._ids_limbs.nbytes),
            "id_digest_bytes": int(self._ids_bytes.nbytes),
            "sorted_view_bytes": int(self._sorted_bytes.nbytes + self._sorted_slots.nbytes),
            "capacity": int(self._capacity),
            "live_nodes": int(self.live_count),
        }


#: Registered engine factories: name -> factory(network, **kwargs).
ROUTER_ENGINES: Dict[str, object] = {}


def register_engine(name: str, factory) -> None:
    """Register an overlay routing engine factory under ``name``."""
    ROUTER_ENGINES[name] = factory


def make_router(name: str, network, **kwargs) -> OverlayRouting:
    """Build the named engine over ``network``'s live population."""
    try:
        factory = ROUTER_ENGINES[name]
    except KeyError:
        known = ", ".join(sorted(ROUTER_ENGINES))
        raise OverlayError(f"unknown routing engine {name!r} (known: {known})") from None
    return factory(network, **kwargs)


__all__ = [
    "ArrayRouterBase",
    "BatchRouteResult",
    "OverlayRouting",
    "ROUTER_ENGINES",
    "make_router",
    "register_engine",
]
