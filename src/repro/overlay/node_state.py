"""Array-backed placement engine state: the hot-path index over live nodes.

The paper's large-scale experiments resolve tens of millions of DHT lookups
(one per encoded block, capacity probe and CAT placement).  The seed
implementation paid, per lookup, a SHA-1 -> ``NodeId`` -> ``bisect`` ->
big-int ring-distance pipeline; :class:`NodeArrayState` replaces it with a
*boundary array*: for every pair of adjacent live nodes the exact identifier
at which responsibility switches from one to the other is precomputed (plain
Python integers, so the 160-bit ring arithmetic is exact), and stored both as
a sorted ``bytes20`` NumPy array and as a Python list.  A batched lookup is
then a single ``np.searchsorted`` over the raw SHA-1 digests -- no per-key
distance computation at all -- and a scalar lookup is one ``bisect``.

Correctness of the boundary construction relies on a property of the ring
metric: for a key on the arc between adjacent live nodes ``a`` (counter-
clockwise) and ``b`` (clockwise) at clockwise offset ``t`` from ``a`` with gap
``g``, node ``a`` is the closer of the two iff ``t < g - t`` (ties broken
towards the smaller id), *regardless* of whether the shorter way around the
ring flips direction.  The case analysis is spelled out in
``tests/test_overlay_node_state.py``, which checks the kernel against the
brute-force oracle on adversarial rings (gaps larger than half the ring,
exact midpoints, single-node populations).

The state also maintains O(1) aggregates (total contributed capacity, total
used bytes) via the ``OverlayNode.used`` property listeners, which makes the
utilization sampling of the insertion experiments independent of the
population size.

Membership changes on *clean* boundaries are patched in place -- a removal
merges the two arcs adjacent to the removed node, an insertion splits the
arc the newcomer lands on -- so the per-event cost of a churn workload is
O(affected region) Python work plus C-level array splices instead of the
O(N) rebuild the dirty-flag path pays.  Changes made while the boundaries
are already dirty (bulk population builds, ``rebuild``) still coalesce into
one full rebuild at the next lookup.  ``tests/test_overlay_node_state.py``
asserts patch == rebuild on adversarial rings, change by change.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional

import numpy as np

from repro.overlay.ids import ID_SPACE, NodeId
from repro.overlay.node import OverlayNode

_ID_BYTES = 20


def digest_array(digests: bytes) -> np.ndarray:
    """View a concatenation of 20-byte digests as a ``(n,)`` byte-string array."""
    if len(digests) % _ID_BYTES:
        raise ValueError("digest buffer length must be a multiple of 20")
    return np.frombuffer(digests, dtype=f"S{_ID_BYTES}")


def _id_bytes(value: int) -> bytes:
    return value.to_bytes(_ID_BYTES, "big")


class NodeArrayState:
    """Sorted-array index over a set of live overlay nodes.

    Maintains, in node-id order:

    * ``ids_int`` -- node ids as Python ints (used by the scalar fast path and
      by the exact boundary construction);
    * ``nodes`` -- the :class:`OverlayNode` views, aligned with the ids;

    plus the lazily rebuilt lookup boundary arrays and the O(1) capacity/usage
    aggregates.
    """

    def __init__(self, nodes: Iterable[OverlayNode] = ()) -> None:
        self.nodes: List[OverlayNode] = []
        self.ids_int: List[int] = []
        self.capacity_total = 0
        self.used_total = 0
        self._bounds_dirty = True
        self._wrap_first = False
        self._bounds_int: List[int] = []
        self._owners_list: List[int] = []
        self._bounds_bytes: np.ndarray = np.empty(0, dtype=f"S{_ID_BYTES}")
        self._owners_arr: np.ndarray = np.empty(0, dtype=np.int64)
        self.rebuild(nodes)

    # -- membership -----------------------------------------------------------
    def rebuild(self, nodes: Iterable[OverlayNode]) -> None:
        """Re-index from scratch (detaching from any previously tracked nodes)."""
        for node in self.nodes:
            self._detach(node)
        ordered = sorted(nodes, key=lambda node: int(node.node_id))
        self.nodes = ordered
        self.ids_int = [int(node.node_id) for node in ordered]
        self.capacity_total = sum(node.capacity for node in ordered)
        self.used_total = sum(node.used for node in ordered)
        for node in ordered:
            self._attach(node)
        self._bounds_dirty = True

    def add(self, node: OverlayNode) -> bool:
        """Insert a node (no-op when already indexed).  Returns True if added.

        When the lookup boundaries are clean, they are *patched* in place --
        only the arc the newcomer splits (plus the wrap-around boundary for an
        end insertion) changes, mirroring the removal patch -- so join-heavy
        churn never pays an O(N) rebuild per join.  When the boundaries are
        already dirty (bulk membership change in progress, e.g. a population
        build), the join simply coalesces into the pending full rebuild.
        """
        value = int(node.node_id)
        index = bisect.bisect_left(self.ids_int, value)
        if index < len(self.ids_int) and self.ids_int[index] == value:
            return False
        self.ids_int.insert(index, value)
        self.nodes.insert(index, node)
        self.capacity_total += node.capacity
        self.used_total += node.used
        self._attach(node)
        if not self._bounds_dirty:
            self._patch_bounds_after_insertion(index)
        return True

    def remove(self, node_id: int) -> bool:
        """Drop a node by id (no-op when absent).  Returns True if removed.

        When the lookup boundaries are clean, they are *patched* in place --
        only the two arcs adjacent to the removed node change, so the update
        is O(affected region) Python work plus C-level array splices -- which
        is what keeps single-node-failure churn at 10 000+ nodes from paying
        an O(N) rebuild per failure.  When the boundaries are already dirty
        (bulk membership change in progress), the removal simply coalesces
        into the pending full rebuild.
        """
        value = int(node_id)
        index = bisect.bisect_left(self.ids_int, value)
        if index >= len(self.ids_int) or self.ids_int[index] != value:
            return False
        node = self.nodes.pop(index)
        del self.ids_int[index]
        self.capacity_total -= node.capacity
        self.used_total -= node.used
        self._detach(node)
        if not self._bounds_dirty:
            self._patch_bounds_after_removal(index)
        return True

    def __len__(self) -> int:
        return len(self.ids_int)

    def __contains__(self, node_id: int) -> bool:
        return self.position(node_id) is not None

    def position(self, node_id: int) -> Optional[int]:
        """Index of a node id in the sorted order, or None."""
        value = int(node_id)
        index = bisect.bisect_left(self.ids_int, value)
        if index < len(self.ids_int) and self.ids_int[index] == value:
            return index
        return None

    # -- aggregate maintenance -------------------------------------------------
    def _attach(self, node: OverlayNode) -> None:
        node._usage_listeners = node._usage_listeners + (self,)

    def _detach(self, node: OverlayNode) -> None:
        node._usage_listeners = tuple(
            listener for listener in node._usage_listeners if listener is not self
        )

    def _note_used_delta(self, delta: int) -> None:
        self.used_total += delta

    def utilization(self) -> float:
        """Used / contributed capacity over the indexed nodes, in O(1)."""
        return (self.used_total / self.capacity_total) if self.capacity_total else 0.0

    # -- lookup boundaries -----------------------------------------------------
    def _rebuild_bounds(self) -> None:
        """Precompute the responsibility boundaries between adjacent nodes.

        ``bounds[j]`` is the (inclusive) largest key owned by ``owners[j]``;
        a key strictly greater than every boundary belongs to ``owners[-1]``.
        The wrap-around arc between the numerically largest node ``L`` and the
        smallest node ``F`` needs care: its switching point can itself wrap
        past zero, in which case it becomes the *first* boundary.
        """
        ids = self.ids_int
        n = len(ids)
        if n <= 1:
            self._bounds_int = []
            self._owners_list = [0]
            self._bounds_bytes = np.empty(0, dtype=f"S{_ID_BYTES}")
            self._owners_arr = np.zeros(1, dtype=np.int64)
            self._wrap_first = False
            self._bounds_dirty = False
            return
        inner = [ids[i] + (ids[i + 1] - ids[i]) // 2 for i in range(n - 1)]
        # Wrap arc: L owns clockwise offsets t with 2t < g (tie -> smaller id,
        # which is F, so L keeps strictly less than half).
        gap = ID_SPACE - ids[-1] + ids[0]
        wrap_raw = ids[-1] + (gap - 1) // 2
        if wrap_raw < ID_SPACE:
            bounds = inner + [wrap_raw]
            owners = list(range(n)) + [0]
            self._wrap_first = False
        else:
            bounds = [wrap_raw - ID_SPACE] + inner
            owners = [n - 1] + list(range(n - 1)) + [n - 1]
            self._wrap_first = True
        self._bounds_int = bounds
        self._owners_list = owners
        self._bounds_bytes = np.array([_id_bytes(v) for v in bounds], dtype=f"S{_ID_BYTES}")
        self._owners_arr = np.asarray(owners, dtype=np.int64)
        self._bounds_dirty = False

    def _canonical_owners(self, n: int, wrap_first: bool) -> None:
        """Reset the owner arrays to the canonical per-layout pattern (C-speed)."""
        if wrap_first:
            self._owners_list = [n - 1] + list(range(n - 1)) + [n - 1]
            self._owners_arr = np.concatenate(
                ([n - 1], np.arange(n - 1, dtype=np.int64), [n - 1])
            ).astype(np.int64, copy=False)
        else:
            self._owners_list = list(range(n)) + [0]
            self._owners_arr = np.concatenate(
                (np.arange(n, dtype=np.int64), [0])
            ).astype(np.int64, copy=False)
        self._wrap_first = wrap_first

    def _patch_bounds_after_removal(self, index: int) -> None:
        """Patch clean lookup boundaries after deleting the node at ``index``.

        ``index`` is the position the node occupied *before* removal (the
        arrays are already updated).  Only the two arcs adjacent to the
        removed node change: an interior removal merges them around a single
        recomputed midpoint; removing the smallest or largest id additionally
        recomputes the wrap-around boundary, which may flip the layout between
        the "wrap boundary last" and "wrap boundary first" forms.  Owner
        arrays are regenerated from the canonical per-layout pattern, so no
        per-element Python renumbering is ever required.  Equality with a full
        rebuild is asserted, ring by ring, in ``tests/test_overlay_node_state``.
        """
        ids = self.ids_int
        n = len(ids)
        if n <= 1:
            self._rebuild_bounds()
            return
        bounds = self._bounds_int
        arr = self._bounds_bytes
        wrap_first = self._wrap_first
        if 0 < index < n:
            # Interior removal: the wrap arc is untouched, the layout stays.
            mid = ids[index - 1] + (ids[index] - ids[index - 1]) // 2
            slot = index if wrap_first else index - 1
            bounds[slot] = mid
            del bounds[slot + 1]
            arr = np.delete(arr, slot + 1)
            arr[slot] = _id_bytes(mid)
            self._bounds_bytes = arr
            self._canonical_owners(n, wrap_first)
            return
        # End removal (smallest id when index == 0, largest when index == n):
        # the inner boundary that touched the removed node disappears and the
        # wrap-around boundary is recomputed from the new first/last ids.
        gap = ID_SPACE - ids[-1] + ids[0]
        wrap_raw = ids[-1] + (gap - 1) // 2
        new_wrap_first = wrap_raw >= ID_SPACE
        if index == 0:
            inner_slot = 1 if wrap_first else 0
        else:
            inner_slot = len(bounds) - 1 if wrap_first else len(bounds) - 2
        del bounds[inner_slot]
        arr = np.delete(arr, inner_slot)
        if wrap_first:
            if new_wrap_first:
                bounds[0] = wrap_raw - ID_SPACE
                arr[0] = _id_bytes(wrap_raw - ID_SPACE)
            else:
                del bounds[0]
                bounds.append(wrap_raw)
                arr = np.delete(arr, 0)
                arr = np.append(arr, np.array([_id_bytes(wrap_raw)], dtype=arr.dtype))
        else:
            if new_wrap_first:
                del bounds[-1]
                bounds.insert(0, wrap_raw - ID_SPACE)
                arr = np.delete(arr, len(arr) - 1)
                arr = np.insert(arr, 0, _id_bytes(wrap_raw - ID_SPACE))
            else:
                bounds[-1] = wrap_raw
                arr[-1] = _id_bytes(wrap_raw)
        self._bounds_bytes = arr
        self._canonical_owners(n, new_wrap_first)

    def _patch_bounds_after_insertion(self, index: int) -> None:
        """Patch clean lookup boundaries after inserting the node at ``index``.

        The mirror image of :meth:`_patch_bounds_after_removal`: an interior
        insertion splits one arc around two recomputed midpoints; inserting a
        new smallest or largest id additionally recomputes the wrap-around
        boundary, which may flip the layout between the "wrap boundary last"
        and "wrap boundary first" forms.  Owner arrays are regenerated from
        the canonical per-layout pattern.  Equality with a full rebuild is
        asserted, ring by ring, in ``tests/test_overlay_node_state``.
        """
        ids = self.ids_int
        n = len(ids)
        if n <= 2:
            self._rebuild_bounds()
            return
        bounds = self._bounds_int
        arr = self._bounds_bytes
        wrap_first = self._wrap_first
        if 0 < index < n - 1:
            # Interior insertion: the wrap arc is untouched, the layout stays.
            mid1 = ids[index - 1] + (ids[index] - ids[index - 1]) // 2
            mid2 = ids[index] + (ids[index + 1] - ids[index]) // 2
            slot = index if wrap_first else index - 1
            bounds[slot] = mid1
            bounds.insert(slot + 1, mid2)
            arr[slot] = _id_bytes(mid1)
            arr = np.insert(arr, slot + 1, _id_bytes(mid2))
            self._bounds_bytes = arr
            self._canonical_owners(n, wrap_first)
            return
        # End insertion (new smallest id when index == 0, new largest when
        # index == n-1): the wrap-around boundary is recomputed from the new
        # first/last ids and one new inner boundary appears next to the end.
        gap = ID_SPACE - ids[-1] + ids[0]
        wrap_raw = ids[-1] + (gap - 1) // 2
        new_wrap_first = wrap_raw >= ID_SPACE
        # Drop the old wrap boundary, leaving exactly the old inner boundaries.
        if wrap_first:
            del bounds[0]
            arr = np.delete(arr, 0)
        else:
            del bounds[-1]
            arr = np.delete(arr, len(arr) - 1)
        # Insert the new inner boundary at its position in the inner order.
        if index == 0:
            inner = ids[0] + (ids[1] - ids[0]) // 2
            bounds.insert(0, inner)
            arr = np.insert(arr, 0, _id_bytes(inner))
        else:
            inner = ids[-2] + (ids[-1] - ids[-2]) // 2
            bounds.append(inner)
            arr = np.append(arr, np.array([_id_bytes(inner)], dtype=arr.dtype))
        # Re-add the wrap boundary in its (possibly flipped) layout position.
        if new_wrap_first:
            bounds.insert(0, wrap_raw - ID_SPACE)
            arr = np.insert(arr, 0, _id_bytes(wrap_raw - ID_SPACE))
        else:
            bounds.append(wrap_raw)
            arr = np.append(arr, np.array([_id_bytes(wrap_raw)], dtype=arr.dtype))
        self._bounds_bytes = arr
        self._canonical_owners(n, new_wrap_first)

    # -- lookups ---------------------------------------------------------------
    def lookup_index(self, key: int) -> int:
        """Index of the node numerically closest to ``key`` (scalar fast path)."""
        if not self.ids_int:
            raise LookupError("no live nodes in the placement index")
        if self._bounds_dirty:
            self._rebuild_bounds()
        return self._owners_list[bisect.bisect_left(self._bounds_int, key % ID_SPACE)]

    def lookup_digests(self, digests) -> np.ndarray:
        """Vectorised lookup: raw 20-byte digests -> node indices.

        ``digests`` may be a ``bytes`` concatenation of 20-byte SHA-1 digests
        or an ``S20`` NumPy array.  Returns an ``int64`` array of positions
        into :attr:`nodes`.
        """
        if not self.ids_int:
            raise LookupError("no live nodes in the placement index")
        if self._bounds_dirty:
            self._rebuild_bounds()
        keys = digest_array(digests) if isinstance(digests, (bytes, bytearray)) else digests
        slots = np.searchsorted(self._bounds_bytes, keys, side="left")
        return self._owners_arr[slots]

    def lookup_node(self, key: int) -> OverlayNode:
        """The node numerically closest to ``key``."""
        return self.nodes[self.lookup_index(key)]

    # -- neighbourhood queries -------------------------------------------------
    def successor_indices(self, key: int, count: int) -> List[int]:
        """Indices of the ``count`` nodes following ``key`` clockwise."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if not self.ids_int:
            raise LookupError("no live nodes in the placement index")
        start = bisect.bisect_left(self.ids_int, key % ID_SPACE)
        size = len(self.ids_int)
        return [(start + offset) % size for offset in range(min(count, size))]

    def neighbor_indices(self, node_id: int, count: int) -> List[int]:
        """Indices of the ``count`` nodes closest to ``node_id``, excluding it.

        Exactly reproduces the seed ``DHTView.neighbors`` semantics: collect a
        window of candidates twice as wide as needed on both sides, then pick
        the nearest by ``(ring distance, id)``.
        """
        if count <= 0:
            return []
        ids = self.ids_int
        if not ids:
            raise LookupError("no live nodes in the placement index")
        value = int(node_id) % ID_SPACE
        index = bisect.bisect_left(ids, value)
        size = len(ids)
        seen = {value}
        candidates: List[int] = []
        half = ID_SPACE // 2
        for step in range(1, min(size, count * 2 + 2) + 1):
            for candidate in (ids[(index + step - 1) % size], ids[(index - step) % size]):
                if candidate not in seen:
                    seen.add(candidate)
                    candidates.append(candidate)

        def ring_key(candidate: int):
            delta = (candidate - value) % ID_SPACE
            return (delta if delta <= half else ID_SPACE - delta, candidate)

        candidates.sort(key=ring_key)
        id_index = bisect.bisect_left
        return [id_index(ids, candidate) for candidate in candidates[:count]]

    # -- failure domains -------------------------------------------------------
    def site_array(self) -> np.ndarray:
        """Site id per indexed node (int16, id order; ``-1`` = unassigned)."""
        return np.asarray([node.site for node in self.nodes], dtype=np.int16)

    def rack_array(self) -> np.ndarray:
        """Globally unique rack id per indexed node (int16, id order)."""
        return np.asarray([node.rack for node in self.nodes], dtype=np.int16)

    def domain_members(
        self, site: Optional[int] = None, rack: Optional[int] = None
    ) -> List[OverlayNode]:
        """Indexed nodes inside one failure domain, in id order.

        One vectorised equality test over the int16 domain columns -- the
        fault injector resolves a whole-rack or whole-site outage to its
        casualty list with a single mask, never a per-node Python scan.
        """
        if site is None and rack is None:
            raise ValueError("specify a site and/or a rack")
        mask = np.ones(len(self.nodes), dtype=bool)
        if site is not None:
            mask &= self.site_array() == np.int16(site)
        if rack is not None:
            mask &= self.rack_array() == np.int16(rack)
        nodes = self.nodes
        return [nodes[int(index)] for index in np.flatnonzero(mask)]

    # -- bulk accounting -------------------------------------------------------
    def free_space_array(self) -> np.ndarray:
        """Free bytes per indexed node, in id order."""
        return np.asarray([node.free for node in self.nodes], dtype=np.int64)

    def resync_totals(self) -> None:
        """Recompute the aggregates from scratch (defensive; O(N))."""
        self.capacity_total = sum(node.capacity for node in self.nodes)
        self.used_total = sum(node.used for node in self.nodes)

    def memory_footprint(self) -> dict:
        """Index sizing counters (same shape as the routing engines').

        The boundary arrays are the only NumPy columns; the Python-side
        mirrors (``ids_int``, ``_bounds_int``) are counted per-entry at
        pointer size so the routing bench can compare apples to apples.
        """
        if self._bounds_dirty:
            self._rebuild_bounds()
        pointer_bytes = 8
        column_bytes = int(self._bounds_bytes.nbytes + self._owners_arr.nbytes)
        python_bytes = pointer_bytes * (
            len(self.ids_int) + len(self._bounds_int) + len(self._owners_list)
        )
        total = column_bytes + python_bytes
        return {
            "live_nodes": len(self.ids_int),
            "boundary_bytes": column_bytes,
            "python_index_bytes": python_bytes,
            "total_bytes": total,
            "bytes_per_node": total // max(1, len(self.ids_int)),
        }
