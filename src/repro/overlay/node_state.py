"""Array-backed placement engine state: the hot-path index over live nodes.

The paper's large-scale experiments resolve tens of millions of DHT lookups
(one per encoded block, capacity probe and CAT placement).  The seed
implementation paid, per lookup, a SHA-1 -> ``NodeId`` -> ``bisect`` ->
big-int ring-distance pipeline; :class:`NodeArrayState` replaces it with a
*boundary array*: for every pair of adjacent live nodes the exact identifier
at which responsibility switches from one to the other is precomputed (plain
Python integers, so the 160-bit ring arithmetic is exact), and stored both as
a sorted ``bytes20`` NumPy array and as a Python list.  A batched lookup is
then a single ``np.searchsorted`` over the raw SHA-1 digests -- no per-key
distance computation at all -- and a scalar lookup is one ``bisect``.

Correctness of the boundary construction relies on a property of the ring
metric: for a key on the arc between adjacent live nodes ``a`` (counter-
clockwise) and ``b`` (clockwise) at clockwise offset ``t`` from ``a`` with gap
``g``, node ``a`` is the closer of the two iff ``t < g - t`` (ties broken
towards the smaller id), *regardless* of whether the shorter way around the
ring flips direction.  The case analysis is spelled out in
``tests/test_overlay_node_state.py``, which checks the kernel against the
brute-force oracle on adversarial rings (gaps larger than half the ring,
exact midpoints, single-node populations).

The state also maintains O(1) aggregates (total contributed capacity, total
used bytes) via the ``OverlayNode.used`` property listeners, which makes the
utilization sampling of the insertion experiments independent of the
population size.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.overlay.ids import ID_SPACE, NodeId
from repro.overlay.node import OverlayNode

_ID_BYTES = 20


def digest_array(digests: bytes) -> np.ndarray:
    """View a concatenation of 20-byte digests as a ``(n,)`` byte-string array."""
    if len(digests) % _ID_BYTES:
        raise ValueError("digest buffer length must be a multiple of 20")
    return np.frombuffer(digests, dtype=f"S{_ID_BYTES}")


def _id_bytes(value: int) -> bytes:
    return value.to_bytes(_ID_BYTES, "big")


class NodeArrayState:
    """Sorted-array index over a set of live overlay nodes.

    Maintains, in node-id order:

    * ``ids_int`` -- node ids as Python ints (used by the scalar fast path and
      by the exact boundary construction);
    * ``nodes`` -- the :class:`OverlayNode` views, aligned with the ids;

    plus the lazily rebuilt lookup boundary arrays and the O(1) capacity/usage
    aggregates.
    """

    def __init__(self, nodes: Iterable[OverlayNode] = ()) -> None:
        self.nodes: List[OverlayNode] = []
        self.ids_int: List[int] = []
        self._pos: Dict[int, int] = {}
        self.capacity_total = 0
        self.used_total = 0
        self._bounds_dirty = True
        self._bounds_int: List[int] = []
        self._owners_list: List[int] = []
        self._bounds_bytes: np.ndarray = np.empty(0, dtype=f"S{_ID_BYTES}")
        self._owners_arr: np.ndarray = np.empty(0, dtype=np.int64)
        self.rebuild(nodes)

    # -- membership -----------------------------------------------------------
    def rebuild(self, nodes: Iterable[OverlayNode]) -> None:
        """Re-index from scratch (detaching from any previously tracked nodes)."""
        for node in self.nodes:
            self._detach(node)
        ordered = sorted(nodes, key=lambda node: int(node.node_id))
        self.nodes = ordered
        self.ids_int = [int(node.node_id) for node in ordered]
        self._pos = {value: index for index, value in enumerate(self.ids_int)}
        self.capacity_total = sum(node.capacity for node in ordered)
        self.used_total = sum(node.used for node in ordered)
        for node in ordered:
            self._attach(node)
        self._bounds_dirty = True

    def add(self, node: OverlayNode) -> bool:
        """Insert a node (no-op when already indexed).  Returns True if added."""
        value = int(node.node_id)
        if value in self._pos:
            return False
        index = bisect.bisect_left(self.ids_int, value)
        self.ids_int.insert(index, value)
        self.nodes.insert(index, node)
        for shifted in range(index, len(self.ids_int)):
            self._pos[self.ids_int[shifted]] = shifted
        self.capacity_total += node.capacity
        self.used_total += node.used
        self._attach(node)
        self._bounds_dirty = True
        return True

    def remove(self, node_id: int) -> bool:
        """Drop a node by id (no-op when absent).  Returns True if removed."""
        value = int(node_id)
        index = self._pos.pop(value, None)
        if index is None:
            return False
        node = self.nodes.pop(index)
        del self.ids_int[index]
        for shifted in range(index, len(self.ids_int)):
            self._pos[self.ids_int[shifted]] = shifted
        self.capacity_total -= node.capacity
        self.used_total -= node.used
        self._detach(node)
        self._bounds_dirty = True
        return True

    def __len__(self) -> int:
        return len(self.ids_int)

    def __contains__(self, node_id: int) -> bool:
        return int(node_id) in self._pos

    def position(self, node_id: int) -> Optional[int]:
        """Index of a node id in the sorted order, or None."""
        return self._pos.get(int(node_id))

    # -- aggregate maintenance -------------------------------------------------
    def _attach(self, node: OverlayNode) -> None:
        node._usage_listeners = node._usage_listeners + (self,)

    def _detach(self, node: OverlayNode) -> None:
        node._usage_listeners = tuple(
            listener for listener in node._usage_listeners if listener is not self
        )

    def _note_used_delta(self, delta: int) -> None:
        self.used_total += delta

    def utilization(self) -> float:
        """Used / contributed capacity over the indexed nodes, in O(1)."""
        return (self.used_total / self.capacity_total) if self.capacity_total else 0.0

    # -- lookup boundaries -----------------------------------------------------
    def _rebuild_bounds(self) -> None:
        """Precompute the responsibility boundaries between adjacent nodes.

        ``bounds[j]`` is the (inclusive) largest key owned by ``owners[j]``;
        a key strictly greater than every boundary belongs to ``owners[-1]``.
        The wrap-around arc between the numerically largest node ``L`` and the
        smallest node ``F`` needs care: its switching point can itself wrap
        past zero, in which case it becomes the *first* boundary.
        """
        ids = self.ids_int
        n = len(ids)
        if n <= 1:
            self._bounds_int = []
            self._owners_list = [0]
            self._bounds_bytes = np.empty(0, dtype=f"S{_ID_BYTES}")
            self._owners_arr = np.zeros(1, dtype=np.int64)
            self._bounds_dirty = False
            return
        inner = [ids[i] + (ids[i + 1] - ids[i]) // 2 for i in range(n - 1)]
        # Wrap arc: L owns clockwise offsets t with 2t < g (tie -> smaller id,
        # which is F, so L keeps strictly less than half).
        gap = ID_SPACE - ids[-1] + ids[0]
        wrap_raw = ids[-1] + (gap - 1) // 2
        if wrap_raw < ID_SPACE:
            bounds = inner + [wrap_raw]
            owners = list(range(n)) + [0]
        else:
            bounds = [wrap_raw - ID_SPACE] + inner
            owners = [n - 1] + list(range(n - 1)) + [n - 1]
        self._bounds_int = bounds
        self._owners_list = owners
        self._bounds_bytes = np.array([_id_bytes(v) for v in bounds], dtype=f"S{_ID_BYTES}")
        self._owners_arr = np.asarray(owners, dtype=np.int64)
        self._bounds_dirty = False

    # -- lookups ---------------------------------------------------------------
    def lookup_index(self, key: int) -> int:
        """Index of the node numerically closest to ``key`` (scalar fast path)."""
        if not self.ids_int:
            raise LookupError("no live nodes in the placement index")
        if self._bounds_dirty:
            self._rebuild_bounds()
        return self._owners_list[bisect.bisect_left(self._bounds_int, key % ID_SPACE)]

    def lookup_digests(self, digests) -> np.ndarray:
        """Vectorised lookup: raw 20-byte digests -> node indices.

        ``digests`` may be a ``bytes`` concatenation of 20-byte SHA-1 digests
        or an ``S20`` NumPy array.  Returns an ``int64`` array of positions
        into :attr:`nodes`.
        """
        if not self.ids_int:
            raise LookupError("no live nodes in the placement index")
        if self._bounds_dirty:
            self._rebuild_bounds()
        keys = digest_array(digests) if isinstance(digests, (bytes, bytearray)) else digests
        slots = np.searchsorted(self._bounds_bytes, keys, side="left")
        return self._owners_arr[slots]

    def lookup_node(self, key: int) -> OverlayNode:
        """The node numerically closest to ``key``."""
        return self.nodes[self.lookup_index(key)]

    # -- neighbourhood queries -------------------------------------------------
    def successor_indices(self, key: int, count: int) -> List[int]:
        """Indices of the ``count`` nodes following ``key`` clockwise."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if not self.ids_int:
            raise LookupError("no live nodes in the placement index")
        start = bisect.bisect_left(self.ids_int, key % ID_SPACE)
        size = len(self.ids_int)
        return [(start + offset) % size for offset in range(min(count, size))]

    def neighbor_indices(self, node_id: int, count: int) -> List[int]:
        """Indices of the ``count`` nodes closest to ``node_id``, excluding it.

        Exactly reproduces the seed ``DHTView.neighbors`` semantics: collect a
        window of candidates twice as wide as needed on both sides, then pick
        the nearest by ``(ring distance, id)``.
        """
        if count <= 0:
            return []
        ids = self.ids_int
        if not ids:
            raise LookupError("no live nodes in the placement index")
        value = int(node_id) % ID_SPACE
        index = bisect.bisect_left(ids, value)
        size = len(ids)
        seen = {value}
        candidates: List[int] = []
        half = ID_SPACE // 2
        for step in range(1, min(size, count * 2 + 2) + 1):
            for candidate in (ids[(index + step - 1) % size], ids[(index - step) % size]):
                if candidate not in seen:
                    seen.add(candidate)
                    candidates.append(candidate)

        def ring_key(candidate: int):
            delta = (candidate - value) % ID_SPACE
            return (delta if delta <= half else ID_SPACE - delta, candidate)

        candidates.sort(key=ring_key)
        return [self._pos[candidate] for candidate in candidates[:count]]

    # -- bulk accounting -------------------------------------------------------
    def free_space_array(self) -> np.ndarray:
        """Free bytes per indexed node, in id order."""
        return np.asarray([node.free for node in self.nodes], dtype=np.int64)

    def resync_totals(self) -> None:
        """Recompute the aggregates from scratch (defensive; O(N))."""
        self.capacity_total = sum(node.capacity for node in self.nodes)
        self.used_total = sum(node.used for node in self.nodes)
