"""A simulated, directly connected network of overlay nodes.

This corresponds to the FreePastry "simulator mode" used by the paper: every
node runs the full per-node state (leaf set + routing table), messages are
routed hop by hop through that state, but the transport is a direct in-memory
call.  The network supports:

* building an overlay of N nodes with random ids and random coordinates;
* node join (bootstrapping the leaf set / routing table from existing nodes),
  graceful leave and abrupt failure with leaf-set repair;
* key routing with hop counting (:meth:`OverlayNetwork.route`), which is the
  overlay-level cost the evaluation charges per p2p look-up;
* the proximity metric used to build locality-aware multicast trees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.overlay.ids import NodeId, distance, random_node_id
from repro.overlay.node import OverlayNode


class OverlayError(RuntimeError):
    """Raised for invalid overlay operations (routing on an empty overlay, ...)."""


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing a key: the responsible node and the path taken."""

    key: NodeId
    root: NodeId
    hops: int
    path: tuple[NodeId, ...] = field(default=())


class OverlayNetwork:
    """A population of :class:`OverlayNode` objects plus routing logic."""

    def __init__(self, leaf_set_half_size: int = 8, max_route_hops: int = 128) -> None:
        self.leaf_set_half_size = leaf_set_half_size
        self.max_route_hops = max_route_hops
        self._nodes: Dict[NodeId, OverlayNode] = {}
        self.total_route_hops = 0
        self.total_routes = 0
        #: Whether per-node leaf sets / routing tables are being maintained.
        #: ``build(..., routing_state=False)`` clears it, which also lets
        #: departures skip the O(N) leaf-set repair sweep (there is no state
        #: to repair) -- what keeps a churn sweep at 10 000 nodes incremental.
        self.maintains_routing_state = True
        #: An attached array routing engine (see :func:`attach_router`) plus
        #: the listeners receiving join/leave/fail churn patches.
        self.router = None
        self._routing_listeners: List = []

    # -- population management ----------------------------------------------
    @classmethod
    def build(
        cls,
        count: int,
        rng: np.random.Generator,
        capacities: Optional[Sequence[int]] = None,
        leaf_set_half_size: int = 8,
        routing_state: bool = True,
    ) -> "OverlayNetwork":
        """Create an overlay of ``count`` nodes with random ids and coordinates.

        ``capacities`` optionally assigns contributed storage per node (bytes);
        it must have length ``count`` when given.

        ``routing_state=False`` skips the O(N^2) construction of per-node leaf
        sets and routing tables.  The resulting overlay draws *exactly* the
        same random ids, coordinates and capacities (the RNG consumption is
        identical), so DHT-view-based experiments -- which never route hop by
        hop -- get an identical population at a fraction of the cost; this is
        what makes the paper's 10 000-node configurations practical.  Hop-by-
        hop :meth:`route` calls on such an overlay fall back to jumping
        straight to the responsible node.
        """
        if count < 1:
            raise ValueError("overlay needs at least one node")
        if capacities is not None and len(capacities) != count:
            raise ValueError("capacities length must match node count")
        network = cls(leaf_set_half_size=leaf_set_half_size)
        network.maintains_routing_state = routing_state
        for index in range(count):
            node_id = random_node_id(rng)
            while node_id in network._nodes:  # pragma: no cover - negligible probability
                node_id = random_node_id(rng)
            node = OverlayNode(
                node_id=node_id,
                coordinates=(float(rng.uniform(0.0, 1000.0)), float(rng.uniform(0.0, 1000.0))),
                capacity=int(capacities[index]) if capacities is not None else 0,
            )
            node.leaf_set = type(node.leaf_set)(node_id, leaf_set_half_size)
            if routing_state:
                network._insert(node)
            else:
                network._nodes[node.node_id] = node
        return network

    def _insert(self, node: OverlayNode) -> None:
        self._nodes[node.node_id] = node
        if not self.maintains_routing_state:
            # No per-node Pastry state to build or advertise: a join is O(1)
            # here plus an incremental boundary patch in the DHT view, which
            # is what keeps join-heavy churn soaks incremental.
            for listener in self._routing_listeners:
                listener.on_join(node)
            return
        self._refresh_state_for(node)
        # Existing nodes learn about the newcomer.
        for other in self._nodes.values():
            if other.node_id == node.node_id or not other.alive:
                continue
            other.leaf_set.consider(node.node_id)
            other.routing_table.consider(node.node_id, self.proximity(other.node_id, node.node_id))
        for listener in self._routing_listeners:
            listener.on_join(node)

    def join(self, node: OverlayNode) -> None:
        """Add a new participant to an existing overlay (Figure 1 of the paper)."""
        if node.node_id in self._nodes:
            raise OverlayError(f"node id already present: {node.node_id!r}")
        self._insert(node)

    def _refresh_state_for(self, node: OverlayNode) -> None:
        """(Re)build a node's leaf set and routing table from the live population."""
        for other_id, other in self._nodes.items():
            if other_id == node.node_id or not other.alive:
                continue
            node.leaf_set.consider(other_id)
            node.routing_table.consider(other_id, self.proximity(node.node_id, other_id))

    def leave(self, node_id: NodeId) -> None:
        """Graceful departure: remove the node and repair neighbours' state.

        The node-level :meth:`~repro.overlay.node.OverlayNode.leave` hook
        notifies attached state listeners (the columnar block ledger releases
        whatever rows were not migrated out beforehand -- see
        :meth:`repro.core.recovery.RecoveryManager.handle_leave` for the
        bandwidth-aware copy-out that precedes a graceful departure).
        """
        if node_id not in self._nodes:
            raise OverlayError(f"unknown node: {node_id!r}")
        node = self._nodes.pop(node_id)
        node.leave()
        if self.maintains_routing_state:
            self._repair_after_departure(node_id)
        for listener in self._routing_listeners:
            listener.on_leave(node_id)

    def fail(self, node_id: NodeId) -> OverlayNode:
        """Abrupt failure: node stays in the table but is marked dead; repair state."""
        node = self.node(node_id)
        node.fail()
        if self.maintains_routing_state:
            self._repair_after_departure(node_id)
        for listener in self._routing_listeners:
            listener.on_fail(node_id)
        return node

    def _repair_after_departure(self, node_id: NodeId) -> None:
        for other in self.live_nodes():
            repaired = other.leaf_set.remove(node_id)
            other.routing_table.remove(node_id)
            if repaired:
                # Leaf-set repair: refill from the live population, as Pastry
                # does by asking the remaining leaf-set members.
                for candidate in self.live_nodes():
                    if candidate.node_id != other.node_id:
                        other.leaf_set.consider(candidate.node_id)

    # -- accessors ------------------------------------------------------------
    def node(self, node_id: NodeId) -> OverlayNode:
        """The node object for ``node_id`` (alive or failed)."""
        try:
            return self._nodes[node_id]
        except KeyError as error:
            raise OverlayError(f"unknown node: {node_id!r}") from error

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> List[OverlayNode]:
        """All nodes, including failed ones."""
        return list(self._nodes.values())

    def live_nodes(self) -> List[OverlayNode]:
        """Only the currently alive nodes."""
        return [node for node in self._nodes.values() if node.alive]

    def live_ids(self) -> List[NodeId]:
        """Ids of the currently alive nodes."""
        return [node.node_id for node in self._nodes.values() if node.alive]

    # -- proximity -------------------------------------------------------------
    def proximity(self, a: NodeId, b: NodeId) -> float:
        """The proximity metric between two participants (Euclidean distance)."""
        ax, ay = self.node(a).coordinates
        bx, by = self.node(b).coordinates
        return math.hypot(ax - bx, ay - by)

    # -- pluggable routing engines --------------------------------------------
    def attach_router(self, engine="pastry", dispatch=True, **kwargs):
        """Attach an array routing engine ("pastry", "chord", or an instance).

        The engine is built over the current live population, registered for
        join/leave/fail churn patches, and — on ``routing_state=False``
        overlays, which have no per-node Pastry state of their own —
        :meth:`route` and :meth:`route_many` dispatch to it.  Overlays that
        maintain the seed's scalar state keep routing through it (the
        dispatched baseline), while the attached engine still tracks churn,
        which is what the hop-identity oracle leans on.

        ``dispatch=False`` registers the engine for churn tracking without
        making it the :meth:`route` target — how a session keeps a Chord
        engine alongside the dispatching Pastry one for head-to-heads.
        """
        from repro.overlay.engine import make_router

        router = make_router(engine, self, **kwargs) if isinstance(engine, str) else engine
        if dispatch or self.router is None:
            self.router = router
        if router not in self._routing_listeners:
            self._routing_listeners.append(router)
        return router

    # -- routing ---------------------------------------------------------------
    def responsible_node(self, key: NodeId) -> NodeId:
        """The live node numerically closest to ``key`` (the DHT root)."""
        live = self.live_ids()
        if not live:
            raise OverlayError("no live nodes in the overlay")
        return min(live, key=lambda nid: (distance(nid, key), int(nid)))

    def route(self, key: NodeId, start: Optional[NodeId] = None) -> RouteResult:
        """Route ``key`` hop-by-hop from ``start`` using Pastry's routing rule.

        Returns the responsible (root) node and the number of overlay hops.
        The result's ``root`` always equals :meth:`responsible_node`; the hop
        count reflects the per-node routing state actually traversed.
        """
        live = self.live_ids()
        if not live:
            raise OverlayError("no live nodes in the overlay")
        if start is None:
            start = live[0]
        if self.router is not None and not self.maintains_routing_state:
            result = self.router.route(key, start)
            self.total_route_hops += result.hops
            self.total_routes += 1
            return result
        current = self.node(start)
        if not current.alive:
            raise OverlayError(f"routing from a failed node: {start!r}")
        target_root = self.responsible_node(key)
        path: List[NodeId] = [current.node_id]
        hops = 0
        while current.node_id != target_root:
            if hops >= self.max_route_hops:
                raise OverlayError(f"routing for key {key!r} exceeded {self.max_route_hops} hops")
            next_id = self._next_hop(current, key)
            if next_id is None or next_id == current.node_id:
                # Converged as far as local state allows; jump to the true root.
                # (In a converged Pastry overlay the leaf set always contains
                # the root once we are this close.)
                next_id = target_root
            current = self.node(next_id)
            path.append(current.node_id)
            hops += 1
        self.total_route_hops += hops
        self.total_routes += 1
        return RouteResult(key=key, root=target_root, hops=hops, path=tuple(path))

    def route_many(self, keys, starts=None, collect_paths: bool = False):
        """Batched routing: one vectorized pass per hop on the attached engine.

        Falls back to a scalar :meth:`route` loop when no engine is attached
        (or the overlay maintains the seed's per-node state), so callers get
        the same :class:`~repro.overlay.engine.BatchRouteResult` either way.
        """
        from repro.overlay.engine import BatchRouteResult

        live = self.live_ids()
        if not live:
            raise OverlayError("no live nodes in the overlay")
        if starts is None:
            starts = live[0]
        if self.router is not None and not self.maintains_routing_state:
            result = self.router.route_many(keys, starts, collect_paths=collect_paths)
            self.total_route_hops += int(result.hops.sum())
            self.total_routes += len(result.hops)
            return result
        if isinstance(starts, (int, NodeId)):
            starts = [starts] * len(keys)
        results = [self.route(NodeId(int(key) % (1 << 160)), start)
                   for key, start in zip(keys, starts)]
        return BatchRouteResult(
            hops=np.array([r.hops for r in results], dtype=np.int32),
            root_slots=np.full(len(results), -1, dtype=np.int32),
            roots=[int(r.root) for r in results],
            paths=[[int(n) for n in r.path] for r in results] if collect_paths else None,
        )

    def _next_hop(self, current: OverlayNode, key: NodeId) -> Optional[NodeId]:
        # Rule 1: if the key is covered by the leaf set, go straight to the
        # numerically closest leaf (or stay here).
        if current.leaf_set.covers(key) or len(current.leaf_set) < 2 * self.leaf_set_half_size:
            closest = current.leaf_set.closest_to(key)
            if distance(closest, key) < distance(current.node_id, key):
                if self.node(closest).alive:
                    return closest
        # Rule 2: routing-table entry sharing a longer prefix.
        candidate = current.routing_table.next_hop(key)
        if candidate is not None and candidate in self._nodes and self.node(candidate).alive:
            return candidate
        # Rule 3 (rare case): any known node numerically closer with >= prefix.
        fallback_pool = (
            current.routing_table.candidates_with_longer_or_equal_prefix(key)
            + current.leaf_set.members()
        )
        best: Optional[NodeId] = None
        best_distance = distance(current.node_id, key)
        for node_id in fallback_pool:
            if node_id not in self._nodes or not self.node(node_id).alive:
                continue
            node_distance = distance(node_id, key)
            if node_distance < best_distance:
                best, best_distance = node_id, node_distance
        return best

    # -- statistics --------------------------------------------------------------
    @property
    def mean_route_hops(self) -> float:
        """Average hops per routed message so far."""
        if self.total_routes == 0:
            return 0.0
        return self.total_route_hops / self.total_routes

    def total_capacity(self) -> int:
        """Total contributed capacity over live nodes (bytes)."""
        return sum(node.capacity for node in self.live_nodes())

    def total_used(self) -> int:
        """Total used space over live nodes (bytes)."""
        return sum(node.used for node in self.live_nodes())

    def utilization(self) -> float:
        """Fraction of live contributed capacity currently used."""
        capacity = self.total_capacity()
        return (self.total_used() / capacity) if capacity else 0.0
