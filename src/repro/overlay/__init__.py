"""Pastry-style structured peer-to-peer overlay.

The paper builds its storage system on Pastry/FreePastry.  This package is a
from-scratch Python reproduction of the parts the storage system actually
relies on:

* a circular 160-bit identifier space shared by node ids and object keys
  (:mod:`repro.overlay.ids`);
* per-node state -- leaf set and prefix routing table with proximity-aware
  entries (:mod:`repro.overlay.node`, :mod:`repro.overlay.routing`);
* a simulated directly-connected network of overlay nodes supporting join,
  leave, failure, message routing with hop counts, and leaf-set repair
  (:mod:`repro.overlay.network`);
* a fast *oracle* DHT view (sorted-id bisect) that resolves keys to live nodes
  with the same result the converged overlay would produce; the large-scale
  insertion experiments use this view, exactly like the paper's FreePastry
  "simulator mode" uses a directly-connected network
  (:mod:`repro.overlay.dht`);
* array-backed routing engines behind the pluggable
  :class:`~repro.overlay.engine.OverlayRouting` protocol -- a vectorized
  Pastry engine that is hop-for-hop identical to the seed router
  (:mod:`repro.overlay.engine_pastry`) and a Chord ring for head-to-head
  comparisons (:mod:`repro.overlay.engine_chord`), both driving batched
  ``route_many`` lookups at 10k-100k nodes (:mod:`repro.overlay.engine`).
"""

from repro.overlay.ids import (
    ID_BITS,
    ID_SPACE,
    NodeId,
    distance,
    key_for,
    node_id_from_int,
    random_node_id,
    ring_between,
)
from repro.overlay.node import LeafSet, OverlayNode
from repro.overlay.node_state import NodeArrayState
from repro.overlay.routing import RoutingTable
from repro.overlay.network import OverlayNetwork, RouteResult
from repro.overlay.dht import DHTView
from repro.overlay.engine import (
    BatchRouteResult,
    OverlayRouting,
    ROUTER_ENGINES,
    make_router,
)
from repro.overlay.engine_pastry import PastryArrayRouter
from repro.overlay.engine_chord import ChordArrayRouter

__all__ = [
    "ID_BITS",
    "ID_SPACE",
    "NodeId",
    "distance",
    "key_for",
    "node_id_from_int",
    "random_node_id",
    "ring_between",
    "LeafSet",
    "NodeArrayState",
    "OverlayNode",
    "RoutingTable",
    "OverlayNetwork",
    "RouteResult",
    "DHTView",
    "BatchRouteResult",
    "OverlayRouting",
    "ROUTER_ENGINES",
    "make_router",
    "PastryArrayRouter",
    "ChordArrayRouter",
]
