"""Per-node overlay state: leaf set, routing table, and local storage bookkeeping.

The storage design relies on three properties of a Pastry node (Section 4.4 of
the paper):

* the *leaf set* -- the L/2 numerically closest nodes on each side -- which the
  system uses both for replica placement and for detecting the failure of an
  immediate neighbour;
* when a node fails, the portion of the identifier space mapped to it is split
  between its two immediate neighbours, which therefore become responsible for
  re-creating the blocks that were stored on it;
* each node keeps "a list of blocks stored on its neighbors" so it knows what
  to re-create (the neighbour-block ledger below).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Set, Tuple

from repro.overlay.ids import NodeId, clockwise_distance, distance
from repro.overlay.routing import RoutingTable


class LeafSet:
    """The numerically closest live neighbours of a node, split by ring side."""

    def __init__(self, owner: NodeId, half_size: int = 8) -> None:
        if half_size < 1:
            raise ValueError("leaf set half size must be >= 1")
        self.owner = owner
        self.half_size = half_size
        self._smaller: List[NodeId] = []   # counter-clockwise neighbours, nearest first
        self._larger: List[NodeId] = []    # clockwise neighbours, nearest first

    # -- membership ---------------------------------------------------------
    def members(self) -> List[NodeId]:
        """All leaf-set members (both sides), nearest first per side."""
        return list(self._smaller) + list(self._larger)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._smaller or node_id in self._larger

    def __len__(self) -> int:
        return len(self._smaller) + len(self._larger)

    def consider(self, node_id: NodeId) -> bool:
        """Offer a node; keep it if it is among the closest on its side."""
        if node_id == self.owner:
            return False
        side, changed = self._side_of(node_id), False
        if node_id not in side:
            side.append(node_id)
            changed = True
        self._trim()
        return changed and node_id in self

    def remove(self, node_id: NodeId) -> bool:
        """Drop a (failed) node.  Returns True if it was a member."""
        for side in (self._smaller, self._larger):
            if node_id in side:
                side.remove(node_id)
                return True
        return False

    def _side_of(self, node_id: NodeId) -> List[NodeId]:
        # A node is on the "larger" (clockwise) side if it is nearer going
        # clockwise from the owner than counter-clockwise.
        clockwise = clockwise_distance(self.owner, node_id)
        counter = clockwise_distance(node_id, self.owner)
        return self._larger if clockwise <= counter else self._smaller

    def _trim(self) -> None:
        self._larger.sort(key=lambda nid: clockwise_distance(self.owner, nid))
        self._smaller.sort(key=lambda nid: clockwise_distance(nid, self.owner))
        del self._larger[self.half_size:]
        del self._smaller[self.half_size:]

    # -- queries used by the storage system ----------------------------------
    def immediate_neighbors(self) -> List[NodeId]:
        """The single nearest neighbour on each side (up to two nodes)."""
        result: List[NodeId] = []
        if self._smaller:
            result.append(self._smaller[0])
        if self._larger:
            result.append(self._larger[0])
        return result

    def nearest(self, count: int) -> List[NodeId]:
        """The ``count`` members numerically closest to the owner."""
        members = sorted(self.members(), key=lambda nid: distance(nid, self.owner))
        return members[:count]

    def covers(self, key: NodeId) -> bool:
        """Whether ``key`` falls within the span of the leaf set."""
        if not self._smaller or not self._larger:
            return False
        low = self._smaller[-1]
        high = self._larger[-1]
        return clockwise_distance(low, key) <= clockwise_distance(low, high)

    def closest_to(self, key: NodeId) -> NodeId:
        """The member (or the owner) numerically closest to ``key``."""
        candidates = self.members() + [self.owner]
        return min(candidates, key=lambda nid: (distance(nid, key), int(nid)))


@dataclass
class NeighborBlockRecord:
    """One entry of the neighbour-block ledger: a block a neighbour stores."""

    block_name: str
    size: int
    owner_file: str


@dataclass
class OverlayNode:
    """A participant in the overlay.

    Besides the Pastry state (leaf set, routing table, coordinates for the
    proximity metric) the node carries the storage-related attributes used by
    the contributory storage system: contributed capacity, used space, the set
    of blocks it stores, and the ledger of blocks stored on its neighbours.
    """

    node_id: NodeId
    #: Position used by the proximity metric (Euclidean distance in a plane),
    #: standing in for network latency between participants.
    coordinates: tuple[float, float] = (0.0, 0.0)
    #: Total storage contributed by this participant, in bytes.
    capacity: int = 0
    #: Bytes currently consumed by stored blocks.  Exposed as a property (see
    #: below the class) so that attached :class:`~repro.overlay.node_state.`
    #: ``NodeArrayState`` indexes can maintain O(1) usage aggregates.
    used: int = 0
    #: Whether the node is currently alive.
    alive: bool = True
    #: Fraction of free capacity reported per getCapacity reply (Section 4.3:
    #: "a node may choose to only report a fraction of its actual available
    #: capacity per getCapacity message").
    capacity_report_fraction: float = 1.0
    #: Failure domain: the site (machine room / campus) this node lives in and
    #: the rack within it.  ``-1`` = unassigned (every node its own domain).
    #: Rack ids are globally unique (``site * racks_per_site + rack``), so a
    #: whole-rack outage is a single equality test on one column.
    site: int = -1
    rack: int = -1
    leaf_set: LeafSet = field(init=False)
    routing_table: RoutingTable = field(init=False)
    #: Names and sizes of blocks stored locally: {block_name: size}.
    stored_blocks: Dict[str, int] = field(default_factory=dict)
    #: Ledger of blocks stored on leaf-set neighbours (Section 4.4).
    neighbor_blocks: Dict[NodeId, Dict[str, NeighborBlockRecord]] = field(default_factory=dict)

    #: Placement-engine indexes currently tracking this node's usage.  A class
    #: attribute so that the ``used`` property setter works during ``__init__``
    #: before any state has attached; attaching replaces it per instance.
    _usage_listeners: ClassVar[Tuple[object, ...]] = ()

    #: Liveness listeners notified on fail/recover/depart transitions (the
    #: columnar block ledger).  Kept separate from ``_usage_listeners`` so the
    #: ``used`` property setter -- the hottest call in a store loop -- never
    #: pays a no-op call per attached ledger.
    _state_listeners: ClassVar[Tuple[object, ...]] = ()

    #: Backing storage for the ``used`` property; the class-level default lets
    #: the setter read the previous value without a ``getattr`` fallback.
    _used_value: ClassVar[int] = 0

    def __post_init__(self) -> None:
        self.leaf_set = LeafSet(self.node_id)
        self.routing_table = RoutingTable(self.node_id)

    # -- capacity -----------------------------------------------------------
    @property
    def free(self) -> int:
        """Bytes of contributed space not currently used."""
        return max(0, self.capacity - self.used)

    def report_capacity(self) -> int:
        """Reply to a ``getCapacity`` probe (may understate per local policy)."""
        if not self.alive:
            return 0
        return int(self.free * self.capacity_report_fraction)

    # -- block storage -------------------------------------------------------
    def store_block(self, block_name: str, size: int) -> bool:
        """Accept a block if there is room.  Returns False when full/dead/duplicate."""
        if not self.alive or size < 0:
            return False
        blocks = self.stored_blocks
        if block_name in blocks:
            return False
        used = self._used_value
        free = self.capacity - used
        if size > (free if free > 0 else 0):
            return False
        size = int(size)
        blocks[block_name] = size
        self.used = used + size
        return True

    def remove_block(self, block_name: str) -> bool:
        """Delete a stored block, releasing its space."""
        size = self.stored_blocks.pop(block_name, None)
        if size is None:
            return False
        self.used -= size
        return True

    def has_block(self, block_name: str) -> bool:
        """Whether the node currently stores the named block."""
        return self.alive and block_name in self.stored_blocks

    # -- neighbour ledger ----------------------------------------------------
    def record_neighbor_block(self, neighbor: NodeId, record: NeighborBlockRecord) -> None:
        """Note that ``neighbor`` stores ``record`` (updated on create/remove)."""
        self.neighbor_blocks.setdefault(neighbor, {})[record.block_name] = record

    def forget_neighbor_block(self, neighbor: NodeId, block_name: str) -> None:
        """Remove a neighbour-ledger entry (file deleted or block migrated)."""
        ledger = self.neighbor_blocks.get(neighbor)
        if ledger is not None:
            ledger.pop(block_name, None)
            if not ledger:
                del self.neighbor_blocks[neighbor]

    def ledger_for(self, neighbor: NodeId) -> List[NeighborBlockRecord]:
        """All blocks this node believes ``neighbor`` stores."""
        return list(self.neighbor_blocks.get(neighbor, {}).values())

    # -- failure ------------------------------------------------------------
    def fail(self) -> None:
        """Mark the node failed; its stored blocks become unreachable.

        Attached state listeners (the columnar block ledger of
        :mod:`repro.core.block_ledger`) are notified so system-wide liveness
        accounting stays exact no matter which code path fails the node.
        """
        if not self.alive:
            return
        self.alive = False
        for listener in self._state_listeners:
            listener._note_failed(self)

    def recover(self, wipe: bool = True) -> None:
        """Bring the node back.  By default it returns empty (disk wiped)."""
        revived = not self.alive
        self.alive = True
        if wipe:
            self.stored_blocks.clear()
            self.used = 0
        for listener in self._state_listeners:
            listener._note_recovered(self, wipe, revived)

    def leave(self) -> None:
        """Graceful departure: the node exits the overlay *alive*.

        Unlike :meth:`fail`, a leaving node had the chance to migrate its
        blocks out first (:meth:`repro.core.recovery.RecoveryManager.
        handle_leave` copies them to the nodes now responsible); whatever it
        still holds departs with it, so attached state listeners (the
        columnar block ledger) permanently release the remaining rows.
        Called by :meth:`repro.overlay.network.OverlayNetwork.leave`.
        """
        for listener in self._state_listeners:
            listener._note_departed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return (
            f"OverlayNode({self.node_id!r}, {state}, used={self.used}/{self.capacity}, "
            f"blocks={len(self.stored_blocks)})"
        )


def _used_get(self: OverlayNode) -> int:
    return self._used_value


def _used_set(self: OverlayNode, value: int) -> None:
    # Every mutation of ``used`` -- store_block, remove_block, recover, and
    # direct assignment (tests fill nodes with ``node.used = node.capacity``) --
    # flows through here, so attached placement indexes can keep exact O(1)
    # usage totals without ever rescanning the population.
    value = int(value)
    listeners = self._usage_listeners
    if listeners:
        previous = self._used_value
        self._used_value = value
        for listener in listeners:
            listener._note_used_delta(value - previous)
    else:
        self._used_value = value


#: Installed after the dataclass machinery runs so the generated ``__init__``
#: (``self.used = used``) routes the initial value through the setter too.
OverlayNode.used = property(_used_get, _used_set)  # type: ignore[assignment]
