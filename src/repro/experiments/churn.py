"""Participant churn and block regeneration: Table 3.

The paper distributes the trace, then fails 10 % and 20 % of the nodes without
recovery of the nodes themselves; after each failure the failed node's
neighbours regenerate the blocks now mapped to them, and a delay proportional
to the amount of data being recovered is inserted so consecutive failures can
overlap in-flight recoveries.  Reported: total data lost, total data
regenerated, and the mean/standard deviation of data regenerated per failure.

Running at the paper's scale
----------------------------
With ``vectorized=True`` (the default) distribution runs on the array-backed
placement engine and every failure is processed through the columnar block
ledger: the failed node's blocks come from one mask over the owner column,
each decodability check is an O(1) counter read, and removing the node from
the DHT view patches the lookup boundaries incrementally instead of paying an
O(N) rebuild.  That makes the paper's 10 000-node configuration
(:data:`PAPER_TABLE3`) run in minutes on one core::

    python -m repro.cli table3                # paper scale (10 % and 20 %)
    python -m repro.cli table3 --scale 0.1    # 1 000 nodes, quick look
    python -m repro.cli churn                 # legacy scaled-down defaults

``vectorized=False`` preserves the seed scalar path (per-node dict walks and
placement scans); ``tests/test_churn_equivalence.py`` asserts both paths
produce identical Table 3 rows, and ``benchmarks/test_bench_churn_failures.py``
records both throughputs in ``BENCH_churn.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.policies import StoragePolicy
from repro.core.recovery import RecoveryManager
from repro.core.storage import StorageSystem
from repro.erasure.chunk_codec import ChunkCodec
from repro.erasure.xor_code import XorParityCode
from repro.experiments.results import TableResult
from repro.overlay.dht import DHTView
from repro.overlay.network import OverlayNetwork
from repro.sim.churn import FailureSchedule
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.capacity import CapacityConfig, generate_capacities
from repro.workloads.filetrace import GB, MB, FileTraceConfig, generate_file_trace


@dataclass(frozen=True)
class ChurnConfig:
    """Scaled-down defaults for the Table 3 experiment."""

    node_count: int = 300
    capacity_mean: int = 45 * GB
    capacity_std: int = 10 * GB
    file_count: int = 2_000
    mean_file_size: int = 243 * MB
    std_file_size: int = 55 * MB
    min_file_size: int = 50 * MB
    #: Failure fractions to report rows for (paper: 10 % and 20 %).
    fail_fractions: tuple = (0.10, 0.20)
    #: Blocks per chunk for the (2,3) XOR protection used during distribution.
    blocks_per_chunk: int = 2
    #: Simulated seconds between consecutive node failures.
    failure_spacing: float = 10.0
    #: Bytes per simulated second a recovering neighbour can regenerate.
    recovery_rate: float = 50 * MB
    seed: int = 4
    #: Run distribution and failure handling on the array engine + columnar
    #: block ledger; ``False`` preserves the seed scalar path end to end.
    vectorized: bool = True
    #: Override the population-build mode independently of the pipeline mode
    #: (None = follow ``vectorized``); identical RNG draws in both modes.
    fast_build: Optional[bool] = None

    def resolved_fast_build(self) -> bool:
        """Whether the population should skip the O(N^2) Pastry state build."""
        return self.vectorized if self.fast_build is None else self.fast_build


#: The paper's Table 3 configuration: 10 000 nodes, fail 10 % then 20 %.  As
#: with Figure 10, the file count keeps the run to minutes on one core while
#: preserving the table's structural claims (`--files N` raises it).
PAPER_TABLE3 = ChurnConfig(node_count=10_000, file_count=20_000)


@dataclass
class ChurnRow:
    """One row of Table 3 (one failure fraction)."""

    fail_fraction: float
    nodes_failed: int
    data_lost_bytes: float
    data_regenerated_bytes: float
    regenerated_per_failure_mean: float
    regenerated_per_failure_std: float
    total_data_bytes: float

    @property
    def regenerated_per_failure_pct_of_total(self) -> float:
        """Per-failure regenerated data as a percentage of all stored data."""
        if self.total_data_bytes == 0:
            return 0.0
        return 100.0 * self.regenerated_per_failure_mean / self.total_data_bytes


class ChurnExperiment:
    """Runs the fail-and-regenerate experiment with recovery delays."""

    def __init__(self, config: Optional[ChurnConfig] = None) -> None:
        self.config = config or ChurnConfig()
        #: Per-fraction wall-clock phase timings of the last :meth:`run`
        #: ({fraction: {"distribute_s": ..., "recover_s": ...}}), recorded for
        #: the churn benchmarks.
        self.timings: Dict[float, Dict[str, float]] = {}

    def _distribute(self, streams: RandomStreams) -> StorageSystem:
        config = self.config
        capacities = generate_capacities(
            CapacityConfig(
                node_count=config.node_count,
                distribution="normal",
                mean=config.capacity_mean,
                std=config.capacity_std,
            ),
            rng=streams.fresh("capacities"),
        )
        network = OverlayNetwork.build(
            config.node_count,
            rng=streams.fresh("overlay"),
            capacities=list(capacities),
            routing_state=not config.resolved_fast_build(),
        )
        dht = DHTView(network)
        storage = StorageSystem(
            dht,
            codec=ChunkCodec(XorParityCode(group_size=2), blocks_per_chunk=config.blocks_per_chunk),
            policy=StoragePolicy(),
            vectorized=config.vectorized,
        )
        trace = generate_file_trace(
            FileTraceConfig(
                file_count=config.file_count,
                mean_size=config.mean_file_size,
                std_size=config.std_file_size,
                min_size=config.min_file_size,
            ),
            rng=streams.fresh("trace"),
        )
        for record in trace:
            storage.store_file(record.name, record.size)
        return storage

    def _run_fraction(self, fraction: float) -> ChurnRow:
        config = self.config
        streams = RandomStreams(config.seed)
        phase_start = time.perf_counter()
        storage = self._distribute(streams)
        distribute_s = time.perf_counter() - phase_start
        recovery = RecoveryManager(storage)
        network = storage.dht.network
        total_data = float(storage.stored_bytes())

        schedule = FailureSchedule(
            network.live_ids(),
            fraction,
            rng=streams.fresh("failures", fraction),
            spacing=config.failure_spacing,
        )

        # Recovery delays proportional to the regenerated data size, driven by
        # the discrete-event kernel so that later failures can land while a
        # previous recovery is still in flight (the regeneration work is
        # applied when the delay elapses, not at failure time).
        sim = Simulator()
        pending: List = []

        def fail_at(event) -> None:
            impact = recovery.handle_failure(event.node_id)
            delay = impact.bytes_regenerated / config.recovery_rate if config.recovery_rate else 0.0
            sim.schedule(delay, lambda: pending.append(impact))

        recover_start = time.perf_counter()
        for event in schedule:
            sim.schedule(event.time, lambda event=event: fail_at(event))
        sim.run()
        self.timings[fraction] = {
            "distribute_s": distribute_s,
            "recover_s": time.perf_counter() - recover_start,
            "failures": float(len(schedule)),
        }

        totals = recovery.totals()
        return ChurnRow(
            fail_fraction=fraction,
            nodes_failed=len(schedule),
            data_lost_bytes=totals["total_data_lost_bytes"],
            data_regenerated_bytes=totals["total_regenerated_bytes"],
            regenerated_per_failure_mean=totals["mean_regenerated_per_failure"],
            regenerated_per_failure_std=totals["std_regenerated_per_failure"],
            total_data_bytes=total_data,
        )

    def run(self) -> TableResult:
        """Produce the Table 3 rows for every configured failure fraction."""
        table = TableResult(
            title="Table 3 — data lost and regenerated under participant churn",
            columns=[
                "nodes_failed_pct",
                "nodes_failed",
                "data_lost_gb",
                "data_regenerated_gb",
                "regenerated_per_failure_gb_mean",
                "regenerated_per_failure_gb_std",
                "regenerated_per_failure_pct_of_total",
            ],
        )
        for fraction in self.config.fail_fractions:
            row = self._run_fraction(fraction)
            table.add_row(
                nodes_failed_pct=100.0 * row.fail_fraction,
                nodes_failed=row.nodes_failed,
                data_lost_gb=row.data_lost_bytes / GB,
                data_regenerated_gb=row.data_regenerated_bytes / GB,
                regenerated_per_failure_gb_mean=row.regenerated_per_failure_mean / GB,
                regenerated_per_failure_gb_std=row.regenerated_per_failure_std / GB,
                regenerated_per_failure_pct_of_total=row.regenerated_per_failure_pct_of_total,
            )
        return table
