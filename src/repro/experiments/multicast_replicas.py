"""Multicast-based replica dissemination: Figures 11 and 12.

The paper simulates one source distributing an encoded chunk (split into 1000
packets) to 32 replica holders at the leaves of a binary tree of height 5
(63 nodes total).  Figure 11 sweeps the RanSub set size from 3 % to 16 % of
the tree and plots the average number of packets received per node over the
epochs; Figure 12 fixes RanSub at 16 % and plots the minimum / average /
maximum per-node packet counts, showing that the tree saturates evenly.

``node_count=0`` (the default) reproduces the paper's synthetic binary
tree.  ``node_count > 0`` instead grows the dissemination tree out of a
real overlay: the tree is the union of array-engine-routed paths from a
random source to ``replica_count`` random replica holders
(:func:`~repro.multicast.tree.build_routed_tree`), so the same Bullet/
RanSub exchange runs over the topology Pastry lookups actually induce at
10 000 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.experiments.results import Series
from repro.multicast.bullet import BulletConfig, BulletSession
from repro.multicast.tree import MulticastTree, build_binary_tree, build_routed_tree
from repro.overlay.network import OverlayNetwork
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class MulticastConfig:
    """Defaults matching the paper's Section 6.3 setup."""

    tree_height: int = 5
    total_packets: int = 1000
    #: RanSub set sizes (fractions of the tree) swept by Figure 11.
    ransub_fractions: tuple = (0.03, 0.05, 0.06, 0.08, 0.10, 0.11, 0.13, 0.14, 0.16)
    #: RanSub fraction used by Figure 12.
    saturation_fraction: float = 0.16
    link_capacity: int = 10
    peer_capacity: int = 5
    download_capacity: int = 25
    max_epochs: int = 800
    seed: int = 5
    #: 0 = the paper's synthetic binary tree; > 0 = grow the dissemination
    #: tree from routed overlay paths over this many nodes.
    node_count: int = 0
    #: Replica holders reached through the overlay (``node_count`` mode).
    replica_count: int = 32
    #: Array routing engine that supplies the paths (``node_count`` mode).
    routing_engine: str = "pastry"


class MulticastExperiment:
    """Runs the RanSub sweep and the saturation study."""

    def __init__(self, config: Optional[MulticastConfig] = None) -> None:
        self.config = config or MulticastConfig()
        self._routed_tree: Optional[MulticastTree] = None

    def _build_tree(self) -> MulticastTree:
        """The dissemination tree (synthetic, or routed over an overlay).

        The routed tree is built once and shared by every sweep cell --
        the paper's cells likewise all use the one fixed tree, varying only
        the RanSub exchange on top of it.
        """
        config = self.config
        if config.node_count <= 0:
            return build_binary_tree(config.tree_height)
        if self._routed_tree is None:
            streams = RandomStreams(config.seed)
            network = OverlayNetwork.build(
                config.node_count, streams.fresh("overlay"), routing_state=False)
            router = network.attach_router(config.routing_engine)
            live = network.live_ids()
            pick = streams.fresh("participants")
            count = min(config.replica_count + 1, len(live))
            chosen = pick.choice(len(live), size=count, replace=False)
            source = live[int(chosen[0])]
            targets = [live[int(index)] for index in chosen[1:]]
            self._routed_tree = build_routed_tree(router, source, targets)
        return self._routed_tree

    def _session(self, fraction: float, rng) -> BulletSession:
        config = self.config
        tree = self._build_tree()
        bullet_config = BulletConfig(
            total_packets=config.total_packets,
            ransub_fraction=fraction,
            link_capacity=config.link_capacity,
            peer_capacity=config.peer_capacity,
            download_capacity=config.download_capacity,
            max_epochs=config.max_epochs,
        )
        return BulletSession(tree, bullet_config, rng=rng)

    def run_ransub_sweep(self) -> Dict[float, Series]:
        """Figure 11: average packets per node over epochs, per RanSub size."""
        streams = RandomStreams(self.config.seed)
        results: Dict[float, Series] = {}
        for fraction in self.config.ransub_fractions:
            session = self._session(fraction, streams.fresh("sweep", fraction))
            session.run(until_complete=True)
            series = Series(label=f"RanSub = {fraction:.0%}")
            for stats in session.history:
                series.append(stats.epoch, stats.average)
            results[fraction] = series
        return results

    def completion_epochs(self, sweep: Optional[Dict[float, Series]] = None) -> Dict[float, int]:
        """Epochs needed to fully disseminate, per RanSub size (Fig. 11 summary)."""
        if sweep is None:
            sweep = self.run_ransub_sweep()
        return {fraction: len(series) for fraction, series in sweep.items()}

    def run_saturation(self) -> Tuple[Series, Series, Series]:
        """Figure 12: (minimum, average, maximum) packets per node over epochs."""
        streams = RandomStreams(self.config.seed)
        session = self._session(self.config.saturation_fraction, streams.fresh("saturation"))
        session.run(until_complete=True)
        minimum = Series(label="Min")
        average = Series(label="Average")
        maximum = Series(label="Max")
        for stats in session.history:
            minimum.append(stats.epoch, stats.minimum)
            average.append(stats.epoch, stats.average)
            maximum.append(stats.epoch, stats.maximum)
        return minimum, average, maximum

    @staticmethod
    def saturation_spread(minimum: Series, average: Series, maximum: Series) -> float:
        """Mean (max - min) gap relative to the total packets, a measure of evenness."""
        if not average.y:
            return 0.0
        gaps = np.asarray(maximum.y) - np.asarray(minimum.y)
        return float(gaps.mean())
