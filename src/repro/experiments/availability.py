"""File availability under node failures: Figure 10.

The paper distributes the trace across the overlay, then fails 1000 of the
10 000 nodes one-by-one (no recovery) and counts the files that become
unavailable, comparing no error coding, a (2,3) XOR code, and an online code
that tolerates two simultaneous failures per chunk.  A file counts as
available only if *every* chunk can still be retrieved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.policies import StoragePolicy
from repro.core.storage import StorageSystem
from repro.erasure.base import CodeSpec
from repro.erasure.chunk_codec import ChunkCodec
from repro.erasure.null_code import NullCode
from repro.erasure.online_code import OnlineCode, OnlineCodeParameters
from repro.erasure.xor_code import XorParityCode
from repro.experiments.results import Series
from repro.overlay.dht import DHTView
from repro.overlay.network import OverlayNetwork
from repro.sim.churn import FailureSchedule
from repro.sim.rng import RandomStreams
from repro.workloads.capacity import CapacityConfig, generate_capacities
from repro.workloads.filetrace import GB, MB, FileTraceConfig, generate_file_trace


class _SpecOnlyCode(NullCode):
    """A code used only for capacity simulation: counts come from a fixed spec.

    The availability experiment never touches payloads; what matters is how
    many encoded blocks each chunk is spread over and how many losses it
    tolerates.  The paper's online-code configuration "could tolerate two
    simultaneous failures per chunk", which this wrapper expresses directly.
    """

    def __init__(self, spec: CodeSpec) -> None:
        self._spec = spec
        self.name = spec.name

    def spec(self, n_blocks: int) -> CodeSpec:  # noqa: D102 - interface impl
        return self._spec


@dataclass(frozen=True)
class AvailabilityConfig:
    """Scaled-down defaults for the Figure 10 experiment."""

    node_count: int = 300
    capacity_mean: int = 45 * GB
    capacity_std: int = 10 * GB
    file_count: int = 2_000
    mean_file_size: int = 243 * MB
    std_file_size: int = 55 * MB
    min_file_size: int = 50 * MB
    #: Fraction of nodes failed one-by-one (paper: 1000 of 10 000 = 10 %).
    fail_fraction: float = 0.10
    #: Number of points sampled along the failure axis.
    sample_points: int = 20
    #: Blocks per chunk used by the coded configurations.
    blocks_per_chunk: int = 2
    seed: int = 2


class AvailabilityExperiment:
    """Runs the unavailable-files-vs-failures comparison for three codings."""

    def __init__(self, config: Optional[AvailabilityConfig] = None) -> None:
        self.config = config or AvailabilityConfig()

    def _codecs(self) -> Dict[str, ChunkCodec]:
        blocks = self.config.blocks_per_chunk
        online = OnlineCode(OnlineCodeParameters(epsilon=0.01, q=3))
        online_spec = CodeSpec(
            name="online",
            input_blocks=blocks,
            output_blocks=blocks + 3,
            loss_tolerance=2,
            size_overhead=0.03,
        )
        return {
            "No error code": ChunkCodec(NullCode(), blocks_per_chunk=1),
            "XOR code": ChunkCodec(XorParityCode(group_size=2), blocks_per_chunk=blocks),
            "Online code": ChunkCodec(_SpecOnlyCode(online_spec), blocks_per_chunk=blocks),
        }

    def run(self) -> Dict[str, Series]:
        """Distribute the trace under each coding and fail nodes one by one.

        Returns one series per coding: x = number of failed nodes, y = percent
        of stored files that are no longer available.
        """
        config = self.config
        streams = RandomStreams(config.seed)
        capacities = generate_capacities(
            CapacityConfig(
                node_count=config.node_count,
                distribution="normal",
                mean=config.capacity_mean,
                std=config.capacity_std,
            ),
            rng=streams.fresh("capacities"),
        )
        trace_config = FileTraceConfig(
            file_count=config.file_count,
            mean_size=config.mean_file_size,
            std_size=config.std_file_size,
            min_size=config.min_file_size,
        )

        results: Dict[str, Series] = {}
        for label, codec in self._codecs().items():
            network = OverlayNetwork.build(
                config.node_count, rng=streams.fresh("overlay"), capacities=list(capacities)
            )
            dht = DHTView(network)
            storage = StorageSystem(dht, codec=codec, policy=StoragePolicy())
            trace = generate_file_trace(trace_config, rng=streams.fresh("trace"))
            stored_files: List[str] = []
            for record in trace:
                if storage.store_file(record.name, record.size).success:
                    stored_files.append(record.name)

            schedule = FailureSchedule(
                network.live_ids(), config.fail_fraction, rng=streams.fresh("failures", label)
            )
            series = Series(label=label)
            total = len(stored_files)
            sample_every = max(1, len(schedule) // max(1, config.sample_points))
            failed_so_far = 0
            series.append(0, 0.0)
            for event in schedule:
                node = network.node(event.node_id)
                if node.alive:
                    network.fail(event.node_id)
                # Note: the DHT view is deliberately NOT updated -- the paper's
                # experiment measures raw availability without any repair.
                failed_so_far += 1
                if failed_so_far % sample_every == 0 or failed_so_far == len(schedule):
                    unavailable = sum(
                        1 for name in stored_files if not storage.is_file_available(name)
                    )
                    series.append(failed_so_far, 100.0 * unavailable / total if total else 0.0)
            results[label] = series
        return results
