"""File availability under node failures: Figure 10.

The paper distributes the trace across the overlay, then fails 1000 of the
10 000 nodes one-by-one (no recovery) and counts the files that become
unavailable, comparing no error coding, a (2,3) XOR code, and an online code
that tolerates two simultaneous failures per chunk.  A file counts as
available only if *every* chunk can still be retrieved.

Running at the paper's scale
----------------------------
With ``vectorized=True`` (the default) the whole experiment runs on the
array-backed placement engine plus the columnar block ledger: populations are
built without the O(N^2) per-node Pastry state, every store goes through the
batched lookup kernels, each failure is one mask over the ledger's owner
column, and an availability sample is a single O(1) counter read instead of a
walk over every placement of every file.  That is what makes the paper's
10 000-node / 1 000-failure configuration (:data:`PAPER_FIG10`) practical on
one core::

    python -m repro.cli fig10                 # paper scale (minutes)
    python -m repro.cli fig10 --scale 0.1     # 1 000 nodes, quick look
    python -m repro.cli availability          # legacy scaled-down defaults

``vectorized=False`` preserves the seed scalar path end to end (per-node dict
walks per sample); ``tests/test_churn_equivalence.py`` asserts both paths
produce identical curves, and ``benchmarks/test_bench_churn_failures.py``
records the throughput of each in ``BENCH_churn.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.policies import StoragePolicy
from repro.core.storage import StorageSystem
from repro.erasure.base import CodeSpec
from repro.erasure.chunk_codec import ChunkCodec
from repro.erasure.null_code import NullCode
from repro.erasure.xor_code import XorParityCode
from repro.experiments.results import Series
from repro.overlay.dht import DHTView
from repro.overlay.network import OverlayNetwork
from repro.sim.churn import FailureSchedule
from repro.sim.rng import RandomStreams
from repro.workloads.capacity import CapacityConfig, generate_capacities
from repro.workloads.filetrace import GB, MB, FileTraceConfig, generate_file_trace


class _SpecOnlyCode(NullCode):
    """A code used only for capacity simulation: counts come from a fixed spec.

    The availability experiment never touches payloads; what matters is how
    many encoded blocks each chunk is spread over and how many losses it
    tolerates.  The paper's online-code configuration "could tolerate two
    simultaneous failures per chunk", which this wrapper expresses directly.
    """

    def __init__(self, spec: CodeSpec) -> None:
        self._spec = spec
        self.name = spec.name

    def spec(self, n_blocks: int) -> CodeSpec:  # noqa: D102 - interface impl
        return self._spec


@dataclass(frozen=True)
class AvailabilityConfig:
    """Scaled-down defaults for the Figure 10 experiment."""

    node_count: int = 300
    capacity_mean: int = 45 * GB
    capacity_std: int = 10 * GB
    file_count: int = 2_000
    mean_file_size: int = 243 * MB
    std_file_size: int = 55 * MB
    min_file_size: int = 50 * MB
    #: Fraction of nodes failed one-by-one (paper: 1000 of 10 000 = 10 %).
    fail_fraction: float = 0.10
    #: Number of points sampled along the failure axis.
    sample_points: int = 20
    #: Blocks per chunk used by the coded configurations.
    blocks_per_chunk: int = 2
    seed: int = 2
    #: Run stores, failure processing and availability sampling on the
    #: array-backed engine + columnar block ledger; ``False`` preserves the
    #: seed scalar path end to end.  Identical curves either way.
    vectorized: bool = True
    #: Override the population-build mode independently of the pipeline mode
    #: (None = follow ``vectorized``); identical RNG draws in both modes.
    fast_build: Optional[bool] = None

    def resolved_fast_build(self) -> bool:
        """Whether the population should skip the O(N^2) Pastry state build."""
        return self.vectorized if self.fast_build is None else self.fast_build


#: The paper's Figure 10 configuration: 10 000 nodes, fail 10 % one by one.
#: The file count keeps the distribution phase to a couple of minutes on one
#: core while preserving the figure's qualitative comparison; raise it towards
#: the paper's full trace for longer runs (`python -m repro.cli fig10 --files N`).
PAPER_FIG10 = AvailabilityConfig(node_count=10_000, file_count=20_000)


class AvailabilityExperiment:
    """Runs the unavailable-files-vs-failures comparison for three codings."""

    def __init__(self, config: Optional[AvailabilityConfig] = None) -> None:
        self.config = config or AvailabilityConfig()
        #: Per-coding wall-clock phase timings of the last :meth:`run`
        #: ({label: {"distribute_s": ..., "sweep_s": ...}}), recorded for the
        #: churn benchmarks.
        self.timings: Dict[str, Dict[str, float]] = {}

    def _codecs(self) -> Dict[str, ChunkCodec]:
        blocks = self.config.blocks_per_chunk
        online_spec = CodeSpec(
            name="online",
            input_blocks=blocks,
            output_blocks=blocks + 3,
            loss_tolerance=2,
            size_overhead=0.03,
        )
        return {
            "No error code": ChunkCodec(NullCode(), blocks_per_chunk=1),
            "XOR code": ChunkCodec(XorParityCode(group_size=2), blocks_per_chunk=blocks),
            "Online code": ChunkCodec(_SpecOnlyCode(online_spec), blocks_per_chunk=blocks),
        }

    def run(self) -> Dict[str, Series]:
        """Distribute the trace under each coding and fail nodes one by one.

        Returns one series per coding: x = number of failed nodes, y = percent
        of stored files that are no longer available.
        """
        config = self.config
        streams = RandomStreams(config.seed)
        capacities = generate_capacities(
            CapacityConfig(
                node_count=config.node_count,
                distribution="normal",
                mean=config.capacity_mean,
                std=config.capacity_std,
            ),
            rng=streams.fresh("capacities"),
        )
        trace_config = FileTraceConfig(
            file_count=config.file_count,
            mean_size=config.mean_file_size,
            std_size=config.std_file_size,
            min_size=config.min_file_size,
        )
        fast_build = config.resolved_fast_build()

        results: Dict[str, Series] = {}
        self.timings = {}
        for label, codec in self._codecs().items():
            phase_start = time.perf_counter()
            network = OverlayNetwork.build(
                config.node_count,
                rng=streams.fresh("overlay"),
                capacities=list(capacities),
                routing_state=not fast_build,
            )
            dht = DHTView(network)
            storage = StorageSystem(
                dht, codec=codec, policy=StoragePolicy(), vectorized=config.vectorized
            )
            trace = generate_file_trace(trace_config, rng=streams.fresh("trace"))
            stored_files: List[str] = []
            for record in trace:
                if storage.store_file(record.name, record.size).success:
                    stored_files.append(record.name)
            distribute_s = time.perf_counter() - phase_start

            schedule = FailureSchedule(
                network.live_ids(), config.fail_fraction, rng=streams.fresh("failures", label)
            )
            series = Series(label=label)
            total = len(stored_files)
            sample_every = max(1, len(schedule) // max(1, config.sample_points))
            failed_so_far = 0
            series.append(0, 0.0)
            sweep_start = time.perf_counter()
            ledger = storage.ledger
            for event in schedule:
                node = network.node(event.node_id)
                if node.alive:
                    # The ledger (when present) is notified through the node's
                    # state listeners; with a fast-built population there is no
                    # per-node routing state to repair, so a failure is O(k).
                    network.fail(event.node_id)
                # Note: the DHT view is deliberately NOT updated -- the paper's
                # experiment measures raw availability without any repair.
                failed_so_far += 1
                if failed_so_far % sample_every == 0 or failed_so_far == len(schedule):
                    if ledger is not None:
                        unavailable = ledger.unavailable_count
                    else:
                        unavailable = sum(
                            1 for name in stored_files if not storage.is_file_available(name)
                        )
                    series.append(failed_so_far, 100.0 * unavailable / total if total else 0.0)
            results[label] = series
            self.timings[label] = {
                "distribute_s": distribute_s,
                "sweep_s": time.perf_counter() - sweep_start,
                "failures": float(len(schedule)),
            }
        return results
