"""Small result containers shared by the experiment harnesses.

Besides the Series/Table containers, this module renders the cross-PR
performance trajectory recorded by the benchmark session hooks:

* ``BENCH_insertion.json`` -- files/s and lookups/s of the array-backed
  placement engine (and of the preserved scalar seed path it is measured
  against) for the large-scale insertion experiment;
* ``BENCH_coding.json`` -- MB/s of the vectorized erasure-coding kernel;
* ``BENCH_churn.json`` -- failures/s of the columnar block ledger churn
  engine (seed vs ledger) and the end-to-end Figure 10 / Table 3 times,
  including the paper-scale 10 000-node flagship runs;
* ``BENCH_soak.json`` -- events/s and the compaction memory bound of the
  join/leave churn-soak engine (10 000 nodes over simulated weeks);
* ``BENCH_repair.json`` -- time-to-repair and repair-traffic records of the
  bandwidth-aware repair subsystem (fair-share transfer scheduler), including
  the migration-vs-regeneration traffic ratio;
* ``BENCH_faults.json`` -- per-scenario durability records of the
  failure-domain fault-injection panels (site/rack outages, flash crowd,
  rolling restart, degraded links) with availability, data loss,
  time-to-repair and repair traffic;
* ``BENCH_tenants.json`` -- the per-tenant QoS isolation records of the
  noisy-neighbor storm suite: the victim tenant's ingest throughput and
  retrieve p95 with isolation on vs off while the archive tenant's
  site-outage repair drains, plus the per-tenant SLO rows.

``python -m repro.cli bench --summary-only`` prints both via
:func:`benchmark_summary`; the benchmarks themselves are run with
``python -m repro.cli bench`` (or ``pytest benchmarks -m bench``).

Trajectory snapshot (development machine, PR 2):

======================================  ============  ==============
metric                                  scalar seed   vectorized
======================================  ============  ==============
insertion end-to-end, 600 nodes         ~90 files/s   ~2 000 files/s
store loop only, 10 000 nodes (CFS)     ~1.0k files/s ~2.0k files/s
flagship 10 000 nodes x 100k files      impractical   ~1 400 files/s
flagship lookup throughput              --            ~89k lookups/s
online code encode/decode, 4 MiB        (PR 1)        414 / 96 MB/s
Reed-Solomon encode/decode, 4 MiB       (PR 1)        201 / 185 MB/s
======================================  ============  ==============
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence


@dataclass
class Series:
    """A labelled (x, y) series, one line of a paper figure."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def append(self, x: float, y: float) -> None:
        """Add one point to the series."""
        self.x.append(float(x))
        self.y.append(float(y))

    def final(self) -> float:
        """The last y value (the figure's end-of-run number quoted in the text)."""
        if not self.y:
            raise ValueError(f"series {self.label!r} is empty")
        return self.y[-1]

    def as_rows(self) -> List[tuple[float, float]]:
        """The series as (x, y) tuples."""
        return list(zip(self.x, self.y))

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class TableResult:
    """A labelled table: ordered column names plus rows of values."""

    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append a row; every configured column must be provided."""
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append({column: values[column] for column in self.columns})

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        if name not in self.columns:
            raise KeyError(name)
        return [row[name] for row in self.rows]

    def format(self, float_format: str = "{:.3f}") -> str:
        """Render the table as aligned plain text (used by benches and the CLI)."""
        def render(value: object) -> str:
            if isinstance(value, bool):
                return str(value)
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        rendered = [[render(row[column]) for column in self.columns] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(line[i]) for line in rendered)) if rendered else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(self.columns))
        separator = "  ".join("-" * widths[i] for i in range(len(self.columns)))
        lines = [self.title, header, separator]
        for line in rendered:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(line))))
        return "\n".join(lines)


def load_benchmark_record(path: Path) -> Optional[dict]:
    """Load one ``BENCH_*.json`` trajectory record, or None if absent/corrupt."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None


def insertion_benchmark_table(record: dict) -> TableResult:
    """Render the BENCH_insertion.json rows as a files/s / lookups/s table."""
    table = TableResult(
        title="Insertion throughput (array-backed placement engine)",
        columns=["nodes", "files", "pipeline", "seconds", "files_per_s", "lookups_per_s"],
    )
    for row in record.get("results", []):
        table.add_row(
            nodes=row.get("node_count", 0),
            files=row.get("file_count", 0),
            pipeline=row.get("pipeline", "?"),
            seconds=float(row.get("seconds", 0.0)),
            files_per_s=float(row.get("files_per_s", 0.0)),
            lookups_per_s=float(row.get("lookups_per_s", 0.0)),
        )
    return table


def coding_benchmark_table(record: dict) -> TableResult:
    """Render the BENCH_coding.json rows as an encode/decode MB/s table."""
    table = TableResult(
        title="Coding throughput (vectorized erasure kernel)",
        columns=["code", "chunk_bytes", "n_blocks", "encode_MBps", "decode_MBps"],
    )
    for row in record.get("results", []):
        table.add_row(
            code=row.get("code", "?"),
            chunk_bytes=row.get("chunk_bytes", 0),
            n_blocks=row.get("n_blocks", 0),
            encode_MBps=float(row.get("encode_MBps", 0.0)),
            decode_MBps=float(row.get("decode_MBps", 0.0)),
        )
    return table


def soak_benchmark_table(record: dict) -> TableResult:
    """Render the BENCH_soak.json rows as an events/s + memory-bound table."""
    table = TableResult(
        title="Churn soak (join/leave engine + ledger compaction)",
        columns=[
            "nodes", "files", "sim_days", "pipeline", "seconds", "events",
            "events_per_s", "peak_rows", "peak_live_rows", "rows_reclaimed",
        ],
    )
    for row in record.get("results", []):
        table.add_row(
            nodes=row.get("node_count", 0),
            files=row.get("file_count", 0),
            sim_days=float(row.get("sim_days", 0.0)),
            pipeline=row.get("pipeline", "?"),
            seconds=float(row.get("seconds", 0.0)),
            events=row.get("events", 0),
            events_per_s=float(row.get("events_per_s", 0.0)),
            peak_rows=row.get("peak_rows", 0),
            peak_live_rows=row.get("peak_live_rows", 0),
            rows_reclaimed=row.get("rows_reclaimed", 0),
        )
    return table


def repair_benchmark_table(record: dict) -> TableResult:
    """Render the BENCH_repair.json rows as a time-to-repair/traffic table."""
    table = TableResult(
        title="Bandwidth-aware repair (fair-share transfer scheduler)",
        columns=[
            "scenario", "nodes", "fail_pct", "bandwidth_mb_s", "mode",
            "moved_gb", "traffic_gb", "mean_ttr_s", "makespan_s", "seconds",
        ],
    )
    for row in record.get("results", []):
        table.add_row(
            scenario=row.get("scenario", "?"),
            nodes=row.get("node_count", 0),
            fail_pct=float(row.get("fail_pct", 0.0)),
            bandwidth_mb_s=float(row.get("bandwidth_mb_s", 0.0)),
            mode=row.get("mode", "fail"),
            moved_gb=float(row.get("moved_gb", 0.0)),
            traffic_gb=float(row.get("traffic_gb", 0.0)),
            mean_ttr_s=float(row.get("mean_ttr_s", 0.0)),
            makespan_s=float(row.get("makespan_s", 0.0)),
            seconds=float(row.get("seconds", 0.0)),
        )
    return table


def faults_benchmark_table(record: dict) -> TableResult:
    """Render the BENCH_faults.json rows as a per-scenario durability table.

    The topology columns (core oversubscription ratio, peak trunk
    utilization, storm queue depth, foreground p95) are 0 on access-only
    rows and populated on the finite-core and TTR-vs-oversubscription rows.
    """
    table = TableResult(
        title="Fault injection (failure domains + durability-grade repair)",
        columns=[
            "scenario", "nodes", "nodes_down", "lost_gb", "availability_pct",
            "traffic_gb", "mean_ttr_s", "makespan_s", "degraded_reads",
            "failed_reads", "oversub", "trunk_util_pct", "storm_queue_peak",
            "foreground_p95_s", "seconds",
        ],
    )
    for row in record.get("results", []):
        table.add_row(
            scenario=row.get("scenario", "?"),
            nodes=row.get("node_count", 0),
            nodes_down=float(row.get("nodes_down", 0.0)),
            lost_gb=float(row.get("lost_gb", 0.0)),
            availability_pct=float(row.get("availability_pct", 0.0)),
            traffic_gb=float(row.get("traffic_gb", 0.0)),
            mean_ttr_s=float(row.get("mean_ttr_s", 0.0)),
            makespan_s=float(row.get("makespan_s", 0.0)),
            degraded_reads=float(row.get("degraded_reads", 0.0)),
            failed_reads=float(row.get("failed_reads", 0.0)),
            oversub=float(row.get("oversub", 0.0)),
            trunk_util_pct=float(row.get("trunk_util_pct", 0.0)),
            storm_queue_peak=float(row.get("storm_queue_peak", 0.0)),
            foreground_p95_s=float(row.get("foreground_p95_s", 0.0)),
            seconds=float(row.get("seconds", 0.0)),
        )
    return table


def tenants_benchmark_table(record: dict) -> TableResult:
    """Render the BENCH_tenants.json rows as a QoS isolation table.

    Flagship rows (tenant ``-``) carry the victim's ingest/probe SLOs and
    the storm's repair totals; the ``*-slo-*`` rows carry each tenant's
    availability and bytes-moved accounting from the shared ledger/fabric.
    """
    table = TableResult(
        title="Tenant QoS isolation (noisy-neighbor storm suite)",
        columns=[
            "scenario", "nodes", "tenant", "ingest_mb_s", "ingest_slowdown_x",
            "probe_p95_s", "repair_gb", "availability_pct", "moved_gb",
            "backlog_gb", "storm_queue_peak", "trunk_util_pct", "seconds",
        ],
    )
    for row in record.get("results", []):
        table.add_row(
            scenario=row.get("scenario", "?"),
            nodes=row.get("node_count", 0),
            tenant=row.get("tenant", "-"),
            ingest_mb_s=float(row.get("ingest_mb_s", 0.0)),
            ingest_slowdown_x=float(row.get("ingest_slowdown_x", 0.0)),
            probe_p95_s=float(row.get("probe_p95_s", 0.0)),
            repair_gb=float(row.get("repair_gb", 0.0)),
            availability_pct=float(row.get("availability_pct", 0.0)),
            moved_gb=float(row.get("moved_gb", 0.0)),
            backlog_gb=float(row.get("backlog_gb", 0.0)),
            storm_queue_peak=float(row.get("storm_queue_peak", 0.0)),
            trunk_util_pct=float(row.get("trunk_util_pct", 0.0)),
            seconds=float(row.get("seconds", 0.0)),
        )
    return table


def churn_benchmark_table(record: dict) -> TableResult:
    """Render the BENCH_churn.json rows as a failure-throughput table."""
    table = TableResult(
        title="Churn throughput (columnar block ledger)",
        columns=["scenario", "nodes", "files", "pipeline", "seconds", "failures", "failures_per_s"],
    )
    for row in record.get("results", []):
        table.add_row(
            scenario=row.get("scenario", "?"),
            nodes=row.get("node_count", 0),
            files=row.get("file_count", 0),
            pipeline=row.get("pipeline", "?"),
            seconds=float(row.get("seconds", 0.0)),
            failures=row.get("failures", 0),
            failures_per_s=float(row.get("failures_per_s", 0.0)),
        )
    return table


def serving_benchmark_table(record: dict) -> TableResult:
    """Render the BENCH_serving.json rows as a serve-path panel table."""
    table = TableResult(
        title="Serve path (open-loop Zipf traffic, per-gateway block caches)",
        columns=["scenario", "nodes", "zipf_s", "cache", "sustained_req_s",
                 "read_p50_s", "read_p95_s", "read_p99_s", "cache_hit_pct",
                 "load_imbalance_x", "promotions", "seconds"],
    )
    for row in record.get("results", []):
        table.add_row(
            scenario=row.get("scenario", "?"),
            nodes=row.get("node_count", 0),
            zipf_s=float(row.get("zipf_s", 0.0)),
            cache=float(row.get("cache", 0.0)),
            sustained_req_s=float(row.get("sustained_req_s", 0.0)),
            read_p50_s=float(row.get("read_p50_s", 0.0)),
            read_p95_s=float(row.get("read_p95_s", 0.0)),
            read_p99_s=float(row.get("read_p99_s", 0.0)),
            cache_hit_pct=float(row.get("cache_hit_pct", 0.0)),
            load_imbalance_x=float(row.get("load_imbalance_x", 0.0)),
            promotions=float(row.get("promotions", 0.0)),
            seconds=float(row.get("seconds", 0.0)),
        )
    return table


def routing_benchmark_table(record: dict) -> TableResult:
    """Render the BENCH_routing.json rows as a routing-fabric panel table."""
    table = TableResult(
        title="Routing fabric (batched Pastry/Chord lookups, array engines)",
        columns=["engine", "nodes", "lookups", "avg_hops", "p95_hops",
                 "max_hops", "build_s", "routes_per_s", "table_mb",
                 "bytes_per_node"],
    )
    for row in record.get("results", []):
        table.add_row(
            engine=row.get("engine", "?"),
            nodes=float(row.get("nodes", 0.0)),
            lookups=float(row.get("lookups", 0.0)),
            avg_hops=float(row.get("avg_hops", 0.0)),
            p95_hops=float(row.get("p95_hops", 0.0)),
            max_hops=float(row.get("max_hops", 0.0)),
            build_s=float(row.get("build_s", 0.0)),
            routes_per_s=float(row.get("routes_per_s", 0.0)),
            table_mb=float(row.get("table_mb", 0.0)),
            bytes_per_node=float(row.get("bytes_per_node", 0.0)),
        )
    return table


def _benchmark_section(root: Path, filename: str, table_fn, speedup_label: str) -> List[str]:
    """One record's summary: its table plus a rendered speedups line.

    Ratio entries get an ``x`` suffix; absolute entries (throughputs ending
    in ``_per_s``, wall times ending in ``_seconds``) are printed plain.
    """
    record = load_benchmark_record(Path(root) / filename)
    if record is None:
        return [f"{filename} not found - run `python -m repro.cli bench`"]
    sections = [table_fn(record).format(float_format="{:,.1f}")]
    speedups = record.get("speedups", {})
    rendered = [
        f"{key}={value:,.1f}"
        + ("" if key.endswith("_per_s") or key.endswith("_seconds") else "x")
        for key, value in sorted(speedups.items())
        if isinstance(value, (int, float))
    ]
    if rendered:
        sections.append(speedup_label + ": " + ", ".join(rendered))
    return sections


def benchmark_summary(root: Path) -> str:
    """The combined perf-trajectory summary for a repository checkout.

    Lists the insertion engine's files/s and lookups/s next to the coding
    kernel's MB/s, the churn engine's failures/s and the soak engine's
    events/s + compaction bound, so one report tracks every hot layer
    across PRs.
    """
    sections: List[str] = []
    sections += _benchmark_section(
        root, "BENCH_insertion.json", insertion_benchmark_table, "speedup vs scalar seed path"
    )
    sections += _benchmark_section(root, "BENCH_coding.json", coding_benchmark_table, "coding kernel")
    sections += _benchmark_section(
        root, "BENCH_churn.json", churn_benchmark_table, "churn speedup vs scalar seed path"
    )
    sections += _benchmark_section(root, "BENCH_soak.json", soak_benchmark_table, "soak engine")
    sections += _benchmark_section(
        root, "BENCH_repair.json", repair_benchmark_table, "repair subsystem"
    )
    sections += _benchmark_section(
        root, "BENCH_faults.json", faults_benchmark_table, "fault injection"
    )
    sections += _benchmark_section(
        root, "BENCH_tenants.json", tenants_benchmark_table, "tenant QoS isolation"
    )
    sections += _benchmark_section(
        root, "BENCH_serving.json", serving_benchmark_table, "serve path"
    )
    sections += _benchmark_section(
        root, "BENCH_routing.json", routing_benchmark_table,
        "routing fabric vs scalar seed router"
    )
    return "\n\n".join(sections)


def format_series_table(series_list: Sequence[Series], x_label: str = "x") -> str:
    """Render several series sharing the same x grid as one text table."""
    if not series_list:
        return "(no series)"
    table = TableResult(
        title="",
        columns=[x_label, *[series.label for series in series_list]],
    )
    length = min(len(series) for series in series_list)
    for index in range(length):
        row = {x_label: series_list[0].x[index]}
        for series in series_list:
            row[series.label] = series.y[index]
        table.add_row(**row)
    return table.format()
