"""Small result containers shared by the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class Series:
    """A labelled (x, y) series, one line of a paper figure."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def append(self, x: float, y: float) -> None:
        """Add one point to the series."""
        self.x.append(float(x))
        self.y.append(float(y))

    def final(self) -> float:
        """The last y value (the figure's end-of-run number quoted in the text)."""
        if not self.y:
            raise ValueError(f"series {self.label!r} is empty")
        return self.y[-1]

    def as_rows(self) -> List[tuple[float, float]]:
        """The series as (x, y) tuples."""
        return list(zip(self.x, self.y))

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class TableResult:
    """A labelled table: ordered column names plus rows of values."""

    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append a row; every configured column must be provided."""
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append({column: values[column] for column in self.columns})

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        if name not in self.columns:
            raise KeyError(name)
        return [row[name] for row in self.rows]

    def format(self, float_format: str = "{:.3f}") -> str:
        """Render the table as aligned plain text (used by benches and the CLI)."""
        def render(value: object) -> str:
            if isinstance(value, bool):
                return str(value)
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        rendered = [[render(row[column]) for column in self.columns] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(line[i]) for line in rendered)) if rendered else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(self.columns))
        separator = "  ".join("-" * widths[i] for i in range(len(self.columns)))
        lines = [self.title, header, separator]
        for line in rendered:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(line))))
        return "\n".join(lines)


def format_series_table(series_list: Sequence[Series], x_label: str = "x") -> str:
    """Render several series sharing the same x grid as one text table."""
    if not series_list:
        return "(no series)"
    table = TableResult(
        title="",
        columns=[x_label, *[series.label for series in series_list]],
    )
    length = min(len(series) for series in series_list)
    for index in range(length):
        row = {x_label: series_list[0].x[index]}
        for series in series_list:
            row[series.label] = series.y[index]
        table.add_row(**row)
    return table.format()
