"""Failure-domain fault panels: availability, data loss, repair under outages.

The paper's robustness story (Fig 10, Table 3) is built from *independent*
node failures.  This experiment subjects the same archive to the correlated
events a deployment actually sees -- injected by
:class:`~repro.sim.faults.FaultInjector` against the discrete-event kernel --
and reports, per scenario, the four durability metrics of the robustness
subsystem:

* **availability** -- unavailable files after the event (and, where repair is
  disabled, the degraded-read vs failed-read census of a sampled read
  workload against the wounded archive);
* **data loss** -- chunks and bytes that fell below the decode threshold;
* **time-to-repair** -- per-failure repair completion times and the overall
  repair makespan under the fair-share transfer scheduler;
* **repair traffic** -- bytes crossing the network to re-protect the data
  (regeneration reads plus replica re-replication copies).

Scenarios, all at the paper's 10 000-node scale on one core: a whole-site
outage (one correlated owner-domain mask over the ledger's int16 domain
columns), a whole-rack outage (round-robin striping makes it loss-free: the
erosion oracle), a 10 % flash-crowd mass failure with and without repair, a
staggered rolling restart (reboots, not disk losses), and a rack outage
repaired while a quarter of the population runs on degraded links.

With ``oversubscription`` set, every panel re-runs behind the two-stage core
model (:func:`repro.core.transfer.oversubscribed_topology`): repair flows
contend on rack-aggregation and site-transit trunks carrying the members'
aggregate access bandwidth divided by the ratio, repair submissions pass a
bounded admission window (``repair_window``, overflow queued FIFO) at a
fair-share ``repair_weight`` below foreground traffic, and the extra
``storm_site_outage`` panel measures recovery-storm isolation: foreground
retrieve probes ride through a whole-site outage and report their p95
latency beside the storm's peak queue depth and trunk utilization.

Run it::

    python -m repro.cli faults                 # paper scale, access-only
    python -m repro.cli faults --oversub 4     # 4:1 oversubscribed core
    python -m repro.cli faults --scale 0.1     # quick look
    python -m repro.cli faults --smoke         # CI tier-1 smoke (seconds)
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.core.policies import StoragePolicy
from repro.core.recovery import RecoveryManager
from repro.core.storage import StorageSystem
from repro.core.transfer import TransferScheduler, oversubscribed_topology
from repro.erasure.chunk_codec import ChunkCodec
from repro.erasure.xor_code import XorParityCode
from repro.experiments.results import TableResult
from repro.overlay.dht import DHTView
from repro.overlay.network import OverlayNetwork
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector, assign_domains
from repro.sim.rng import RandomStreams
from repro.workloads.capacity import CapacityConfig, generate_capacities
from repro.workloads.filetrace import GB, MB, FileTraceConfig, generate_file_trace

#: Scenario keys understood by :meth:`FaultsExperiment._run_scenario`.
SCENARIOS = (
    "site_outage",
    "rack_outage",
    "flash_crowd",
    "flash_crowd_unrepaired",
    "rolling_restart",
    "degraded_rack_outage",
)

#: The finite-core panel set: the six base panels plus the recovery-storm
#: isolation panel (whole-site outage with foreground retrieve probes).
FINITE_CORE_SCENARIOS = SCENARIOS + ("storm_site_outage",)


@dataclass(frozen=True)
class FaultsConfig:
    """Defaults for the fault-injection panels (time unit: seconds)."""

    node_count: int = 10_000
    capacity_mean: int = 45 * GB
    capacity_std: int = 10 * GB
    file_count: int = 10_000
    mean_file_size: int = 243 * MB
    std_file_size: int = 55 * MB
    min_file_size: int = 50 * MB
    blocks_per_chunk: int = 2
    #: Replication target per placement; 2 exercises the re-replication path.
    block_replication: int = 2
    #: Failure-domain grid: ``sites x racks_per_site`` racks, round-robin
    #: striped over the id space (a site outage downs 1/sites of the nodes).
    sites: int = 4
    racks_per_site: int = 4
    #: Per-node symmetric link capacity (MB per simulated second).
    bandwidth_mb_s: float = 8.0
    #: Simulated seconds between consecutive per-node repair passes after a
    #: correlated outage (all members are down before the first pass; the
    #: staggering only bounds concurrent repair flows, not the end state).
    repair_spacing_s: float = 5.0
    #: Population fraction downed by the flash-crowd scenarios.
    flash_fraction: float = 0.10
    #: Rolling restart: node *i* of ``restart_count`` reboots at
    #: ``i * restart_interval_s`` and returns ``restart_downtime_s`` later.
    restart_count: int = 10
    restart_interval_s: float = 30.0
    restart_downtime_s: float = 60.0
    #: Degraded-repair scenario: this fraction of the population keeps only
    #: ``degrade_bandwidth_fraction`` of its links while a rack outage repairs.
    degrade_node_fraction: float = 0.25
    degrade_bandwidth_fraction: float = 0.25
    #: Files sampled by the post-event read probe (degraded/failed census).
    read_sample: int = 400
    #: Two-stage core model: when set, rack/site trunks carry the members'
    #: aggregate access bandwidth divided by this ratio (4.0 = the classic
    #: 4:1 oversubscribed aggregation layer); ``None`` = access links only,
    #: bit-identical to the pre-topology panels.
    oversubscription: Optional[float] = None
    #: Latency classes (simulated seconds), applied with the core model.
    intra_rack_latency_s: float = 0.0
    intra_site_latency_s: float = 0.0
    inter_site_latency_s: float = 0.0
    #: Repair QoS knobs: bounded in-flight repair window (``None`` =
    #: unbounded, the seed behaviour; overflow queues FIFO -- backpressure,
    #: never drops) and the repair class's fair-share weight (< 1.0 keeps
    #: re-replication below foreground traffic on every shared link).
    repair_window: Optional[int] = None
    repair_weight: float = 1.0
    #: Foreground retrieve probes issued during ``storm_site_outage`` (one
    #: block read each, weight 1.0), reported as a p95 latency.
    foreground_reads: int = 200
    foreground_period_s: float = 2.0
    scenarios: tuple = SCENARIOS
    seed: int = 7
    #: Run on the array engine + columnar block ledger (domain masks need it).
    vectorized: bool = True
    #: Override the population-build mode independently of the pipeline mode
    #: (None = follow ``vectorized``); identical RNG draws in both modes.
    fast_build: Optional[bool] = None

    def resolved_fast_build(self) -> bool:
        """Whether the population should skip the O(N^2) Pastry state build."""
        return self.vectorized if self.fast_build is None else self.fast_build


#: The paper-scale configuration: 10 000 nodes, ~2.4 TB, 16 racks in 4 sites.
PAPER_FAULTS = FaultsConfig()

#: Paper scale behind a 4:1 oversubscribed two-stage core: all six panels
#: re-run with finite trunks plus the recovery-storm isolation panel, repair
#: paced through a 64-transfer admission window at half foreground weight.
FINITE_CORE_FAULTS = replace(
    PAPER_FAULTS,
    oversubscription=4.0,
    repair_window=64,
    repair_weight=0.5,
    scenarios=FINITE_CORE_SCENARIOS,
)

#: Tier-1 smoke scale: every scenario in a few seconds on one core.
SMOKE_FAULTS = FaultsConfig(
    node_count=160,
    capacity_mean=400 * MB,
    capacity_std=100 * MB,
    file_count=240,
    mean_file_size=10 * MB,
    std_file_size=3 * MB,
    min_file_size=1 * MB,
    repair_spacing_s=0.0,
    restart_count=5,
    restart_interval_s=5.0,
    restart_downtime_s=10.0,
    read_sample=120,
)

#: Smoke scale behind the finite core (the ``faults --smoke --oversub 4``
#: CI variant): every finite-core panel in a few seconds.
SMOKE_FINITE_CORE = replace(
    SMOKE_FAULTS,
    oversubscription=4.0,
    repair_window=16,
    repair_weight=0.5,
    foreground_reads=40,
    foreground_period_s=0.5,
    scenarios=FINITE_CORE_SCENARIOS,
)


@dataclass
class FaultsResult:
    """One row per scenario plus wall-clock timings."""

    config: FaultsConfig
    rows: List[Dict[str, float]] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)

    def row(self, scenario: str) -> Dict[str, float]:
        """The accounting row of one scenario."""
        for entry in self.rows:
            if entry["scenario"] == scenario:
                return entry
        raise KeyError(scenario)

    def durability_table(self) -> TableResult:
        table = TableResult(
            title="Fault scenarios — durability "
                  f"({self.config.block_replication}-copy target, "
                  f"{self.config.sites}x{self.config.racks_per_site} racks)",
            columns=["scenario", "nodes_down", "rows_killed", "replicas_restored",
                     "regenerated_gb", "lost_gb", "chunks_lost", "availability_pct"],
        )
        for row in self.rows:
            table.add_row(**{column: row[column] for column in table.columns})
        return table

    def repair_table(self) -> TableResult:
        table = TableResult(
            title="Fault scenarios — repair timing, traffic and read census "
                  f"({self.config.bandwidth_mb_s:g} MB/s per-node links)",
            columns=["scenario", "traffic_gb", "mean_ttr_s", "max_ttr_s",
                     "makespan_s", "degraded_reads", "failed_reads", "reads_sampled"],
        )
        for row in self.rows:
            table.add_row(**{column: row[column] for column in table.columns})
        return table

    def topology_table(self) -> TableResult:
        """The two-stage-core panel: trunk load, storm backlog, isolation."""
        config = self.config
        window = "unbounded" if config.repair_window is None else str(config.repair_window)
        table = TableResult(
            title="Fault scenarios — two-stage core "
                  f"({config.oversubscription or 0:g}:1 oversubscription, "
                  f"repair window {window}, weight {config.repair_weight:g})",
            columns=["scenario", "oversub", "trunk_util_pct", "storm_queue_peak",
                     "foreground_reads_done", "foreground_p95_s", "makespan_s"],
        )
        for row in self.rows:
            table.add_row(**{column: row[column] for column in table.columns})
        return table


class FaultsExperiment:
    """Runs the correlated-failure scenario panels (fresh deployment per cell)."""

    def __init__(self, config: Optional[FaultsConfig] = None) -> None:
        self.config = config or FaultsConfig()

    def _deployment(self, streams: RandomStreams):
        config = self.config
        capacities = generate_capacities(
            CapacityConfig(
                node_count=config.node_count,
                distribution="normal",
                mean=config.capacity_mean,
                std=config.capacity_std,
            ),
            rng=streams.fresh("capacities"),
        )
        network = OverlayNetwork.build(
            config.node_count,
            rng=streams.fresh("overlay"),
            capacities=list(capacities),
            routing_state=not config.resolved_fast_build(),
        )
        # RNG-free, so the population is byte-identical to an undomained build.
        assign_domains(network.nodes(), sites=config.sites,
                       racks_per_site=config.racks_per_site)
        storage = StorageSystem(
            DHTView(network),
            codec=ChunkCodec(XorParityCode(group_size=2),
                             blocks_per_chunk=config.blocks_per_chunk),
            policy=StoragePolicy(block_replication=config.block_replication),
            vectorized=config.vectorized,
        )
        trace = generate_file_trace(
            FileTraceConfig(
                file_count=config.file_count,
                mean_size=config.mean_file_size,
                std_size=config.std_file_size,
                min_size=config.min_file_size,
            ),
            rng=streams.fresh("trace"),
        )
        for record in trace:
            storage.store_file(record.name, record.size)
        return network, storage

    def _probe_reads(self, storage: StorageSystem) -> Dict[str, float]:
        """Read a deterministic file sample; count degraded vs failed reads."""
        names = sorted(storage.files)[: self.config.read_sample]
        degraded_before = storage.degraded_reads
        failed_before = storage.failed_reads
        for name in names:
            storage.retrieve_file(name)
        return {
            "reads_sampled": float(len(names)),
            "degraded_reads": float(storage.degraded_reads - degraded_before),
            "failed_reads": float(storage.failed_reads - failed_before),
        }

    def _inject(self, scenario: str, injector: FaultInjector,
                network: OverlayNetwork) -> None:
        config = self.config
        if scenario in ("site_outage", "storm_site_outage"):
            injector.fail_domain(site=0)
        elif scenario == "rack_outage":
            injector.fail_domain(rack=0)
        elif scenario == "flash_crowd":
            injector.flash_crowd(fraction=config.flash_fraction,
                                 rng=random.Random(config.seed))
        elif scenario == "flash_crowd_unrepaired":
            # No repair: the read probe censuses degraded vs failed reads
            # against the wounded archive.
            injector.flash_crowd(fraction=config.flash_fraction,
                                 rng=random.Random(config.seed), repair=False)
        elif scenario == "rolling_restart":
            victims = [node.node_id
                       for node in network.live_nodes()[: config.restart_count]]
            injector.rolling_restart(victims, interval=config.restart_interval_s,
                                     downtime=config.restart_downtime_s)
        elif scenario == "degraded_rack_outage":
            live = sorted(network.live_nodes(), key=lambda node: int(node.node_id))
            count = max(1, int(len(live) * config.degrade_node_fraction))
            stride = max(1, len(live) // count)
            slow = [int(node.node_id) for node in live[::stride][:count]]
            injector.degrade_nodes(slow, fraction=config.degrade_bandwidth_fraction)
            # The outage must repair *through* the degraded links: pick the
            # rack whose stride-selected members were just slowed.
            injector.fail_domain(rack=1)
        else:
            raise ValueError(f"unknown fault scenario {scenario!r}")

    def _schedule_foreground_reads(self, storage, network, transfers, sim) -> List[float]:
        """Foreground retrieve probes riding through the storm at weight 1.0.

        Each probe reads one real stored block (a live holder of a sampled
        file's first placement) to a live client node; the filled list of
        completion latencies feeds the panel's p95.  Deterministic: sorted
        file names, stride-picked clients, no RNG.
        """
        config = self.config
        durations: List[float] = []
        if config.foreground_reads <= 0:
            return durations
        live = sorted(network.live_nodes(), key=lambda node: int(node.node_id))
        names = sorted(storage.files)
        if not live or not names:
            return durations

        def issue(index: int) -> None:
            stored = storage.files[names[index % len(names)]]
            if not stored.chunks or not stored.chunks[0].placements:
                return
            placement = stored.chunks[0].placements[0]
            src = None
            for node_id in (placement.node_id, *placement.replica_nodes):
                if node_id in network and network.node(node_id).alive:
                    src = int(node_id)
                    break
            client = live[(index * 13 + 1) % len(live)]
            if src is None or not client.alive or src == int(client.node_id):
                return  # every copy died with the site, or the client did
            submitted = sim.now
            transfers.submit(
                float(placement.size),
                src=src,
                dst=int(client.node_id),
                on_complete=lambda t: durations.append(t.finished_at - submitted),
            )

        for index in range(config.foreground_reads):
            sim.schedule(index * config.foreground_period_s, lambda i=index: issue(i))
        return durations

    def _run_scenario(self, scenario: str) -> Dict[str, float]:
        """One fresh deployment + one injected scenario, drained to quiescence."""
        config = self.config
        streams = RandomStreams(config.seed)
        cell_start = time.perf_counter()
        network, storage = self._deployment(streams)
        distribute_s = time.perf_counter() - cell_start

        sim = Simulator()
        rate = config.bandwidth_mb_s * MB
        topology = None
        if config.oversubscription is not None:
            topology = oversubscribed_topology(
                network.nodes(),
                access_bandwidth=rate,
                oversubscription=config.oversubscription,
                intra_rack_latency=config.intra_rack_latency_s,
                intra_site_latency=config.intra_site_latency_s,
                inter_site_latency=config.inter_site_latency_s,
            )
        transfers = TransferScheduler(sim, uplink=rate, downlink=rate,
                                      topology=topology)
        recovery = RecoveryManager(storage, transfers=transfers,
                                   repair_window=config.repair_window,
                                   repair_weight=config.repair_weight)
        injector = FaultInjector(sim, network, recovery=recovery, transfers=transfers,
                                 repair_spacing=config.repair_spacing_s)

        inject_start = time.perf_counter()
        durations: List[float] = []
        if scenario == "storm_site_outage":
            durations = self._schedule_foreground_reads(storage, network, transfers, sim)
        self._inject(scenario, injector, network)
        sim.run()  # drains staggered restarts and every repair transfer
        inject_s = time.perf_counter() - inject_start

        probe = self._probe_reads(storage)
        events = injector.events
        ttrs = np.asarray(recovery.repair_times(), dtype=float)
        summary = transfers.summary()
        unavailable = storage.unavailable_file_count()
        total_files = max(1, len(storage.files))
        histogram = storage.ledger.replication_histogram()
        under_target = float(histogram[1:config.block_replication].sum())
        return {
            "scenario": scenario,
            # Degraded nodes are slowed, not downed: count only real outages.
            "nodes_down": float(sum(event.nodes_affected for event in events
                                    if event.scenario != "degraded_nodes")),
            "rows_killed": float(sum(event.rows_killed for event in events)),
            "replicas_restored": float(sum(e.replicas_restored for e in events)),
            "regenerated_gb": sum(e.bytes_regenerated for e in events) / GB,
            "lost_gb": sum(e.data_bytes_lost for e in events) / GB,
            "chunks_lost": float(sum(e.chunks_lost for e in events)),
            "availability_pct": 100.0 * (1.0 - unavailable / total_files),
            "traffic_gb": summary["bytes_submitted"] / GB,
            "mean_ttr_s": float(ttrs.mean()) if ttrs.size else 0.0,
            "max_ttr_s": float(ttrs.max()) if ttrs.size else 0.0,
            "makespan_s": summary["last_completion_time"],
            "transfers_failed": summary["failed"],
            # Rows left alive but below the replication target after repair
            # (0 = the histogram is back to target for every survivor).
            "under_target_rows": under_target,
            # -- two-stage core panels (all 0 on the access-only model) ------
            "oversub": float(config.oversubscription or 0.0),
            "trunk_util_pct": self._peak_trunk_utilization(
                transfers, summary["last_completion_time"]
            ),
            "storm_queue_peak": (
                float(recovery.pacer.peak_queue_depth) if recovery.pacer else 0.0
            ),
            "foreground_reads_done": float(len(durations)),
            "foreground_p95_s": (
                float(np.percentile(np.asarray(durations), 95)) if durations else 0.0
            ),
            "distribute_s": distribute_s,
            "inject_s": inject_s,
            **probe,
        }

    @staticmethod
    def _peak_trunk_utilization(transfers: TransferScheduler, makespan: float) -> float:
        """The busiest finite trunk's bytes over capacity x makespan, in %."""
        if makespan <= 0:
            return 0.0
        peak = 0.0
        for entry in transfers.trunk_summary().values():
            if entry["capacity"] > 0:
                peak = max(peak, 100.0 * entry["bytes"] / (entry["capacity"] * makespan))
        return peak

    def oversubscription_sweep(self, ratios=(1.0, 2.0, 4.0, 8.0)) -> List[Dict[str, float]]:
        """Time-to-repair of one whole-site outage vs the core's ratio.

        Each ratio re-runs the ``site_outage`` cell on a fresh deployment
        with trunks carrying ``aggregate access / ratio``; the 1.0 row is the
        non-blocking core.  The TTR growth with the ratio is the panel
        recorded as ``ttr_vs_oversubscription`` in ``BENCH_faults.json``.
        """
        rows: List[Dict[str, float]] = []
        for ratio in ratios:
            cell = FaultsExperiment(
                replace(self.config, oversubscription=float(ratio),
                        scenarios=("site_outage",))
            )
            row = cell._run_scenario("site_outage")
            rows.append({
                "oversub": float(ratio),
                "mean_ttr_s": row["mean_ttr_s"],
                "max_ttr_s": row["max_ttr_s"],
                "makespan_s": row["makespan_s"],
                "trunk_util_pct": row["trunk_util_pct"],
                "traffic_gb": row["traffic_gb"],
            })
        return rows

    def run(self) -> FaultsResult:
        """Produce every configured scenario row (fresh deployment per cell)."""
        result = FaultsResult(config=self.config)
        start = time.perf_counter()
        for scenario in self.config.scenarios:
            result.rows.append(self._run_scenario(scenario))
        result.timings = {
            "total_s": time.perf_counter() - start,
            "cells": float(len(result.rows)),
        }
        return result
