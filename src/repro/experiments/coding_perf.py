"""Erasure-coding performance: Table 2.

The paper encodes a 4 MB chunk with a NULL code, a (2,3) XOR code and the
online code (q=3, epsilon=0.01, 4096 blocks per chunk) and reports the encoded
size and the encode time, with overheads relative to NULL.  The harness runs
the real coders on real bytes; wall-clock milliseconds differ from the paper's
Java implementation on their host, but the relative structure (XOR slower than
NULL, online slower than XOR, online's ~3 % size overhead vs XOR's 50 %) is a
property of the algorithms and carries over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.erasure.chunk_codec import ChunkCodec, CodingMeasurement
from repro.erasure.null_code import NullCode
from repro.erasure.online_code import OnlineCode, OnlineCodeParameters
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.xor_code import XorParityCode
from repro.experiments.results import TableResult
from repro.workloads.filetrace import MB


@dataclass(frozen=True)
class CodingPerfConfig:
    """Configuration of the Table 2 measurement.

    The default scales the chunk to 1 MB with 512 blocks so the bench runs in
    a couple of seconds; set ``chunk_size=4*MB, blocks_per_chunk=4096`` for the
    paper's exact parameters.
    """

    chunk_size: int = 1 * MB
    blocks_per_chunk: int = 512
    online_epsilon: float = 0.01
    online_q: int = 3
    xor_group_size: int = 2
    repetitions: int = 3
    include_reed_solomon: bool = False
    seed: int = 3


def _codecs(config: CodingPerfConfig) -> Dict[str, ChunkCodec]:
    codecs: Dict[str, ChunkCodec] = {
        "Null": ChunkCodec(NullCode(), blocks_per_chunk=config.blocks_per_chunk),
        "XOR": ChunkCodec(
            XorParityCode(group_size=config.xor_group_size),
            blocks_per_chunk=config.blocks_per_chunk,
        ),
        "Online": ChunkCodec(
            OnlineCode(
                OnlineCodeParameters(epsilon=config.online_epsilon, q=config.online_q),
                seed=config.seed,
            ),
            blocks_per_chunk=config.blocks_per_chunk,
        ),
    }
    if config.include_reed_solomon:
        codecs["Reed-Solomon"] = ChunkCodec(
            ReedSolomonCode(parity_blocks=2), blocks_per_chunk=min(config.blocks_per_chunk, 64)
        )
    return codecs


def run_coding_performance(config: Optional[CodingPerfConfig] = None) -> TableResult:
    """Measure encode/decode time and size overhead for each code (Table 2)."""
    config = config or CodingPerfConfig()
    rng = np.random.default_rng(config.seed)
    payload = rng.integers(0, 256, size=config.chunk_size, dtype=np.uint8).tobytes()

    table = TableResult(
        title=f"Table 2 — coding a {config.chunk_size / MB:.1f} MB chunk "
        f"({config.blocks_per_chunk} blocks/chunk)",
        columns=[
            "code",
            "encoded_size_mb",
            "size_overhead_pct",
            "encode_ms",
            "encode_overhead_pct",
            "decode_ms",
            "encode_MBps",
            "decode_MBps",
        ],
    )

    measurements: Dict[str, List[CodingMeasurement]] = {}
    for label, codec in _codecs(config).items():
        runs = [codec.measure(payload) for _ in range(config.repetitions)]
        measurements[label] = runs

    null_encode = float(np.mean([m.encode_seconds for m in measurements["Null"]]))
    for label, runs in measurements.items():
        encode = float(np.mean([m.encode_seconds for m in runs]))
        decode = float(np.mean([m.decode_seconds for m in runs]))
        encoded_size = float(np.mean([m.encoded_size for m in runs]))
        table.add_row(
            code=label,
            encoded_size_mb=encoded_size / MB,
            size_overhead_pct=100.0 * (encoded_size / config.chunk_size - 1.0),
            encode_ms=encode * 1e3,
            encode_overhead_pct=(100.0 * (encode / null_encode - 1.0)) if null_encode > 0 else 0.0,
            decode_ms=decode * 1e3,
            encode_MBps=float(np.mean([m.encode_throughput_mb_s for m in runs])),
            decode_MBps=float(np.mean([m.decode_throughput_mb_s for m in runs])),
        )
    return table
