"""Common experiment configuration base and the experiment registry.

Every experiment module so far grew its own frozen config dataclass with the
same four knobs (population size, seed, vectorized engine, fast build) under
slightly different spellings.  :class:`ExperimentConfig` is the shared base;
:class:`ExperimentSpec` + :func:`register_experiment` give the CLI and the
benchmarks one table to look experiments up in, instead of another
hand-maintained if/elif ladder per consumer.

``experiments/serving.py`` is the first registrant; existing experiments
migrate opportunistically (their config classes can subclass
:class:`ExperimentConfig` without changing any field defaults).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs every experiment shares (subclasses add their own fields)."""

    node_count: int = 200
    seed: int = 1
    #: Run on the array engine + columnar block ledger.
    vectorized: bool = True
    #: ``None`` follows ``vectorized``; set explicitly to force the O(N^2)
    #: Pastry routing-state build on or off.
    fast_build: "bool | None" = None

    def resolved_fast_build(self) -> bool:
        """Whether the population should skip the O(N^2) Pastry state build."""
        return self.vectorized if self.fast_build is None else self.fast_build


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: its config type, presets and runner."""

    name: str
    help: str
    config_type: type
    #: Named preset configs (``"paper"``, ``"smoke"``, ...).
    presets: Mapping[str, ExperimentConfig] = field(default_factory=dict)
    #: ``runner(config) -> result`` (the result type is experiment-specific).
    runner: Callable = None

    def preset(self, name: str) -> ExperimentConfig:
        """One named preset config."""
        return self.presets[name]

    def run(self, config: ExperimentConfig):
        """Run the experiment with ``config``."""
        return self.runner(config)


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register_experiment(spec: ExperimentSpec) -> ExperimentSpec:
    """Register (or re-register, e.g. on module reload) one experiment."""
    _REGISTRY[spec.name] = spec
    return spec


def get_experiment(name: str) -> ExperimentSpec:
    """Look one registered experiment up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_experiments() -> Tuple[str, ...]:
    """The registered experiment names, sorted."""
    return tuple(sorted(_REGISTRY))
