"""Join/leave churn soak: long-horizon dynamics with bounded ledger memory.

The paper's dynamics experiments (Figure 10, Table 3) cover short failure
bursts -- at most 20 % of the population fails once, with no joins and no
returns.  This experiment opens the workload class those results gesture at:
a population under *sustained* churn for simulated weeks, where

* every node alternates exponential up/down sessions (the continuous session
  model of :class:`repro.sim.churn.ChurnModel`); a failure triggers the
  Section 4.4 regeneration pipeline, and the node later returns (by default
  with a wiped disk) and re-enters the DHT through the incremental boundary
  *insertion* patch;
* fresh nodes join as a Poisson process (drawing a new id and capacity) --
  with a routing-state-free population a join is O(1) overlay work plus one
  boundary patch, never an O(N) rebuild;
* nodes depart gracefully as a second Poisson process: with the default
  ``leave_mode="regenerate"`` their blocks are regenerated elsewhere from
  surviving redundancy and their ledger rows are released;
  ``leave_mode="migrate"`` instead *copies the blocks out* before departure
  (:meth:`repro.core.recovery.RecoveryManager.handle_leave`) -- each block
  crosses the network once, over the departing node's uplink, and
  ``tests/test_soak.py`` proves the copies land exactly where regeneration
  would have re-created them;
* an optional per-node bandwidth (``bandwidth_gb_per_hour``) charges every
  repair and migration to the fair-share transfer scheduler of
  :mod:`repro.core.transfer`, turning repairs into timed data movements
  without changing any sampled series (a pure timing overlay);
* the columnar block ledger is compacted periodically
  (:meth:`repro.core.block_ledger.BlockLedger.compact`), garbage-collecting
  the rows that repair re-points, wipes and departures release -- without the
  compaction pass the ledger's columns grow without bound over a week-long
  soak (every repair appends rows), which is exactly the leak the PR 3
  follow-up called out.

Availability, utilization, live population and ledger memory are sampled on a
fixed wall-clock grid.  ``vectorized=False`` preserves the seed scalar path
end to end (per-node dict walks, no ledger, no compaction);
``tests/test_soak.py`` asserts both paths -- and compaction on vs off --
produce identical sampled series.

Run the paper-scale preset (10 000 nodes, one simulated week)::

    python -m repro.cli soak                  # paper scale, minutes on a core
    python -m repro.cli soak --scale 0.1      # quick look
    python -m repro.cli soak --days 30        # longer horizon
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.policies import StoragePolicy
from repro.core.recovery import RecoveryManager
from repro.core.storage import StorageSystem
from repro.erasure.chunk_codec import ChunkCodec
from repro.erasure.xor_code import XorParityCode
from repro.experiments.results import TableResult
from repro.overlay.dht import DHTView
from repro.overlay.ids import random_node_id
from repro.overlay.network import OverlayNetwork
from repro.overlay.node import OverlayNode
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.capacity import CapacityConfig, generate_capacities
from repro.workloads.filetrace import GB, MB, FileTraceConfig, generate_file_trace

HOURS_PER_DAY = 24.0


@dataclass(frozen=True)
class SoakConfig:
    """Scaled-down defaults for the join/leave churn soak (time unit: hours)."""

    node_count: int = 300
    capacity_mean: int = 45 * GB
    capacity_std: int = 10 * GB
    file_count: int = 2_000
    mean_file_size: int = 243 * MB
    std_file_size: int = 55 * MB
    min_file_size: int = 50 * MB
    #: Blocks per chunk for the (2,3) XOR protection used during distribution.
    blocks_per_chunk: int = 2
    #: Copies kept of each encoded block (1 = primary only, the paper's
    #: insertion setting).  2+ keeps every placement alive through single
    #: departures, which is what makes migration == regeneration an oracle.
    block_replication: int = 1
    #: Simulated soak length.
    horizon_hours: float = 7 * HOURS_PER_DAY
    #: Session model: exponential up/down times (availability ~ up/(up+down)).
    mean_uptime_hours: float = 24.0
    mean_downtime_hours: float = 2.0
    #: Poisson rates for fresh-node joins and graceful departures.
    join_rate_per_hour: float = 2.0
    leave_rate_per_hour: float = 2.0
    #: Availability/usage/memory sampling grid.
    sample_every_hours: float = 6.0
    #: Ledger compaction period (vectorized path only).
    compact_every_hours: float = 24.0
    #: Whether a returning node comes back with a wiped disk (the conservative
    #: default: long outages lose the disk) or with its blocks intact.
    wipe_on_return: bool = True
    #: Gate for the periodic compaction pass (the soak oracle runs with and
    #: without it to assert compaction never changes observable state).
    compaction: bool = True
    #: How graceful departures move their data: ``"regenerate"`` charges the
    #: Section 4.4 failure pipeline (the node "fails", neighbours regenerate
    #: from surviving redundancy), ``"migrate"`` copies the blocks out over
    #: the departing node's uplink before it leaves
    #: (:meth:`repro.core.recovery.RecoveryManager.handle_leave`).
    leave_mode: str = "regenerate"
    #: Per-node symmetric link capacity in GB per simulated hour charged to
    #: the fair-share transfer scheduler (None = unconstrained links, i.e.
    #: the preserved instantaneous-repair behaviour).
    bandwidth_gb_per_hour: Optional[float] = None
    seed: int = 8
    #: Run distribution, repair and sampling on the array engine + columnar
    #: block ledger; ``False`` preserves the seed scalar path end to end.
    vectorized: bool = True
    #: Override the population-build mode independently of the pipeline mode
    #: (None = follow ``vectorized``); identical RNG draws in both modes.
    fast_build: Optional[bool] = None

    def resolved_fast_build(self) -> bool:
        """Whether the population should skip the O(N^2) Pastry state build."""
        return self.vectorized if self.fast_build is None else self.fast_build


#: The paper-scale soak: 10 000 nodes under one simulated week of session
#: churn plus ~50 joins and ~50 departures per hour.  The file count matches
#: the fig10/table3 presets so the three dynamics workloads share a baseline.
PAPER_SOAK = SoakConfig(
    node_count=10_000,
    file_count=20_000,
    join_rate_per_hour=50.0,
    leave_rate_per_hour=50.0,
)


@dataclass
class SoakResult:
    """Sampled series plus event accounting for one soak run."""

    config: SoakConfig
    time_hours: List[float] = field(default_factory=list)
    live_nodes: List[int] = field(default_factory=list)
    unavailable_pct: List[float] = field(default_factory=list)
    utilization_pct: List[float] = field(default_factory=list)
    #: Ledger sizing per sample (vectorized path only; empty on the seed path).
    ledger_rows: List[int] = field(default_factory=list)
    ledger_live_rows: List[int] = field(default_factory=list)
    ledger_allocated_rows: List[int] = field(default_factory=list)
    ledger_column_bytes: List[int] = field(default_factory=list)
    #: One entry per compaction pass: time plus the compact() stats.
    compactions: List[Dict[str, float]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    recovery_totals: Dict[str, float] = field(default_factory=dict)
    #: Transfer-scheduler aggregates (only when a bandwidth is configured).
    transfer_totals: Dict[str, float] = field(default_factory=dict)
    files_stored: int = 0
    timings: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> Dict[str, float]:
        """Headline numbers: events, availability, and the memory bound."""
        rows_reclaimed = sum(entry["rows_released"] for entry in self.compactions)
        return {
            "horizon_hours": self.config.horizon_hours,
            "files_stored": float(self.files_stored),
            "failures": float(self.counters.get("failures", 0)),
            "returns": float(self.counters.get("returns", 0)),
            "joins": float(self.counters.get("joins", 0)),
            "leaves": float(self.counters.get("leaves", 0)),
            "final_live_nodes": float(self.live_nodes[-1]) if self.live_nodes else 0.0,
            "final_unavailable_pct": self.unavailable_pct[-1] if self.unavailable_pct else 0.0,
            "max_unavailable_pct": max(self.unavailable_pct) if self.unavailable_pct else 0.0,
            "data_regenerated_gb": self.recovery_totals.get("total_regenerated_bytes", 0.0) / GB,
            "data_migrated_gb": self.recovery_totals.get("total_migrated_bytes", 0.0) / GB,
            "data_lost_gb": self.recovery_totals.get("total_data_lost_bytes", 0.0) / GB,
            "compactions": float(len(self.compactions)),
            "rows_reclaimed": float(rows_reclaimed),
            "peak_ledger_rows": float(max(self.ledger_rows)) if self.ledger_rows else 0.0,
            "peak_live_rows": float(max(self.ledger_live_rows)) if self.ledger_live_rows else 0.0,
            "peak_column_mb": (max(self.ledger_column_bytes) / MB) if self.ledger_column_bytes else 0.0,
        }

    def series_table(self) -> TableResult:
        """The sampled soak series as one aligned table (CLI output)."""
        columns = ["t_hours", "live_nodes", "unavailable_pct", "utilization_pct"]
        with_ledger = bool(self.ledger_rows)
        if with_ledger:
            columns += ["ledger_rows", "live_rows", "column_mb"]
        table = TableResult(title="Join/leave churn soak", columns=columns)
        for index, t in enumerate(self.time_hours):
            row = {
                "t_hours": t,
                "live_nodes": self.live_nodes[index],
                "unavailable_pct": self.unavailable_pct[index],
                "utilization_pct": self.utilization_pct[index],
            }
            if with_ledger:
                row["ledger_rows"] = self.ledger_rows[index]
                row["live_rows"] = self.ledger_live_rows[index]
                row["column_mb"] = self.ledger_column_bytes[index] / MB
            table.add_row(**row)
        return table


class SoakExperiment:
    """Runs the join/leave churn soak on the discrete-event kernel."""

    def __init__(self, config: Optional[SoakConfig] = None) -> None:
        self.config = config or SoakConfig()
        #: Final storage system after :meth:`run`, for post-soak oracles
        #: (e.g. the replication-histogram no-decay assertion).
        self.storage: Optional[StorageSystem] = None

    def _distribute(self, streams: RandomStreams) -> StorageSystem:
        config = self.config
        capacities = generate_capacities(
            CapacityConfig(
                node_count=config.node_count,
                distribution="normal",
                mean=config.capacity_mean,
                std=config.capacity_std,
            ),
            rng=streams.fresh("capacities"),
        )
        network = OverlayNetwork.build(
            config.node_count,
            rng=streams.fresh("overlay"),
            capacities=list(capacities),
            routing_state=not config.resolved_fast_build(),
        )
        storage = StorageSystem(
            DHTView(network),
            codec=ChunkCodec(XorParityCode(group_size=2), blocks_per_chunk=config.blocks_per_chunk),
            policy=StoragePolicy(block_replication=config.block_replication),
            vectorized=config.vectorized,
        )
        trace = generate_file_trace(
            FileTraceConfig(
                file_count=config.file_count,
                mean_size=config.mean_file_size,
                std_size=config.std_file_size,
                min_size=config.min_file_size,
            ),
            rng=streams.fresh("trace"),
        )
        for record in trace:
            storage.store_file(record.name, record.size)
        return storage

    def run(self) -> SoakResult:  # noqa: C901 - one event loop, many small closures
        config = self.config
        streams = RandomStreams(config.seed)
        phase_start = time.perf_counter()
        storage = self._distribute(streams)
        self.storage = storage
        distribute_s = time.perf_counter() - phase_start

        dht = storage.dht
        network = dht.network
        ledger = storage.ledger
        sim = Simulator()
        transfers = None
        if config.bandwidth_gb_per_hour is not None:
            from repro.core.transfer import TransferScheduler

            rate = config.bandwidth_gb_per_hour * GB
            transfers = TransferScheduler(sim, uplink=rate, downlink=rate)
        recovery = RecoveryManager(storage, transfers=transfers)
        result = SoakResult(config=config, files_stored=len(storage.files))
        counters = {"failures": 0, "returns": 0, "joins": 0, "leaves": 0}

        session_rng = streams.fresh("sessions")
        join_rng = streams.fresh("joins")
        leave_rng = streams.fresh("leaves")
        horizon = config.horizon_hours
        mean_up = config.mean_uptime_hours
        mean_down = config.mean_downtime_hours

        # -- session churn: every node alternates exponential up/down times --
        def schedule_failure(node_id) -> None:
            sim.schedule(session_rng.exponential(mean_up), lambda: fail_node(node_id))

        def fail_node(node_id) -> None:
            if node_id not in network:  # departed while the timer was pending
                return
            counters["failures"] += 1
            recovery.handle_failure(node_id)
            sim.schedule(session_rng.exponential(mean_down), lambda: return_node(node_id))

        def return_node(node_id) -> None:
            if node_id not in network:
                return
            counters["returns"] += 1
            node = network.node(node_id)
            node.recover(wipe=config.wipe_on_return)
            dht.add(node)  # incremental boundary *insertion* patch
            schedule_failure(node_id)

        for node in network.nodes():
            schedule_failure(node.node_id)

        # -- Poisson joins of fresh nodes -----------------------------------
        def schedule_join() -> None:
            if config.join_rate_per_hour > 0:
                sim.schedule(join_rng.exponential(1.0 / config.join_rate_per_hour), do_join)

        def do_join() -> None:
            counters["joins"] += 1
            node_id = random_node_id(join_rng)
            while node_id in network:  # pragma: no cover - negligible probability
                node_id = random_node_id(join_rng)
            capacity = max(1, int(join_rng.normal(config.capacity_mean, config.capacity_std)))
            node = OverlayNode(
                node_id=node_id,
                coordinates=(float(join_rng.uniform(0.0, 1000.0)),
                             float(join_rng.uniform(0.0, 1000.0))),
                capacity=capacity,
            )
            node.leaf_set = type(node.leaf_set)(node_id, network.leaf_set_half_size)
            network.join(node)  # O(1) on a routing-state-free population
            dht.add(node)
            schedule_failure(node_id)
            schedule_join()

        schedule_join()

        # -- Poisson graceful departures ------------------------------------
        def schedule_leave() -> None:
            if config.leave_rate_per_hour > 0:
                sim.schedule(leave_rng.exponential(1.0 / config.leave_rate_per_hour), do_leave)

        def do_leave() -> None:
            live = dht.state.nodes
            if len(live) > 2:
                counters["leaves"] += 1
                victim = live[int(leave_rng.integers(len(live)))]
                if config.leave_mode == "migrate":
                    # Graceful migration: the departing node copies its blocks
                    # to the nodes now responsible *before* leaving -- each
                    # block crosses the network once, over its uplink.
                    recovery.handle_leave(victim.node_id)
                else:
                    # Regeneration-style departure (the seed behaviour): the
                    # Section 4.4 failure pipeline re-creates every block from
                    # surviving redundancy, then the node leaves and its
                    # remaining ledger rows are released.
                    recovery.handle_failure(victim.node_id)
                    network.leave(victim.node_id)
            schedule_leave()

        schedule_leave()

        # -- sampling and periodic compaction -------------------------------
        total_files = max(1, len(storage.files))

        def sample() -> None:
            result.time_hours.append(sim.now)
            result.live_nodes.append(len(dht.state))
            result.unavailable_pct.append(100.0 * storage.unavailable_file_count() / total_files)
            result.utilization_pct.append(100.0 * dht.utilization())
            if ledger is not None:
                footprint = ledger.memory_footprint()
                result.ledger_rows.append(footprint["row_count"])
                result.ledger_live_rows.append(footprint["live_rows"])
                result.ledger_allocated_rows.append(footprint["allocated_rows"])
                result.ledger_column_bytes.append(footprint["column_bytes"])

        def sample_and_reschedule() -> None:
            sample()
            if sim.now + config.sample_every_hours < horizon:
                sim.schedule(config.sample_every_hours, sample_and_reschedule)

        sample_and_reschedule()

        if ledger is not None and config.compaction and config.compact_every_hours > 0:
            def compact_and_reschedule() -> None:
                stats = ledger.compact()
                entry: Dict[str, float] = {"t_hours": sim.now}
                entry.update({key: float(value) for key, value in stats.items()})
                result.compactions.append(entry)
                if sim.now + config.compact_every_hours < horizon:
                    sim.schedule(config.compact_every_hours, compact_and_reschedule)

            sim.schedule(config.compact_every_hours, compact_and_reschedule)

        soak_start = time.perf_counter()
        sim.run(until=horizon)
        sample()  # closing sample at the horizon
        result.counters = counters
        result.recovery_totals = recovery.totals()
        if transfers is not None:
            result.transfer_totals = transfers.summary()
        result.timings = {
            "distribute_s": distribute_s,
            "soak_s": time.perf_counter() - soak_start,
            "events": float(sim.events_processed),
        }
        return result
