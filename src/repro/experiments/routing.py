"""Routing-fabric panels: hops vs N, Chord vs Pastry under churn, seed speedups.

The seed's hop-by-hop router exists at two scales that never met before this
experiment: the scalar per-node Pastry state (exact, O(N^2) to build, used by
the small routing tests) and the DHT oracle view (fast, but no hop counts at
all).  The array engines (:mod:`repro.overlay.engine_pastry`,
:mod:`repro.overlay.engine_chord`) close that gap, and this experiment is
their showcase:

* **hops vs N** -- batched ``route_many`` lookups over fresh overlays at
  increasing population sizes, per engine: mean/median/p95 hop counts
  (~log16 N for Pastry, ~(log2 N)/2 for Chord), build time, routes/s and
  the engine's column memory footprint;
* **churn head-to-head** -- the same overlay churned by interleaved
  joins/leaves/failures with both engines attached; each engine's tables
  are patched incrementally, and the panel reports hop distributions
  before and after (the SNIPPETS lookup-harness ``summarize()`` shape);
* **seed vs array** -- at a common small N the scalar seed router and the
  Pastry engine are built over the *same* population and route the *same*
  lookups; the panel records build-time and routes/s speedups, and counts
  hop mismatches (the load-bearing number: it must be zero, and the oracle
  suite in ``tests/test_routing_engine.py`` pins the same identity
  path-by-path).

Run it::

    python -m repro.cli routing            # paper scale (10 000 nodes)
    python -m repro.cli routing --smoke    # CI smoke (seconds)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.base import (
    ExperimentConfig,
    ExperimentSpec,
    register_experiment,
)
from repro.experiments.results import TableResult
from repro.overlay.ids import random_node_id
from repro.overlay.network import OverlayNetwork
from repro.overlay.node import OverlayNode
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class RoutingConfig(ExperimentConfig):
    """Defaults for the routing panels (paper scale: 10 000 nodes)."""

    node_count: int = 10_000
    seed: int = 17
    #: Population sizes of the hops-vs-N panel (the largest is the flagship).
    population_sweep: tuple = (1_000, 3_000, 10_000)
    #: Batched lookups per (size, engine) cell.
    lookups: int = 5_000
    #: Engines of the head-to-head.
    engines: tuple = ("pastry", "chord")
    #: Churn panel: overlay size, interleaved events, post-churn lookups.
    churn_nodes: int = 2_000
    churn_events: int = 200
    churn_lookups: int = 2_000
    #: Seed-vs-array cell (the scalar build is O(N^2) -- keep it small).
    baseline_nodes: int = 400
    baseline_lookups: int = 400
    leaf_set_half_size: int = 8


#: The paper-scale flagship sweep.
PAPER_ROUTING = RoutingConfig()

#: Tier-1 smoke scale: every panel in seconds on one core.
SMOKE_ROUTING = RoutingConfig(
    node_count=400,
    population_sweep=(200, 400),
    lookups=400,
    churn_nodes=250,
    churn_events=60,
    churn_lookups=300,
    baseline_nodes=150,
    baseline_lookups=200,
)


def hop_summary(hops: np.ndarray) -> Dict[str, float]:
    """The SNIPPETS lookup-harness ``summarize()`` shape over a hop column."""
    values = np.asarray(hops, dtype=float)
    if values.size == 0:
        return {"n": 0.0, "avg": 0.0, "median": 0.0, "p95": 0.0,
                "min": 0.0, "max": 0.0}
    return {
        "n": float(values.size),
        "avg": float(values.mean()),
        "median": float(np.median(values)),
        "p95": float(np.percentile(values, 95)),
        "min": float(values.min()),
        "max": float(values.max()),
    }


@dataclass
class RoutingResult:
    """The three panels plus the headline speedup numbers."""

    config: RoutingConfig
    panel_rows: List[Dict[str, float]] = field(default_factory=list)
    churn_rows: List[Dict[str, float]] = field(default_factory=list)
    speedup_rows: List[Dict[str, float]] = field(default_factory=list)
    summary_values: Dict[str, float] = field(default_factory=dict)

    def panel_table(self) -> TableResult:
        """Hops vs N: per-engine hop distribution, build time, routes/s."""
        table = TableResult(
            title="Routing fabric — batched lookups vs population size",
            columns=["engine", "nodes", "lookups", "avg_hops", "median_hops",
                     "p95_hops", "max_hops", "build_s", "routes_per_s",
                     "table_mb", "bytes_per_node"],
        )
        for row in self.panel_rows:
            table.add_row(**{column: row[column] for column in table.columns})
        return table

    def churn_table(self) -> TableResult:
        """Chord vs Pastry hop distributions before and after churn."""
        table = TableResult(
            title="Routing under churn — incremental table repair head-to-head",
            columns=["engine", "phase", "nodes", "lookups", "avg_hops",
                     "median_hops", "p95_hops", "max_hops"],
        )
        for row in self.churn_rows:
            table.add_row(**{column: row[column] for column in table.columns})
        return table

    def speedup_table(self) -> TableResult:
        """Seed scalar router vs the array engine over the same population."""
        table = TableResult(
            title="Seed scalar router vs array engine (identical lookups)",
            columns=["pipeline", "nodes", "lookups", "build_s", "route_s",
                     "routes_per_s", "avg_hops", "hop_mismatches"],
        )
        for row in self.speedup_rows:
            table.add_row(**{column: row[column] for column in table.columns})
        return table

    def summary(self) -> Dict[str, float]:
        """The headline numbers the benchmark records and asserts on."""
        return dict(self.summary_values)


class RoutingExperiment:
    """Runs the three routing panels."""

    def __init__(self, config: Optional[RoutingConfig] = None) -> None:
        self.config = config or RoutingConfig()

    # ------------------------------------------------------------- workloads --
    def _lookup_workload(self, network: OverlayNetwork, count: int, rng):
        """``count`` random (key, start) pairs over the live population."""
        live = network.live_ids()
        keys = [random_node_id(rng) for _ in range(count)]
        starts = [live[int(index)]
                  for index in rng.integers(len(live), size=count)]
        return keys, starts

    def _build_network(self, nodes: int, rng) -> OverlayNetwork:
        return OverlayNetwork.build(
            nodes, rng, leaf_set_half_size=self.config.leaf_set_half_size,
            routing_state=False)

    # ---------------------------------------------------------------- panels --
    def run_panel(self) -> List[Dict[str, float]]:
        """Hops vs N, per engine, on fresh overlays."""
        config = self.config
        rows: List[Dict[str, float]] = []
        for nodes in config.population_sweep:
            streams = RandomStreams(config.seed)
            network = self._build_network(nodes, streams.fresh("overlay", nodes))
            keys, starts = self._lookup_workload(
                network, config.lookups, streams.fresh("lookups", nodes))
            for engine in config.engines:
                start_time = time.perf_counter()
                router = network.attach_router(engine, dispatch=False)
                build_s = time.perf_counter() - start_time
                start_time = time.perf_counter()
                result = router.route_many(keys, starts)
                route_s = time.perf_counter() - start_time
                stats = hop_summary(result.hops)
                footprint = router.memory_footprint()
                rows.append({
                    "engine": engine,
                    "nodes": float(nodes),
                    "lookups": stats["n"],
                    "avg_hops": stats["avg"],
                    "median_hops": stats["median"],
                    "p95_hops": stats["p95"],
                    "max_hops": stats["max"],
                    "build_s": build_s,
                    "routes_per_s": stats["n"] / route_s if route_s > 0 else 0.0,
                    "table_mb": footprint["total_bytes"] / 1e6,
                    "bytes_per_node": float(footprint["bytes_per_node"]),
                })
        return rows

    def run_churn(self) -> List[Dict[str, float]]:
        """Chord vs Pastry on one overlay churned under both engines."""
        config = self.config
        streams = RandomStreams(config.seed)
        network = self._build_network(
            config.churn_nodes, streams.fresh("churn-overlay"))
        routers = {engine: network.attach_router(engine, dispatch=False)
                   for engine in config.engines}
        rng = streams.fresh("churn-events")
        rows: List[Dict[str, float]] = []

        def measure(phase: str) -> None:
            keys, starts = self._lookup_workload(
                network, config.churn_lookups, streams.fresh("churn-lookups", phase))
            for engine, router in routers.items():
                stats = hop_summary(router.route_many(keys, starts).hops)
                rows.append({
                    "engine": engine,
                    "phase": phase,
                    "nodes": float(len(network.live_ids())),
                    "lookups": stats["n"],
                    "avg_hops": stats["avg"],
                    "median_hops": stats["median"],
                    "p95_hops": stats["p95"],
                    "max_hops": stats["max"],
                })

        measure("fresh")
        floor = max(16, config.churn_nodes // 2)
        for event in range(config.churn_events):
            live = network.live_ids()
            kind = int(rng.integers(3))
            if kind == 0 or len(live) <= floor:
                node = OverlayNode(
                    node_id=random_node_id(rng),
                    coordinates=(float(rng.uniform(0.0, 1000.0)),
                                 float(rng.uniform(0.0, 1000.0))),
                )
                node.leaf_set = type(node.leaf_set)(
                    node.node_id, config.leaf_set_half_size)
                network.join(node)
            elif kind == 1:
                network.leave(live[int(rng.integers(len(live)))])
            else:
                network.fail(live[int(rng.integers(len(live)))])
        measure("churned")
        return rows

    def run_speedup(self) -> List[Dict[str, float]]:
        """Seed scalar router vs the Pastry engine over one population."""
        config = self.config
        nodes = config.baseline_nodes

        # Identical populations: same stream label, two independent draws.
        build_start = time.perf_counter()
        seed_network = OverlayNetwork.build(
            nodes, RandomStreams(config.seed).fresh("baseline"),
            leaf_set_half_size=config.leaf_set_half_size, routing_state=True)
        seed_build_s = time.perf_counter() - build_start
        fast_network = OverlayNetwork.build(
            nodes, RandomStreams(config.seed).fresh("baseline"),
            leaf_set_half_size=config.leaf_set_half_size, routing_state=False)
        build_start = time.perf_counter()
        router = fast_network.attach_router("pastry")
        array_build_s = time.perf_counter() - build_start

        keys, starts = self._lookup_workload(
            seed_network, config.baseline_lookups,
            RandomStreams(config.seed).fresh("baseline-lookups"))

        route_start = time.perf_counter()
        seed_results = [seed_network.route(key, start)
                        for key, start in zip(keys, starts)]
        seed_route_s = time.perf_counter() - route_start
        seed_hops = np.array([result.hops for result in seed_results])

        route_start = time.perf_counter()
        batch = router.route_many(keys, starts)
        array_route_s = time.perf_counter() - route_start
        mismatches = int((seed_hops != batch.hops).sum())

        count = float(len(keys))
        rows = [
            {
                "pipeline": "seed scalar",
                "nodes": float(nodes),
                "lookups": count,
                "build_s": seed_build_s,
                "route_s": seed_route_s,
                "routes_per_s": count / seed_route_s if seed_route_s > 0 else 0.0,
                "avg_hops": float(seed_hops.mean()),
                "hop_mismatches": 0.0,
            },
            {
                "pipeline": "array engine",
                "nodes": float(nodes),
                "lookups": count,
                "build_s": array_build_s,
                "route_s": array_route_s,
                "routes_per_s": count / array_route_s if array_route_s > 0 else 0.0,
                "avg_hops": float(batch.hops.mean()),
                "hop_mismatches": float(mismatches),
            },
        ]
        return rows

    def run(self) -> RoutingResult:
        """Run every panel and assemble the headline summary."""
        result = RoutingResult(config=self.config)
        result.panel_rows = self.run_panel()
        result.churn_rows = self.run_churn()
        result.speedup_rows = self.run_speedup()

        summary: Dict[str, float] = {}
        flagship = max(self.config.population_sweep)
        for row in result.panel_rows:
            if row["nodes"] == flagship:
                prefix = row["engine"]
                summary[f"{prefix}_avg_hops"] = row["avg_hops"]
                summary[f"{prefix}_routes_per_s"] = row["routes_per_s"]
                summary[f"{prefix}_build_seconds"] = row["build_s"]
                summary[f"{prefix}_bytes_per_node"] = row["bytes_per_node"]
        seed_row, array_row = result.speedup_rows
        if array_row["build_s"] > 0:
            summary["build_speedup_x"] = seed_row["build_s"] / array_row["build_s"]
        if array_row["route_s"] > 0:
            summary["route_speedup_x"] = seed_row["route_s"] / array_row["route_s"]
        summary["hop_identity_mismatches"] = array_row["hop_mismatches"]
        result.summary_values = summary
        return result


def run_routing(config: RoutingConfig) -> RoutingResult:
    """Registry entry point: run the routing panels with ``config``."""
    return RoutingExperiment(config).run()


register_experiment(
    ExperimentSpec(
        name="routing",
        help="routing fabric: hops vs N, Chord vs Pastry churn, seed speedups",
        config_type=RoutingConfig,
        presets={"paper": PAPER_ROUTING, "smoke": SMOKE_ROUTING},
        runner=run_routing,
    )
)
