"""The serve-path panels: open-loop Zipf traffic, cache-on vs cache-off.

One deployment per cell (fresh :class:`~repro.api.ClusterSession`, identical
RNG stream labels, so every cell of the sweep serves the *same* catalog and
the *same* request trace), then the cell's knob set:

* ``zipf_s`` sweeps the popularity skew (0.8 mild, 1.1 hot-spotted);
* ``cache`` toggles the serve-path optimizations: per-gateway LRU block
  caches (:class:`~repro.core.cache.CacheManager`) plus popularity-triggered
  hot-file replication (:class:`~repro.multicast.replication.
  MulticastReplicator` with the packet-level push model off -- the push
  bytes are charged on the shared transfer fabric instead).

The flagship claim (recorded in ``BENCH_serving.json``): at 10 000 nodes
under Zipf s=1.1, cache-on sustains the offered request rate with measurably
better p99 read latency and per-holder load balance than cache-off, while
the cache-off path stays bit-identical to direct ``retrieve_file`` calls
(the oracle in ``tests/test_serving.py``).

Run it::

    python -m repro.cli serve            # paper scale (10 000 nodes)
    python -m repro.cli serve --smoke    # CI smoke (seconds)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api import ClusterSession
from repro.core.cache import CacheManager
from repro.core.policies import StoragePolicy
from repro.erasure.chunk_codec import ChunkCodec
from repro.erasure.xor_code import XorParityCode
from repro.experiments.base import (
    ExperimentConfig,
    ExperimentSpec,
    register_experiment,
)
from repro.experiments.results import TableResult
from repro.multicast.replication import MulticastReplicator
from repro.sim.rng import RandomStreams
from repro.workloads.capacity import CapacityConfig
from repro.workloads.filetrace import GB, MB, FileTraceConfig, generate_file_trace
from repro.workloads.serving import (
    ServeEngine,
    ServingTraceConfig,
    generate_request_trace,
    load_summary,
)


@dataclass(frozen=True)
class ServingConfig(ExperimentConfig):
    """Defaults for the serving panels (time unit: seconds)."""

    node_count: int = 10_000
    seed: int = 13
    capacity_mean: int = 45 * GB
    capacity_std: int = 10 * GB
    sites: int = 4
    racks_per_site: int = 4
    #: Per-node symmetric link capacity (MB per simulated second).
    bandwidth_mb_s: float = 8.0
    oversubscription: Optional[float] = 4.0
    intra_rack_latency: float = 0.0005
    intra_site_latency: float = 0.002
    inter_site_latency: float = 0.02
    blocks_per_chunk: int = 2
    block_replication: int = 2
    #: The served catalog (pre-stored before the fabric attaches).
    catalog_files: int = 4_000
    catalog_mean_size: int = 8 * MB
    catalog_std_size: int = 6 * MB
    catalog_min_size: int = 1 * MB
    #: Open-loop traffic.  The direct s=1.1 cell is genuinely overloaded
    #: (hot primaries' 8 MB/s uplinks vs ~30 MB/s of demand on the head of
    #: the catalog), so its backlog -- and the fair-share scheduler's cost,
    #: which scales with concurrent flows -- grows for the whole trace;
    #: 45 s keeps the flagship's wall time in minutes while the overload,
    #: the tail blow-up and the cache contrast stay unmistakable.
    request_rate: float = 60.0
    duration_s: float = 45.0
    read_fraction: float = 0.9
    client_count: int = 96
    write_mean_size: int = 8 * MB
    write_std_size: int = 4 * MB
    write_min_size: int = 1 * MB
    #: The sweep: skew values x cache modes (False = direct, True = cached).
    zipf_sweep: tuple = (0.8, 1.1)
    cache_modes: tuple = (False, True)
    #: Per-gateway LRU budget and the simulated cost of a full cache hit.
    cache_mb: float = 256.0
    cache_hit_latency_s: float = 0.0005
    #: Promote a file (push extra replicas) at this many reads (0 = never).
    hot_threshold: int = 24
    hot_replicas: int = 2
    #: Opt-in overlay lookup cost: fabric-touching requests are additionally
    #: charged ``hops * hop_latency_s`` over the routed path from their
    #: gateway to the file key's root (0 = off, the seed latency model).
    hop_latency_s: float = 0.0
    #: The routing engine that supplies hop counts when ``hop_latency_s`` > 0.
    routing_engine: str = "pastry"


#: The paper-scale flagship: 10 000 nodes behind a 4:1 core.
PAPER_SERVING = ServingConfig()

#: Tier-1 smoke scale: the full sweep in seconds on one core.
SMOKE_SERVING = ServingConfig(
    node_count=200,
    capacity_mean=400 * MB,
    capacity_std=100 * MB,
    catalog_files=240,
    catalog_mean_size=2 * MB,
    catalog_std_size=1 * MB,
    catalog_min_size=256 * 1024,
    request_rate=30.0,
    duration_s=12.0,
    client_count=12,
    write_mean_size=2 * MB,
    write_std_size=1 * MB,
    write_min_size=256 * 1024,
    cache_mb=24.0,
    hot_threshold=8,
)


@dataclass
class ServingResult:
    """One row per (zipf_s, cache mode) cell of the sweep."""

    config: ServingConfig
    rows: List[Dict[str, float]] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)

    def cell(self, zipf_s: float, cache_on: bool) -> Dict[str, float]:
        """The row of one sweep cell."""
        name = _scenario_name(zipf_s, cache_on)
        for row in self.rows:
            if row["scenario"] == name:
                return row
        raise KeyError(name)

    def table(self) -> TableResult:
        """The serving panel: throughput, tail latency, hit ratio, balance."""
        config = self.config
        table = TableResult(
            title=(
                f"Serve path — open-loop Zipf traffic "
                f"({config.request_rate:g} req/s offered, "
                f"{config.read_fraction:.0%} reads, "
                f"{config.cache_mb:g} MB/gateway cache)"
            ),
            columns=[
                "scenario", "zipf_s", "cache", "offered_req_s",
                "sustained_req_s", "read_p50_s", "read_p95_s", "read_p99_s",
                "cache_hit_pct", "replica_read_pct", "load_max_mb",
                "load_imbalance_x", "promotions",
            ],
        )
        for row in self.rows:
            table.add_row(**{column: row[column] for column in table.columns})
        return table

    def summary(self) -> Dict[str, float]:
        """The headline numbers the benchmark records and asserts on."""
        out: Dict[str, float] = {}
        for row in self.rows:
            key = row["scenario"]
            out[f"{key}_sustained_req_s"] = row["sustained_req_s"]
            out[f"{key}_read_p99_s"] = row["read_p99_s"]
            out[f"{key}_hit_pct"] = row["cache_hit_pct"]
            out[f"{key}_load_imbalance_x"] = row["load_imbalance_x"]
        return out


def _scenario_name(zipf_s: float, cache_on: bool) -> str:
    return f"s{zipf_s:g}_{'cache' if cache_on else 'direct'}"


class ServingExperiment:
    """Runs the serving sweep (fresh deployment per cell, shared seed)."""

    def __init__(self, config: Optional[ServingConfig] = None) -> None:
        self.config = config or ServingConfig()

    def _session(self, streams: RandomStreams) -> ClusterSession:
        config = self.config
        return ClusterSession(
            config.node_count,
            streams=streams,
            capacity_config=CapacityConfig(
                node_count=config.node_count,
                distribution="normal",
                mean=config.capacity_mean,
                std=config.capacity_std,
            ),
            sites=config.sites,
            racks_per_site=config.racks_per_site,
            bandwidth_mb_s=config.bandwidth_mb_s,
            oversubscription=config.oversubscription,
            latency={
                "intra_rack_latency": config.intra_rack_latency,
                "intra_site_latency": config.intra_site_latency,
                "inter_site_latency": config.inter_site_latency,
            },
            vectorized=config.vectorized,
            fast_build=config.fast_build,
        )

    def _run_cell(self, zipf_s: float, cache_on: bool) -> Dict[str, float]:
        config = self.config
        cell_start = time.perf_counter()
        streams = RandomStreams(config.seed)
        session = self._session(streams)
        client = session.client(
            tenant="serve",
            codec=ChunkCodec(XorParityCode(group_size=2),
                             blocks_per_chunk=config.blocks_per_chunk),
            policy=StoragePolicy(block_replication=config.block_replication),
        )

        # The catalog is pre-stored before the fabric attaches (instantaneous
        # bulk load, the same convention every other experiment uses).
        catalog_trace = generate_file_trace(
            FileTraceConfig(
                file_count=config.catalog_files,
                mean_size=config.catalog_mean_size,
                std_size=config.catalog_std_size,
                min_size=config.catalog_min_size,
                model="lognormal",
                name_prefix="media",
            ),
            rng=streams.fresh("catalog"),
        )
        for record in catalog_trace:
            client.store(record.name, record.size)
        catalog = [record.name for record in catalog_trace
                   if record.name in client.storage.files]

        client.attach(client=None)
        cache = None
        replicator = None
        if cache_on:
            cache = client.attach_cache(
                CacheManager(int(config.cache_mb * MB),
                             hit_latency_s=config.cache_hit_latency_s)
            )
            if config.hot_threshold > 0:
                replicator = MulticastReplicator(
                    client.storage,
                    rng=streams.fresh("replicate"),
                    simulate_push=False,
                )

        trace = generate_request_trace(
            len(catalog),
            ServingTraceConfig(
                request_rate=config.request_rate,
                duration_s=config.duration_s,
                zipf_s=zipf_s,
                read_fraction=config.read_fraction,
                client_count=config.client_count,
                write_mean_size=config.write_mean_size,
                write_std_size=config.write_std_size,
                write_min_size=config.write_min_size,
            ),
            rng=streams.fresh("requests"),
        )
        router = None
        if config.hop_latency_s > 0.0:
            router = session.routing(config.routing_engine)
        engine = ServeEngine(
            session.sim,
            client,
            session.transfers,
            trace,
            catalog,
            session.gateways(config.client_count),
            cache=cache,
            replicator=replicator,
            hot_threshold=config.hot_threshold,
            hot_replicas=config.hot_replicas,
            router=router,
            hop_latency_s=config.hop_latency_s,
        )
        engine.schedule()
        session.run()

        row: Dict[str, float] = {
            "scenario": _scenario_name(zipf_s, cache_on),
            "node_count": float(config.node_count),
            "zipf_s": float(zipf_s),
            "cache": 1.0 if cache_on else 0.0,
            "cache_hit_pct": 0.0,
            "replica_read_pct": 0.0,
        }
        row.update(engine.summarize())
        row.update(load_summary(client.storage.read_load))
        if cache is not None:
            row.update(cache.summary())
        row["seconds"] = time.perf_counter() - cell_start
        return row

    def run(self) -> ServingResult:
        """Run every (zipf_s, cache mode) cell of the sweep."""
        result = ServingResult(config=self.config)
        for zipf_s in self.config.zipf_sweep:
            for cache_on in self.config.cache_modes:
                row = self._run_cell(zipf_s, cache_on)
                result.rows.append(row)
                result.timings[row["scenario"]] = row["seconds"]
        return result


def run_serving(config: ServingConfig) -> ServingResult:
    """Registry entry point: run the serving sweep with ``config``."""
    return ServingExperiment(config).run()


register_experiment(
    ExperimentSpec(
        name="serving",
        help="serve path: open-loop Zipf traffic, block caches, hot replicas",
        config_type=ServingConfig,
        presets={"paper": PAPER_SERVING, "smoke": SMOKE_SERVING},
        runner=run_serving,
    )
)
