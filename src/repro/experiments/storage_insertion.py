"""Large-scale insertion experiment: Figures 7, 8, 9 and Table 1.

The paper inserts a 1.2 M-file trace into a 10 000-node overlay under three
schemes -- PAST (whole files), CFS (4 MB fixed chunks) and the proposed system
(capacity-negotiated variable chunks) -- and reports, as insertion progresses,
the fraction of failed stores (Fig. 7), the fraction of data that failed to be
stored (Fig. 8), the overall capacity utilisation (Fig. 9) and the chunk-count
/ chunk-size statistics (Table 1).

The harness reproduces that loop at a configurable scale.  Every scheme runs
against its own copy of an identical node population (same ids, same
capacities) so the comparison isolates the placement policy.

With ``InsertionConfig.vectorized=True`` (the default) the whole pipeline runs
on the array-backed placement engine: populations are built without the
O(N^2) per-node Pastry state, every store resolves its block names through
batched ``searchsorted`` kernels, and the periodic utilization samples read
the view's incremental aggregates in O(1) instead of scanning all nodes.
``vectorized=False`` preserves the seed scalar path end to end; both produce
identical curves for identical seeds (``tests/test_placement_equivalence.py``),
and ``benchmarks/test_bench_insertion_throughput.py`` records the files/s and
lookups/s of both in ``BENCH_insertion.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.baselines.cfs import CfsStore
from repro.baselines.common import InsertionStats
from repro.baselines.past import PastStore
from repro.core.policies import StoragePolicy
from repro.core.storage import StorageSystem
from repro.erasure.chunk_codec import ChunkCodec
from repro.erasure.null_code import NullCode
from repro.experiments.results import Series
from repro.overlay.dht import DHTView
from repro.overlay.network import OverlayNetwork
from repro.sim.rng import RandomStreams
from repro.workloads.capacity import CapacityConfig, generate_capacities
from repro.workloads.filetrace import GB, MB, FileTrace, FileTraceConfig, generate_file_trace


@dataclass(frozen=True)
class InsertionConfig:
    """Scaled-down defaults for the insertion experiment.

    ``expected_utilization`` controls how much data is inserted relative to the
    total contributed capacity; the paper inserts 278.7 TB into 439.1 TB
    (~63.5 %).  Set ``node_count=10_000`` and ``file_count=None`` with the
    paper's capacity/trace configs to run at full scale.
    """

    node_count: int = 200
    capacity_mean: int = 45 * GB
    capacity_std: int = 10 * GB
    mean_file_size: int = 243 * MB
    std_file_size: int = 55 * MB
    min_file_size: int = 50 * MB
    #: Explicit number of files; if None it is derived from expected_utilization.
    file_count: Optional[int] = None
    expected_utilization: float = 0.635
    cfs_block_size: int = 4 * MB
    #: PAST's salted-rehash retries.  The paper describes the mechanism but its
    #: reported 36 % failure rate is only consistent with the retry being
    #: absent/ineffective in the original simulation, so the default is 0; the
    #: ablation benchmarks sweep this knob.
    past_retries: int = 0
    cfs_retries_per_block: int = 3
    zero_chunk_limit: int = 5
    replication: int = 1
    sample_points: int = 20
    seed: int = 1
    repetitions: int = 1
    #: Run the stores on the array-backed placement engine (batched lookups,
    #: fast O(N) population build).  ``False`` preserves the seed scalar path
    #: end to end -- including the O(N^2) per-node Pastry state construction --
    #: and is the baseline the insertion benchmarks and the equivalence oracle
    #: compare against.  Both settings produce identical curves for identical
    #: seeds.
    vectorized: bool = True
    #: Override the population-build mode independently of the pipeline mode
    #: (None = follow ``vectorized``).  The benchmarks use ``fast_build=True``
    #: with ``vectorized=False`` to time the scalar *pipeline* at population
    #: sizes where the seed's O(N^2) build would never finish.
    fast_build: Optional[bool] = None

    def resolved_fast_build(self) -> bool:
        """Whether the population should skip the O(N^2) Pastry state build."""
        return self.vectorized if self.fast_build is None else self.fast_build

    def resolved_file_count(self) -> int:
        """File count implied by the expected utilisation when not set explicitly."""
        if self.file_count is not None:
            return self.file_count
        total_capacity = self.node_count * self.capacity_mean
        return max(1, int(round(total_capacity * self.expected_utilization / self.mean_file_size)))


@dataclass
class SchemeCurve:
    """Per-scheme sampled curves plus final statistics."""

    scheme: str
    failed_stores_pct: Series
    failed_data_pct: Series
    utilization_pct: Series
    stats: InsertionStats
    chunk_stats: Dict[str, float] = field(default_factory=dict)


@dataclass
class InsertionOutcome:
    """Everything the Figures 7-9 / Table 1 benches need, for one replication set."""

    config: InsertionConfig
    curves: Dict[str, SchemeCurve]
    files_inserted: int

    def final_failed_stores(self) -> Dict[str, float]:
        """Scheme -> final failed-store percentage (the numbers quoted in §6.1)."""
        return {name: curve.failed_stores_pct.final() for name, curve in self.curves.items()}

    def final_failed_data(self) -> Dict[str, float]:
        """Scheme -> final failed-data percentage."""
        return {name: curve.failed_data_pct.final() for name, curve in self.curves.items()}

    def final_utilization(self) -> Dict[str, float]:
        """Scheme -> final utilisation percentage."""
        return {name: curve.utilization_pct.final() for name, curve in self.curves.items()}


class InsertionExperiment:
    """Runs the three-scheme insertion comparison."""

    SCHEMES = ("PAST", "CFS", "Our System")

    def __init__(self, config: Optional[InsertionConfig] = None) -> None:
        self.config = config or InsertionConfig()
        #: The DHT views of the most recent :meth:`run_once` (scheme -> view);
        #: benchmarks read their lookup counters from here.
        self.last_views: Dict[str, DHTView] = {}

    # -- population construction -----------------------------------------------
    def _build_population(self, streams: RandomStreams, replication_index: int) -> Dict[str, DHTView]:
        config = self.config
        capacity_config = CapacityConfig(
            node_count=config.node_count,
            distribution="normal",
            mean=config.capacity_mean,
            std=config.capacity_std,
        )
        capacities = generate_capacities(
            capacity_config, rng=streams.fresh("capacities", replication_index)
        )
        views: Dict[str, DHTView] = {}
        for scheme in self.SCHEMES:
            # Identical node ids and capacities per scheme: rebuild from the
            # same derived stream so the populations match exactly.  The
            # vectorized engine skips per-node Pastry routing state (the DHT
            # view never routes hop by hop); the RNG draws are identical, so
            # the populations -- and therefore the curves -- are unchanged.
            network = OverlayNetwork.build(
                config.node_count,
                rng=streams.fresh("overlay", replication_index),
                capacities=list(capacities),
                routing_state=not config.resolved_fast_build(),
            )
            views[scheme] = DHTView(network)
        return views

    def _build_trace(self, streams: RandomStreams, replication_index: int) -> FileTrace:
        config = self.config
        trace_config = FileTraceConfig(
            file_count=self.config.resolved_file_count(),
            mean_size=config.mean_file_size,
            std_size=config.std_file_size,
            min_size=config.min_file_size,
        )
        return generate_file_trace(trace_config, rng=streams.fresh("trace", replication_index))

    # -- single replication -------------------------------------------------------
    def run_once(self, replication_index: int = 0) -> InsertionOutcome:
        """Run one replication of the experiment and return the sampled curves."""
        config = self.config
        streams = RandomStreams(config.seed)
        views = self._build_population(streams, replication_index)
        self.last_views = views
        trace = self._build_trace(streams, replication_index)

        past = PastStore(
            views["PAST"],
            replication=config.replication,
            retries=config.past_retries,
            vectorized=config.vectorized,
        )
        cfs = CfsStore(
            views["CFS"],
            block_size=config.cfs_block_size,
            replication=config.replication,
            retries_per_block=config.cfs_retries_per_block,
            vectorized=config.vectorized,
        )
        ours = StorageSystem(
            views["Our System"],
            codec=ChunkCodec(NullCode(), blocks_per_chunk=1),
            policy=StoragePolicy(
                max_consecutive_zero_chunks=config.zero_chunk_limit,
                block_replication=config.replication,
            ),
            vectorized=config.vectorized,
        )

        stats = {scheme: InsertionStats() for scheme in self.SCHEMES}
        curves = {
            scheme: SchemeCurve(
                scheme=scheme,
                failed_stores_pct=Series(label=scheme),
                failed_data_pct=Series(label=scheme),
                utilization_pct=Series(label=scheme),
                stats=stats[scheme],
            )
            for scheme in self.SCHEMES
        }

        total_files = len(trace)
        sample_every = max(1, total_files // max(1, config.sample_points))

        for index, record in enumerate(trace, start=1):
            past_result = past.store_file(record.name, record.size)
            stats["PAST"].record(past_result)

            cfs_result = cfs.store_file(record.name, record.size)
            stats["CFS"].record(
                cfs_result,
                chunk_sizes=cfs.chunk_sizes(record.name) if cfs_result.success else None,
            )

            ours_result = ours.store_file(record.name, record.size)
            if ours_result.success:
                stored = ours.files[record.name]
                chunk_sizes = [chunk.size for chunk in stored.data_chunks()]
            else:
                chunk_sizes = None
            stats["Our System"].record(
                _as_baseline_result(ours_result), chunk_sizes=chunk_sizes
            )

            if index % sample_every == 0 or index == total_files:
                curves["PAST"].failed_stores_pct.append(index, 100.0 * stats["PAST"].failure_fraction)
                curves["CFS"].failed_stores_pct.append(index, 100.0 * stats["CFS"].failure_fraction)
                curves["Our System"].failed_stores_pct.append(
                    index, 100.0 * stats["Our System"].failure_fraction
                )
                curves["PAST"].failed_data_pct.append(index, 100.0 * stats["PAST"].failed_data_fraction)
                curves["CFS"].failed_data_pct.append(index, 100.0 * stats["CFS"].failed_data_fraction)
                curves["Our System"].failed_data_pct.append(
                    index, 100.0 * stats["Our System"].failed_data_fraction
                )
                curves["PAST"].utilization_pct.append(index, 100.0 * views["PAST"].utilization())
                curves["CFS"].utilization_pct.append(index, 100.0 * views["CFS"].utilization())
                curves["Our System"].utilization_pct.append(
                    index, 100.0 * views["Our System"].utilization()
                )

        # Table 1 statistics.
        cfs_count_mean, cfs_count_std = stats["CFS"].chunk_count_stats()
        cfs_size_mean, cfs_size_std = stats["CFS"].chunk_size_stats()
        curves["CFS"].chunk_stats = {
            "mean_chunks_per_file": cfs_count_mean,
            "std_chunks_per_file": cfs_count_std,
            "mean_chunk_size": cfs_size_mean,
            "std_chunk_size": cfs_size_std,
        }
        curves["Our System"].chunk_stats = ours.chunk_statistics()

        return InsertionOutcome(config=config, curves=curves, files_inserted=total_files)

    # -- replication averaging -------------------------------------------------------
    def run(self) -> InsertionOutcome:
        """Run the configured number of replications and average the final numbers.

        The full sampled curves of the *first* replication are returned (they
        are what the figures plot); the final-point values are averaged over
        replications, matching the paper's "each case was simulated ten times,
        the results represent the average".
        """
        outcomes = [self.run_once(replication) for replication in range(self.config.repetitions)]
        first = outcomes[0]
        if len(outcomes) == 1:
            return first
        for scheme in self.SCHEMES:
            for metric in ("failed_stores_pct", "failed_data_pct", "utilization_pct"):
                finals = [getattr(outcome.curves[scheme], metric).final() for outcome in outcomes]
                series: Series = getattr(first.curves[scheme], metric)
                series.y[-1] = float(np.mean(finals))
        return first


def _as_baseline_result(result) -> "object":
    """Adapt a core StoreResult to the BaselineStoreResult interface for stats."""
    from repro.baselines.common import BaselineStoreResult

    return BaselineStoreResult(
        filename=result.filename,
        requested_size=result.requested_size,
        success=result.success,
        stored_bytes=result.stored_bytes,
        chunk_count=result.data_chunk_count,
        lookups=result.lookups,
        failure_reason=result.failure_reason,
    )
