"""Bandwidth-aware repair: time-to-repair, repair traffic, and migration.

Section 6.2 of the paper inserts "a recovery delay proportional to the amount
of data that has to be regenerated" but never resolves *where* that delay
comes from.  This experiment derives it from first principles: every node
gets an uplink/downlink capacity, every repair charges its reads and writes
to the fair-share transfer scheduler of :mod:`repro.core.transfer`, and the
reported delays are emergent completion times -- regenerating one lost block
of size ``B`` in a ``(required, m)`` code reads ``required`` surviving blocks
(``required x B`` bytes converging on the regenerating node's downlink),
while gracefully *migrating* a block moves it once (``B`` bytes over the
departing node's uplink).

Three panels, all at the paper's 10 000-node scale on one core:

1. **Failure-fraction sweep** -- fail 2/5/10 % of the population one by one
   (the Table 3 methodology) at a fixed per-node bandwidth and report
   aggregate repair traffic, the mean/p95 per-failure time-to-repair and the
   repair makespan.  Both traffic and makespan are monotone in the failure
   fraction (asserted by ``benchmarks/test_bench_repair.py``).
2. **Bandwidth sweep** -- the same failure burst at several per-node link
   capacities; per-failure repair time scales inversely with bandwidth until
   spacing decouples the repairs.
3. **Migration-vs-regeneration ablation** -- the same node set departs
   *gracefully*: once through the regeneration pipeline (the node "fails",
   neighbours rebuild from surviving redundancy) and once through
   :meth:`~repro.core.recovery.RecoveryManager.handle_leave` (blocks are
   copied out before departure).  Migration moves the bytes once instead of
   reading ``required`` surviving blocks per lost block, and -- under
   capacity pressure or thin redundancy -- can save blocks of chunks that
   already fell below the decode threshold, which regeneration never can.

Run it::

    python -m repro.cli repair                 # paper scale, ~2 min on a core
    python -m repro.cli repair --scale 0.1     # quick look
    python -m repro.cli repair --bandwidth 4   # slower links

``vectorized=False`` drives the same panels through the preserved seed scalar
path (identical placements and byte totals; only wall time differs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.policies import StoragePolicy
from repro.core.recovery import RecoveryManager
from repro.core.storage import StorageSystem
from repro.core.transfer import TransferScheduler
from repro.erasure.chunk_codec import ChunkCodec
from repro.erasure.xor_code import XorParityCode
from repro.experiments.results import TableResult
from repro.overlay.dht import DHTView
from repro.overlay.network import OverlayNetwork
from repro.sim.churn import FailureSchedule
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.capacity import CapacityConfig, generate_capacities
from repro.workloads.filetrace import GB, MB, FileTraceConfig, generate_file_trace


@dataclass(frozen=True)
class RepairConfig:
    """Defaults for the bandwidth-aware repair experiment (time unit: seconds)."""

    node_count: int = 10_000
    capacity_mean: int = 45 * GB
    capacity_std: int = 10 * GB
    file_count: int = 10_000
    mean_file_size: int = 243 * MB
    std_file_size: int = 55 * MB
    min_file_size: int = 50 * MB
    #: Blocks per chunk for the (2,3) XOR protection used during distribution.
    blocks_per_chunk: int = 2
    #: Failure fractions for the time-to-repair curve (sweep panel).
    fail_fractions: tuple = (0.02, 0.05, 0.10)
    #: Per-node symmetric link capacity (MB per simulated second) used by the
    #: fraction sweep and the ablation panel.
    bandwidth_mb_s: float = 8.0
    #: Link capacities for the bandwidth-sweep panel (run at the middle
    #: failure fraction).
    bandwidth_sweep_mb_s: tuple = (4.0, 8.0, 16.0)
    #: Simulated seconds between consecutive failures/departures.
    failure_spacing_s: float = 5.0
    #: Fraction of the population departing gracefully in the ablation panel.
    leave_fraction: float = 0.05
    seed: int = 7
    #: Run distribution and repair on the array engine + columnar block
    #: ledger; ``False`` preserves the seed scalar path end to end.
    vectorized: bool = True
    #: Override the population-build mode independently of the pipeline mode
    #: (None = follow ``vectorized``); identical RNG draws in both modes.
    fast_build: Optional[bool] = None

    def resolved_fast_build(self) -> bool:
        """Whether the population should skip the O(N^2) Pastry state build."""
        return self.vectorized if self.fast_build is None else self.fast_build


#: The paper-scale configuration: 10 000 nodes, ~2.4 TB distributed.
PAPER_REPAIR = RepairConfig()


@dataclass
class RepairResult:
    """The three panels plus per-cell wall-clock timings."""

    config: RepairConfig
    fraction_rows: List[Dict[str, float]] = field(default_factory=list)
    bandwidth_rows: List[Dict[str, float]] = field(default_factory=list)
    ablation_rows: List[Dict[str, float]] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)

    def fraction_table(self) -> TableResult:
        table = TableResult(
            title="Time-to-repair and repair traffic vs failure fraction "
                  f"({self.config.bandwidth_mb_s:g} MB/s per-node links)",
            columns=["fail_pct", "failures", "regenerated_gb", "lost_gb",
                     "traffic_gb", "mean_ttr_s", "p95_ttr_s", "makespan_s"],
        )
        for row in self.fraction_rows:
            table.add_row(**{column: row[column] for column in table.columns})
        return table

    def bandwidth_table(self) -> TableResult:
        middle = self.config.fail_fractions[len(self.config.fail_fractions) // 2]
        table = TableResult(
            title=f"Time-to-repair vs per-node bandwidth ({100 * middle:g} % failed)",
            columns=["bandwidth_mb_s", "traffic_gb", "mean_ttr_s", "p95_ttr_s", "makespan_s"],
        )
        for row in self.bandwidth_rows:
            table.add_row(**{column: row[column] for column in table.columns})
        return table

    def ablation_table(self) -> TableResult:
        table = TableResult(
            title=f"Graceful departure of {100 * self.config.leave_fraction:g} % of nodes: "
                  "migration vs regeneration",
            columns=["mode", "moved_gb", "traffic_gb", "lost_gb", "mean_ttr_s", "makespan_s"],
        )
        for row in self.ablation_rows:
            table.add_row(**{column: row[column] for column in table.columns})
        return table


class RepairExperiment:
    """Runs the bandwidth-aware repair panels on the discrete-event kernel."""

    def __init__(self, config: Optional[RepairConfig] = None) -> None:
        self.config = config or RepairConfig()

    def _distribute(self, streams: RandomStreams) -> StorageSystem:
        config = self.config
        capacities = generate_capacities(
            CapacityConfig(
                node_count=config.node_count,
                distribution="normal",
                mean=config.capacity_mean,
                std=config.capacity_std,
            ),
            rng=streams.fresh("capacities"),
        )
        network = OverlayNetwork.build(
            config.node_count,
            rng=streams.fresh("overlay"),
            capacities=list(capacities),
            routing_state=not config.resolved_fast_build(),
        )
        storage = StorageSystem(
            DHTView(network),
            codec=ChunkCodec(XorParityCode(group_size=2), blocks_per_chunk=config.blocks_per_chunk),
            policy=StoragePolicy(),
            vectorized=config.vectorized,
        )
        trace = generate_file_trace(
            FileTraceConfig(
                file_count=config.file_count,
                mean_size=config.mean_file_size,
                std_size=config.std_file_size,
                min_size=config.min_file_size,
            ),
            rng=streams.fresh("trace"),
        )
        for record in trace:
            storage.store_file(record.name, record.size)
        return storage

    def _run_cell(self, fraction: float, bandwidth_mb_s: float, mode: str) -> Dict[str, float]:
        """One fresh distribution + one churn burst under one bandwidth.

        ``mode``: ``"fail"`` (abrupt failures + regeneration),
        ``"leave-regenerate"`` (graceful departures charged through the
        failure pipeline) or ``"leave-migrate"`` (copy-out migration).
        """
        config = self.config
        streams = RandomStreams(config.seed)
        cell_start = time.perf_counter()
        storage = self._distribute(streams)
        distribute_s = time.perf_counter() - cell_start

        sim = Simulator()
        rate = bandwidth_mb_s * MB
        transfers = TransferScheduler(sim, uplink=rate, downlink=rate)
        recovery = RecoveryManager(storage, transfers=transfers)
        network = storage.dht.network
        schedule = FailureSchedule(
            network.live_ids(),
            fraction,
            rng=streams.fresh("failures", fraction),
            spacing=config.failure_spacing_s,
        )

        def fail(event) -> None:
            recovery.handle_failure(event.node_id)

        def leave_regenerate(event) -> None:
            recovery.handle_failure(event.node_id)
            network.leave(event.node_id)

        def leave_migrate(event) -> None:
            recovery.handle_leave(event.node_id)

        action = {"fail": fail, "leave-regenerate": leave_regenerate,
                  "leave-migrate": leave_migrate}[mode]
        for event in schedule:
            sim.schedule(event.time, lambda event=event: action(event))
        churn_start = time.perf_counter()
        sim.run()  # drains every repair transfer
        churn_s = time.perf_counter() - churn_start

        totals = recovery.totals()
        ttrs = np.asarray(recovery.repair_times(), dtype=float)
        summary = transfers.summary()
        return {
            "fail_pct": 100.0 * fraction,
            "failures": float(len(schedule)),
            "bandwidth_mb_s": bandwidth_mb_s,
            "regenerated_gb": totals["total_regenerated_bytes"] / GB,
            "migrated_gb": totals["total_migrated_bytes"] / GB,
            "moved_gb": (totals["total_regenerated_bytes"]
                         + totals["total_migrated_bytes"]) / GB,
            "lost_gb": totals["total_data_lost_bytes"] / GB,
            "traffic_gb": summary["bytes_submitted"] / GB,
            "mean_ttr_s": float(ttrs.mean()) if ttrs.size else 0.0,
            "p95_ttr_s": float(np.percentile(ttrs, 95)) if ttrs.size else 0.0,
            "makespan_s": summary["last_completion_time"],
            "transfers": summary["submitted"],
            "distribute_s": distribute_s,
            "churn_s": churn_s,
        }

    def run(self) -> RepairResult:
        """Produce all three panels (fresh distribution per cell)."""
        config = self.config
        result = RepairResult(config=config)
        start = time.perf_counter()
        for fraction in config.fail_fractions:
            result.fraction_rows.append(
                self._run_cell(fraction, config.bandwidth_mb_s, "fail")
            )
        middle = config.fail_fractions[len(config.fail_fractions) // 2]
        for bandwidth in config.bandwidth_sweep_mb_s:
            if bandwidth == config.bandwidth_mb_s:
                # The sweep's middle cell already ran at this bandwidth.
                match = next(
                    (row for row in result.fraction_rows
                     if row["fail_pct"] == 100.0 * middle), None,
                )
                if match is not None:
                    result.bandwidth_rows.append(match)
                    continue
            result.bandwidth_rows.append(self._run_cell(middle, bandwidth, "fail"))
        for mode in ("leave-regenerate", "leave-migrate"):
            row = self._run_cell(config.leave_fraction, config.bandwidth_mb_s, mode)
            row["mode"] = "regenerate" if mode == "leave-regenerate" else "migrate"
            result.ablation_rows.append(row)
        result.timings = {
            "total_s": time.perf_counter() - start,
            "cells": float(
                len(result.fraction_rows) + len(result.ablation_rows)
                + sum(1 for row in result.bandwidth_rows
                      if row["bandwidth_mb_s"] != config.bandwidth_mb_s)
            ),
        }
        return result
