"""Experiment harnesses that regenerate every figure and table of the paper.

Each module reproduces one measurement loop from Section 6 and returns plain
result objects (series of points or table rows) that the benchmarks print and
EXPERIMENTS.md records.  Defaults are scaled down so each experiment runs in
seconds; every configuration accepts the paper's full-scale parameters.

| Module                              | Paper results                          |
|-------------------------------------|----------------------------------------|
| :mod:`~repro.experiments.storage_insertion` | Figures 7, 8, 9 and Table 1    |
| :mod:`~repro.experiments.availability`      | Figure 10                      |
| :mod:`~repro.experiments.coding_perf`       | Table 2                        |
| :mod:`~repro.experiments.churn`             | Table 3                        |
| :mod:`~repro.experiments.soak`              | join/leave churn soak (ext.)   |
| :mod:`~repro.experiments.multicast_replicas`| Figures 11 and 12              |
| :mod:`~repro.experiments.condor_case_study` | Table 4                        |
"""

from repro.experiments.results import Series, TableResult
from repro.experiments.storage_insertion import (
    InsertionConfig,
    InsertionExperiment,
    InsertionOutcome,
    SchemeCurve,
)
from repro.experiments.availability import AvailabilityConfig, AvailabilityExperiment
from repro.experiments.coding_perf import CodingPerfConfig, run_coding_performance
from repro.experiments.churn import ChurnConfig, ChurnExperiment
from repro.experiments.soak import SoakConfig, SoakExperiment, SoakResult
from repro.experiments.multicast_replicas import MulticastConfig, MulticastExperiment
from repro.experiments.condor_case_study import CondorCaseStudyConfig, run_condor_case_study

__all__ = [
    "Series",
    "TableResult",
    "InsertionConfig",
    "InsertionExperiment",
    "InsertionOutcome",
    "SchemeCurve",
    "AvailabilityConfig",
    "AvailabilityExperiment",
    "CodingPerfConfig",
    "run_coding_performance",
    "ChurnConfig",
    "ChurnExperiment",
    "SoakConfig",
    "SoakExperiment",
    "SoakResult",
    "MulticastConfig",
    "MulticastExperiment",
    "CondorCaseStudyConfig",
    "run_condor_case_study",
]
