"""Per-tenant QoS isolation panels: the noisy-neighbor storm suite.

Four tenants share one overlay, one multi-tenant block ledger and one
transfer fabric behind an oversubscribed two-stage core:

* ``archive`` -- the paper's 10 000-node archive corpus, pre-stored; its
  whole-site outage is the *storm*: a repair burst re-protecting every row
  the site held;
* ``medimg``  -- a medical-image archive tenant ingesting per-study frame
  batches (:class:`~repro.workloads.tenants.MedicalIngestProfile`) with
  foreground retrieve probes -- the *victim* whose SLOs must hold;
* ``grid``    -- Condor-style bigcopy staging bursts;
* ``cdn``     -- steady Bullet-style distribution pushes.

Three scenarios on identical deployments and workload timelines:

* ``baseline``       -- no outage: the victim's no-storm ingest throughput
  and retrieve p95;
* ``storm_isolated`` -- site outage with per-tenant QoS on (the archive
  repair class runs at a fair-share weight below 1 and under a hard
  per-tenant bandwidth cap);
* ``storm_open``     -- the same outage with no tenant weights or caps.

The flagship claim (recorded in ``BENCH_tenants.json``): with isolation on,
the victim's ingest throughput stays within 1.5x of its no-storm baseline
while the archive's repair completes through the bounded admission window
(backpressure, never drops); with isolation off it degrades clearly.

Run it::

    python -m repro.cli tenants              # paper scale, 4:1 core
    python -m repro.cli tenants --scale 0.1  # quick look
    python -m repro.cli tenants --smoke      # CI smoke (seconds)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.api import ClusterSession
from repro.core.policies import StoragePolicy
from repro.core.storage import StorageSystem
from repro.core.transfer import TransferScheduler
from repro.erasure.chunk_codec import ChunkCodec
from repro.erasure.xor_code import XorParityCode
from repro.experiments.results import TableResult
from repro.overlay.network import OverlayNetwork
from repro.sim.rng import RandomStreams
from repro.workloads.capacity import CapacityConfig
from repro.workloads.filetrace import GB, MB, FileTraceConfig, generate_file_trace
from repro.workloads.tenants import (
    BigCopyBurstProfile,
    BulletDistributionProfile,
    MedicalIngestProfile,
)

#: Scenario keys understood by :meth:`TenantsExperiment._run_scenario`.
SCENARIOS = ("baseline", "storm_isolated", "storm_open")

#: Tenant names, in SLO-table order.  ``archive`` is the storm tenant.
TENANTS = ("archive", "medimg", "grid", "cdn")


@dataclass(frozen=True)
class TenantsConfig:
    """Defaults for the QoS isolation panels (time unit: seconds)."""

    node_count: int = 10_000
    capacity_mean: int = 45 * GB
    capacity_std: int = 10 * GB
    sites: int = 4
    racks_per_site: int = 4
    #: Per-node symmetric link capacity (MB per simulated second).
    bandwidth_mb_s: float = 8.0
    #: Two-stage core: trunks carry the members' aggregate access bandwidth
    #: divided by this ratio (the flagship runs behind the classic 4:1 core).
    oversubscription: Optional[float] = 4.0
    blocks_per_chunk: int = 2
    block_replication: int = 2
    #: The archive (storm) tenant's pre-stored corpus.
    archive_files: int = 6_000
    archive_mean_size: int = 243 * MB
    archive_std_size: int = 55 * MB
    archive_min_size: int = 50 * MB
    #: Victim tenant: per-study frame-batch ingest cadence.
    studies: int = 24
    frames_per_study: int = 16
    mean_frame_size: int = 12 * MB
    study_interval_s: float = 30.0
    #: Grid tenant: bigcopy staging bursts.
    bursts: int = 5
    burst_sizes_gb: tuple = (1.0, 2.0, 4.0, 8.0, 16.0)
    burst_interval_s: float = 120.0
    #: CDN tenant: steady distribution pushes.
    distribution_rounds: int = 40
    distribution_period_s: float = 15.0
    distribution_payload: int = 16 * MB
    #: Victim retrieve probes (one stored-block read each, tenant-tagged).
    probe_reads: int = 200
    probe_period_s: float = 2.0
    #: Post-run degraded/failed read census sample per tenant.
    read_sample: int = 200
    #: The storm: a whole-site outage at this sim time, repaired with
    #: staggered per-node passes through a bounded admission window.
    storm_site: int = 0
    storm_time_s: float = 60.0
    repair_spacing_s: float = 5.0
    repair_window: Optional[int] = 512
    #: Isolation knobs, applied only in ``storm_isolated``: the storm
    #: tenant's fair-share weight class and hard aggregate bandwidth cap.
    storm_tenant_weight: float = 0.25
    storm_tenant_cap_mb_s: Optional[float] = 512.0
    scenarios: tuple = SCENARIOS
    seed: int = 11
    #: Run on the array engine + columnar block ledger (domain masks and
    #: per-tenant aggregates need it).
    vectorized: bool = True
    fast_build: Optional[bool] = None

    def resolved_fast_build(self) -> bool:
        """Whether the population should skip the O(N^2) Pastry state build."""
        return self.vectorized if self.fast_build is None else self.fast_build


#: The paper-scale flagship: 10 000 nodes behind a 4:1 core.
PAPER_TENANTS = TenantsConfig()

#: Tier-1 smoke scale: all three scenarios in seconds on one core.
SMOKE_TENANTS = TenantsConfig(
    node_count=200,
    capacity_mean=400 * MB,
    capacity_std=100 * MB,
    archive_files=160,
    archive_mean_size=10 * MB,
    archive_std_size=3 * MB,
    archive_min_size=1 * MB,
    studies=6,
    frames_per_study=6,
    mean_frame_size=2 * MB,
    study_interval_s=4.0,
    bursts=2,
    burst_sizes_gb=(0.05, 0.1),
    burst_interval_s=10.0,
    distribution_rounds=8,
    distribution_period_s=2.0,
    distribution_payload=2 * MB,
    probe_reads=30,
    probe_period_s=0.5,
    read_sample=60,
    storm_time_s=8.0,
    repair_spacing_s=0.0,
    repair_window=16,
    storm_tenant_cap_mb_s=24.0,
)


@dataclass
class TenantsResult:
    """Per-scenario flagship rows plus the per-(scenario, tenant) SLO rows."""

    config: TenantsConfig
    rows: List[Dict[str, float]] = field(default_factory=list)
    tenant_rows: List[Dict[str, float]] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)

    def row(self, scenario: str) -> Dict[str, float]:
        """The flagship row of one scenario."""
        for entry in self.rows:
            if entry["scenario"] == scenario:
                return entry
        raise KeyError(scenario)

    def tenant_row(self, scenario: str, tenant: str) -> Dict[str, float]:
        """The SLO row of one tenant in one scenario."""
        for entry in self.tenant_rows:
            if entry["scenario"] == scenario and entry["tenant"] == tenant:
                return entry
        raise KeyError((scenario, tenant))

    def isolation_table(self) -> TableResult:
        """The flagship panel: the victim's SLOs across the three scenarios."""
        config = self.config
        cap = ("uncapped" if config.storm_tenant_cap_mb_s is None
               else f"{config.storm_tenant_cap_mb_s:g} MB/s cap")
        table = TableResult(
            title="Noisy-neighbor storm — victim ingest vs archive repair "
                  f"({config.oversubscription or 0:g}:1 core, storm weight "
                  f"{config.storm_tenant_weight:g}, {cap})",
            columns=["scenario", "ingest_mb_s", "ingest_slowdown_x", "probe_p95_s",
                     "probe_reads_done", "repair_gb", "repair_makespan_s",
                     "storm_queue_peak", "trunk_util_pct"],
        )
        for row in self.rows:
            table.add_row(**{column: row[column] for column in table.columns})
        return table

    def slo_table(self) -> TableResult:
        """Per-tenant SLOs from the ledger aggregates and transfer accounting."""
        table = TableResult(
            title="Per-tenant SLOs (availability, bytes moved, backlog, reads, TTR)",
            columns=["scenario", "tenant", "availability_pct", "stored_gb",
                     "moved_gb", "backlog_gb", "degraded_reads", "failed_reads",
                     "mean_ttr_s", "max_ttr_s"],
        )
        for row in self.tenant_rows:
            table.add_row(**{column: row[column] for column in table.columns})
        return table

    def isolation_summary(self) -> Dict[str, float]:
        """The headline numbers the benchmark records and asserts on."""
        baseline = self.row("baseline")
        summary = {
            "baseline_ingest_mb_s": baseline["ingest_mb_s"],
            "baseline_probe_p95_s": baseline["probe_p95_s"],
        }
        for scenario in ("storm_isolated", "storm_open"):
            try:
                row = self.row(scenario)
            except KeyError:
                continue
            summary[f"{scenario}_ingest_mb_s"] = row["ingest_mb_s"]
            summary[f"{scenario}_ingest_slowdown_x"] = row["ingest_slowdown_x"]
            summary[f"{scenario}_probe_p95_s"] = row["probe_p95_s"]
            summary[f"{scenario}_repair_gb"] = row["repair_gb"]
            summary[f"{scenario}_repair_makespan_s"] = row["repair_makespan_s"]
            summary[f"{scenario}_storm_backlog_end_gb"] = row["storm_backlog_end_gb"]
        return summary


class TenantsExperiment:
    """Runs the multi-tenant QoS scenarios (fresh shared deployment per cell)."""

    def __init__(self, config: Optional[TenantsConfig] = None) -> None:
        self.config = config or TenantsConfig()

    # -------------------------------------------------------------- deployment --
    def _deployment(self, streams: RandomStreams):
        """One :class:`ClusterSession` + four tenant clients on its ledger.

        The archive tenant's corpus is pre-stored (instantaneous, before the
        fabric attaches) -- the storm repairs standing data, it does not
        ingest it.  The session consumes the same RNG stream labels in the
        same order as the pre-facade hand wiring, so every number here is
        unchanged by the port (pinned by ``tests/test_api.py``).
        """
        config = self.config
        session = ClusterSession(
            config.node_count,
            streams=streams,
            capacity_config=CapacityConfig(
                node_count=config.node_count,
                distribution="normal",
                mean=config.capacity_mean,
                std=config.capacity_std,
            ),
            sites=config.sites,
            racks_per_site=config.racks_per_site,
            bandwidth_mb_s=config.bandwidth_mb_s,
            oversubscription=config.oversubscription,
            vectorized=config.vectorized,
            fast_build=config.fast_build,
        )
        clients = {
            name: session.client(
                name,
                codec=ChunkCodec(XorParityCode(group_size=2),
                                 blocks_per_chunk=config.blocks_per_chunk),
                policy=StoragePolicy(block_replication=config.block_replication),
            )
            for name in TENANTS
        }
        trace = generate_file_trace(
            FileTraceConfig(
                file_count=config.archive_files,
                mean_size=config.archive_mean_size,
                std_size=config.archive_std_size,
                min_size=config.archive_min_size,
                name_prefix="archive",
            ),
            rng=streams.fresh("trace"),
        )
        for record in trace:
            clients["archive"].store(record.name, record.size)
        return session, clients

    def _client(self, network: OverlayNetwork, ordinal: int):
        """A deterministic live client node *outside* the storm site."""
        config = self.config
        outside = [node for node in network.nodes()
                   if node.alive and node.site != config.storm_site]
        outside.sort(key=lambda node: int(node.node_id))
        return outside[(ordinal * 13 + 1) % len(outside)]

    def _schedule_probes(self, sim, storage, transfers, network) -> List[float]:
        """Victim retrieve probes: one stored-block read each, tenant-tagged.

        Deterministic (sorted names, stride-picked live sources); the filled
        durations list feeds the scenario's p95.  Probes start after the
        first study lands and skip silently while the victim has no files.
        """
        config = self.config
        durations: List[float] = []
        if config.probe_reads <= 0:
            return durations
        client = self._client(network, 2)
        client_id = int(client.node_id)
        tenant = storage.store_tenant

        def issue(index: int) -> None:
            names = sorted(storage.files)
            if not names:
                return
            stored = storage.files[names[index % len(names)]]
            if not stored.chunks or not stored.chunks[0].placements:
                return
            placement = stored.chunks[0].placements[0]
            src = None
            for node_id in (placement.node_id, *placement.replica_nodes):
                if node_id in network and network.node(node_id).alive:
                    src = int(node_id)
                    break
            if src is None or src == client_id or not client.alive:
                return
            submitted = sim.now
            transfers.submit(
                float(placement.size),
                src=src,
                dst=client_id,
                on_complete=lambda t: durations.append(t.finished_at - submitted),
                tenant=tenant,
            )

        start = config.study_interval_s + config.probe_period_s
        for index in range(config.probe_reads):
            sim.schedule(start + index * config.probe_period_s,
                         lambda i=index: issue(i))
        return durations

    def _census(self, storage: StorageSystem) -> Dict[str, float]:
        """Post-run degraded/failed read census over a sorted file sample."""
        names = sorted(storage.files)[: self.config.read_sample]
        degraded_before = storage.degraded_reads
        failed_before = storage.failed_reads
        for name in names:
            storage.retrieve_file(name)
        return {
            "reads_sampled": float(len(names)),
            "degraded_reads": float(storage.degraded_reads - degraded_before),
            "failed_reads": float(storage.failed_reads - failed_before),
        }

    # ---------------------------------------------------------------- scenario --
    def _run_scenario(self, scenario: str) -> None:
        config = self.config
        streams = RandomStreams(config.seed)
        cell_start = time.perf_counter()
        session, clients = self._deployment(streams)
        network = session.network
        sim = session.sim
        transfers = session.transfers
        stores = {name: handle.storage for name, handle in clients.items()}

        # The victim's ingest SLO tracks its *own* charged transfers (repair
        # traffic shares the tenant tag but must not inflate the metric).
        ingest_done = {"bytes": 0.0, "last": 0.0}

        def observe_ingest(transfer) -> None:
            ingest_done["bytes"] += transfer.size
            ingest_done["last"] = max(ingest_done["last"], transfer.finished_at)

        for ordinal, name in enumerate(TENANTS):
            clients[name].attach(
                client=int(self._client(network, ordinal).node_id),
                observer=observe_ingest if name == "medimg" else None,
            )

        managers = {
            name: session.recovery(clients[name],
                                   repair_window=config.repair_window)
            for name in TENANTS
        }
        archive_tid = stores["archive"].store_tenant
        if scenario == "storm_isolated":
            transfers.set_tenant_weight(archive_tid, config.storm_tenant_weight)
            if config.storm_tenant_cap_mb_s is not None:
                transfers.set_tenant_cap(archive_tid,
                                         config.storm_tenant_cap_mb_s * MB)

        # Workload timelines (identical across scenarios).
        runs = [
            MedicalIngestProfile(
                studies=config.studies,
                frames_per_study=config.frames_per_study,
                mean_frame_size=config.mean_frame_size,
                std_frame_size=max(1, config.mean_frame_size // 2),
                study_interval_s=config.study_interval_s,
            ).schedule(sim, stores["medimg"], streams.fresh("medimg")),
            BigCopyBurstProfile(
                bursts=config.bursts,
                sizes_gb=config.burst_sizes_gb,
                burst_interval_s=config.burst_interval_s,
            ).schedule(sim, stores["grid"], streams.fresh("grid")),
            BulletDistributionProfile(
                rounds=config.distribution_rounds,
                period_s=config.distribution_period_s,
                payload=config.distribution_payload,
            ).schedule(sim, stores["cdn"], transfers, network, streams.fresh("cdn")),
        ]
        durations = self._schedule_probes(sim, stores["medimg"], transfers, network)

        # The storm: a whole-site outage repaired by every tenant's manager
        # (the injector drives the archive tenant -- the storm proper -- and
        # the other managers re-protect their own rows on the same cadence).
        injector = session.fault_injector(recovery=managers["archive"],
                                          repair_spacing=config.repair_spacing_s)
        if scenario != "baseline":
            def storm() -> None:
                members = [node for node in network.nodes()
                           if node.alive and node.site == config.storm_site]
                injector.fail_domain(site=config.storm_site)
                for index, node in enumerate(members):
                    for name in TENANTS[1:]:
                        sim.schedule(
                            index * config.repair_spacing_s,
                            lambda m=managers[name], n=node.node_id: m.handle_failure(n),
                        )
            sim.schedule(config.storm_time_s, storm)

        sim.run()  # drains ingest, pushes, probes and every repair transfer

        # Post-run: detach before the census so its reads charge nothing.
        for store in stores.values():
            store.transfers = None

        per_tenant = transfers.tenant_summary()
        summary = transfers.summary()
        archive_row = per_tenant.get(archive_tid, {})
        ingest_mb_s = (ingest_done["bytes"] / MB / ingest_done["last"]
                       if ingest_done["last"] > 0 else 0.0)
        self.rows.append({
            "scenario": scenario,
            "ingest_mb_s": ingest_mb_s,
            "ingest_slowdown_x": 0.0,  # filled by run() from the baseline row
            "probe_p95_s": (float(np.percentile(np.asarray(durations), 95))
                            if durations else 0.0),
            "probe_reads_done": float(len(durations)),
            "repair_gb": archive_row.get("bytes_completed", 0.0) / GB,
            "repair_makespan_s": archive_row.get("last_completion_time", 0.0),
            "storm_queue_peak": float(max(
                (managers[name].pacer.peak_queue_depth
                 for name in TENANTS if managers[name].pacer), default=0.0)),
            "storm_backlog_end_gb": archive_row.get("backlog_bytes", 0.0) / GB,
            "trunk_util_pct": self._peak_trunk_utilization(
                transfers, summary["last_completion_time"]),
            "transfers_failed": summary["failed"],
            "makespan_s": summary["last_completion_time"],
            "cell_s": time.perf_counter() - cell_start,
        })
        for name in TENANTS:
            store = stores[name]
            aggregates = clients[name].aggregates()
            census = self._census(store)
            row = per_tenant.get(store.store_tenant, {})
            ttrs = np.asarray(managers[name].repair_times(), dtype=float)
            active = max(1, aggregates["active_files"])
            self.tenant_rows.append({
                "scenario": scenario,
                "tenant": name,
                "availability_pct": 100.0 * (1.0 - aggregates["unavailable_files"] / active),
                "stored_gb": aggregates["stored_data_bytes"] / GB,
                "moved_gb": row.get("bytes_completed", 0.0) / GB,
                "backlog_gb": row.get("backlog_bytes", 0.0) / GB,
                "transfers_failed": row.get("failed", 0.0),
                "mean_ttr_s": float(ttrs.mean()) if ttrs.size else 0.0,
                "max_ttr_s": float(ttrs.max()) if ttrs.size else 0.0,
                **census,
            })

    @staticmethod
    def _peak_trunk_utilization(transfers: TransferScheduler, makespan: float) -> float:
        """The busiest finite trunk's bytes over capacity x makespan, in %."""
        if makespan <= 0:
            return 0.0
        peak = 0.0
        for entry in transfers.trunk_summary().values():
            if entry["capacity"] > 0:
                peak = max(peak, 100.0 * entry["bytes"] / (entry["capacity"] * makespan))
        return peak

    def run(self) -> TenantsResult:
        """Produce every configured scenario (fresh shared deployment per cell)."""
        result = TenantsResult(config=self.config)
        self.rows = result.rows
        self.tenant_rows = result.tenant_rows
        start = time.perf_counter()
        for scenario in self.config.scenarios:
            self._run_scenario(scenario)
        try:
            baseline = result.row("baseline")["ingest_mb_s"]
        except KeyError:
            baseline = 0.0
        for row in result.rows:
            row["ingest_slowdown_x"] = (baseline / row["ingest_mb_s"]
                                        if row["ingest_mb_s"] > 0 else 0.0)
        result.timings = {
            "total_s": time.perf_counter() - start,
            "cells": float(len(result.rows)),
        }
        return result
