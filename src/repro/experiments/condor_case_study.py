"""Condor case study: Table 4.

``bigCopy`` copies files of 1-128 GB through three storage back-ends on a
32-machine pool (each machine contributing 2-15 GB, 100 Mb/s Ethernet):

* the original Condor whole-file scheme (the copy must fit on one machine);
* a CFS-like fixed-chunk scheme;
* the proposed varying-chunk scheme.

Every row starts from a fresh pool ("for each run, we started fresh by
deleting all the files from the previous run"), no error coding is used, and
the retry limits are set high enough that chunked schemes always find space
("enough retries were made ... to ensure that all blocks can be stored").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.baselines.cfs import CfsStore
from repro.core.policies import StoragePolicy
from repro.core.storage import StorageSystem
from repro.erasure.chunk_codec import ChunkCodec
from repro.erasure.null_code import NullCode
from repro.experiments.results import TableResult
from repro.grid.bigcopy import BigCopyResult, run_bigcopy
from repro.grid.iolib import FixedChunkBackend, VaryingChunkBackend, WholeFileBackend
from repro.grid.machines import build_condor_pool_nodes
from repro.grid.transfer import TransferCostModel
from repro.overlay.dht import DHTView
from repro.workloads.filetrace import GB, MB


@dataclass(frozen=True)
class CondorCaseStudyConfig:
    """Defaults matching the paper's Section 6.4 setup (scaled file list)."""

    machine_count: int = 32
    #: File sizes to copy, in bytes (paper: 1, 2, 4, ..., 128 GB).
    file_sizes: tuple = tuple(int(size) * GB for size in (1, 2, 4, 8, 16, 32, 64, 128))
    fixed_chunk_size: int = 4 * MB
    #: Retries are effectively unlimited, as in the paper's methodology.
    retries_per_block: int = 64
    zero_chunk_limit: int = 64
    seed: int = 6


def run_condor_case_study(config: Optional[CondorCaseStudyConfig] = None) -> TableResult:
    """Produce the Table 4 rows: per file size, wall time under each scheme."""
    config = config or CondorCaseStudyConfig()
    cost = TransferCostModel()
    table = TableResult(
        title="Table 4 — bigCopy wall time (seconds) by storage scheme",
        columns=[
            "file_size_gb",
            "whole_file_s",
            "fixed_chunks_s",
            "fixed_overhead_pct",
            "varying_chunks_s",
            "varying_overhead_pct",
        ],
    )

    for file_size in config.file_sizes:
        row: Dict[str, object] = {"file_size_gb": file_size / GB}

        # Whole-file scheme: a single designated machine must hold the copy.
        network, machines = build_condor_pool_nodes(config.machine_count, seed=config.seed)
        target = max(network.live_nodes(), key=lambda node: node.capacity)
        whole = run_bigcopy(WholeFileBackend(target), file_size, cost_model=cost)
        row["whole_file_s"] = whole.elapsed_seconds if whole.success else float("nan")

        # Fixed-size chunks (CFS-like).
        network, machines = build_condor_pool_nodes(config.machine_count, seed=config.seed)
        cfs = CfsStore(
            DHTView(network),
            block_size=config.fixed_chunk_size,
            retries_per_block=config.retries_per_block,
        )
        fixed = run_bigcopy(FixedChunkBackend(cfs), file_size, cost_model=cost)
        row["fixed_chunks_s"] = fixed.elapsed_seconds if fixed.success else float("nan")

        # Varying-size chunks (the proposed system).
        network, machines = build_condor_pool_nodes(config.machine_count, seed=config.seed)
        storage = StorageSystem(
            DHTView(network),
            codec=ChunkCodec(NullCode(), blocks_per_chunk=1),
            policy=StoragePolicy(max_consecutive_zero_chunks=config.zero_chunk_limit),
        )
        varying = run_bigcopy(VaryingChunkBackend(storage), file_size, cost_model=cost)
        row["varying_chunks_s"] = varying.elapsed_seconds if varying.success else float("nan")

        baseline = row["whole_file_s"]
        row["fixed_overhead_pct"] = _overhead_pct(fixed, baseline)
        row["varying_overhead_pct"] = _overhead_pct(varying, baseline)
        table.add_row(**row)
    return table


def _overhead_pct(result: BigCopyResult, baseline: object) -> float:
    if not result.success or not isinstance(baseline, float) or not np.isfinite(baseline) or baseline <= 0:
        return float("nan")
    return 100.0 * (result.elapsed_seconds / baseline - 1.0)
