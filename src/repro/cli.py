"""Command-line entry point: run any of the paper's experiments.

Examples
--------
Run the insertion comparison (Figures 7-9, Table 1) at the default scale::

    python -m repro.cli insertion

Run the coding-performance measurement (Table 2) at the paper's parameters::

    python -m repro.cli coding --chunk-mb 4 --blocks 4096

Run the serve-path panels (open-loop Zipf traffic, cache on/off)::

    python -m repro.cli serve --smoke

List everything::

    python -m repro.cli --list

Subcommands are declared in the :data:`COMMANDS` table -- one
:class:`Command` per experiment, with the shared ``--scale``/``--smoke``/
``--oversub``/``--seed`` flags attached declaratively instead of another
copy-pasted ``add_parser`` block per command.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.experiments.availability import PAPER_FIG10, AvailabilityConfig, AvailabilityExperiment
from repro.experiments.base import get_experiment
from repro.experiments.churn import PAPER_TABLE3, ChurnConfig, ChurnExperiment
from repro.experiments.coding_perf import CodingPerfConfig, run_coding_performance
from repro.experiments.condor_case_study import CondorCaseStudyConfig, run_condor_case_study
from repro.experiments.faults import (
    FINITE_CORE_FAULTS,
    PAPER_FAULTS,
    SMOKE_FAULTS,
    SMOKE_FINITE_CORE,
    FaultsExperiment,
)
from repro.experiments.multicast_replicas import MulticastConfig, MulticastExperiment
from repro.experiments.regeneration import PAPER_REPAIR, RepairExperiment
from repro.experiments.results import benchmark_summary, format_series_table
from repro.experiments.routing import PAPER_ROUTING
from repro.experiments.serving import PAPER_SERVING
from repro.experiments.soak import PAPER_SOAK, SoakExperiment
from repro.experiments.storage_insertion import InsertionConfig, InsertionExperiment
from repro.experiments.tenants import PAPER_TENANTS, SMOKE_TENANTS, TenantsExperiment
from repro.workloads.filetrace import GB, MB


def _run_insertion(args: argparse.Namespace) -> int:
    config = InsertionConfig(
        node_count=args.nodes,
        file_count=args.files,
        seed=args.seed,
    )
    outcome = InsertionExperiment(config).run()
    print("Figure 7 — failed stores (%, final):", outcome.final_failed_stores())
    print("Figure 8 — failed data (%, final):  ", outcome.final_failed_data())
    print("Figure 9 — utilisation (%, final):  ", outcome.final_utilization())
    print()
    print("Table 1 — chunk statistics")
    for scheme in ("CFS", "Our System"):
        stats = outcome.curves[scheme].chunk_stats
        print(
            f"  {scheme:12s} chunks/file {stats.get('mean_chunks_per_file', 0):7.2f} "
            f"(sd {stats.get('std_chunks_per_file', 0):6.2f})   "
            f"chunk size {stats.get('mean_chunk_size', 0) / MB:8.2f} MB "
            f"(sd {stats.get('std_chunk_size', 0) / MB:7.2f} MB)"
        )
    return 0


def _run_availability(args: argparse.Namespace) -> int:
    config = AvailabilityConfig(node_count=args.nodes, file_count=args.files, seed=args.seed)
    series = AvailabilityExperiment(config).run()
    print("Figure 10 — unavailable files (%) vs failed nodes")
    print(format_series_table(list(series.values()), x_label="failed_nodes"))
    return 0


def _run_fig10(args: argparse.Namespace) -> int:
    """Figure 10 at the paper's scale (10 000 nodes, 1 000 failures) by default."""
    import time
    from dataclasses import replace

    config = replace(
        PAPER_FIG10,
        node_count=max(2, int(round(args.nodes * args.scale))),
        file_count=max(1, int(round(args.files * args.scale))),
        fail_fraction=args.fail_pct / 100.0,
        seed=args.seed,
        vectorized=not args.scalar,
    )
    experiment = AvailabilityExperiment(config)
    start = time.perf_counter()
    series = experiment.run()
    elapsed = time.perf_counter() - start
    print(
        f"Figure 10 — unavailable files (%) vs failed nodes "
        f"({config.node_count} nodes, {config.file_count} files, "
        f"{config.fail_fraction:.0%} failed, "
        f"{'seed scalar path' if args.scalar else 'columnar ledger'})"
    )
    print(format_series_table(list(series.values()), x_label="failed_nodes"))
    print(f"wall time: {elapsed:.1f}s")
    return 0


def _run_table3(args: argparse.Namespace) -> int:
    """Table 3 at the paper's scale (10 000 nodes, 10 % and 20 % failed) by default."""
    import time
    from dataclasses import replace

    fractions = tuple(float(pct) / 100.0 for pct in args.fractions.split(","))
    config = replace(
        PAPER_TABLE3,
        node_count=max(2, int(round(args.nodes * args.scale))),
        file_count=max(1, int(round(args.files * args.scale))),
        fail_fractions=fractions,
        seed=args.seed,
        vectorized=not args.scalar,
    )
    start = time.perf_counter()
    table = ChurnExperiment(config).run()
    elapsed = time.perf_counter() - start
    print(table.format())
    print(f"wall time: {elapsed:.1f}s ({config.node_count} nodes, {config.file_count} files, "
          f"{'seed scalar path' if args.scalar else 'columnar ledger'})")
    return 0


def _run_soak(args: argparse.Namespace) -> int:
    """Join/leave churn soak at the paper's scale (10 000 nodes, one week) by default."""
    import time
    from dataclasses import replace

    config = replace(
        PAPER_SOAK,
        node_count=max(2, int(round(args.nodes * args.scale))),
        file_count=max(1, int(round(args.files * args.scale))),
        horizon_hours=args.days * 24.0,
        join_rate_per_hour=args.join_rate * args.scale,
        leave_rate_per_hour=args.leave_rate * args.scale,
        compaction=not args.no_compaction,
        leave_mode=args.leave_mode,
        bandwidth_gb_per_hour=args.bandwidth_gb_hour,
        seed=args.seed,
        vectorized=not args.scalar,
    )
    start = time.perf_counter()
    result = SoakExperiment(config).run()
    elapsed = time.perf_counter() - start
    print(result.series_table().format(float_format="{:,.2f}"))
    print()
    summary = result.summary()
    print("soak summary: " + ", ".join(f"{key}={value:,.2f}" for key, value in summary.items()))
    print(f"wall time: {elapsed:.1f}s ({config.node_count} nodes, {config.file_count} files, "
          f"{config.horizon_hours / 24:.1f} simulated days, "
          f"{'seed scalar path' if args.scalar else 'columnar ledger + compaction'})")
    return 0


def _run_repair(args: argparse.Namespace) -> int:
    """Bandwidth-aware repair at the paper's scale (10 000 nodes) by default."""
    import time
    from dataclasses import replace

    fractions = tuple(float(pct) / 100.0 for pct in args.fractions.split(","))
    sweep = tuple(float(value) for value in args.bandwidth_sweep.split(","))
    config = replace(
        PAPER_REPAIR,
        node_count=max(2, int(round(args.nodes * args.scale))),
        file_count=max(1, int(round(args.files * args.scale))),
        fail_fractions=fractions,
        bandwidth_mb_s=args.bandwidth,
        bandwidth_sweep_mb_s=sweep,
        failure_spacing_s=args.spacing,
        seed=args.seed,
        vectorized=not args.scalar,
    )
    start = time.perf_counter()
    result = RepairExperiment(config).run()
    elapsed = time.perf_counter() - start
    print(result.fraction_table().format(float_format="{:,.2f}"))
    print()
    print(result.bandwidth_table().format(float_format="{:,.2f}"))
    print()
    print(result.ablation_table().format(float_format="{:,.2f}"))
    print(f"wall time: {elapsed:.1f}s ({config.node_count} nodes, {config.file_count} files, "
          f"{'seed scalar path' if args.scalar else 'columnar ledger'}, "
          f"fair-share transfer scheduler)")
    return 0


def _run_faults(args: argparse.Namespace) -> int:
    """Failure-domain fault panels at the paper's scale (10 000 nodes) by default."""
    import time
    from dataclasses import replace

    if args.smoke:
        config = replace(SMOKE_FINITE_CORE if args.oversub else SMOKE_FAULTS,
                         seed=args.seed)
    else:
        config = replace(
            FINITE_CORE_FAULTS if args.oversub else PAPER_FAULTS,
            node_count=max(2, int(round(args.nodes * args.scale))),
            file_count=max(1, int(round(args.files * args.scale))),
            flash_fraction=args.flash_pct / 100.0,
            bandwidth_mb_s=args.bandwidth,
            sites=args.sites,
            racks_per_site=args.racks_per_site,
            seed=args.seed,
        )
    if args.oversub:
        config = replace(config, oversubscription=args.oversub)
    start = time.perf_counter()
    result = FaultsExperiment(config).run()
    elapsed = time.perf_counter() - start
    print(result.durability_table().format(float_format="{:,.2f}"))
    print()
    print(result.repair_table().format(float_format="{:,.2f}"))
    if args.oversub:
        print()
        print(result.topology_table().format(float_format="{:,.2f}"))
    core = (f"{args.oversub:g}:1 oversubscribed core" if args.oversub
            else "access links only")
    print(f"wall time: {elapsed:.1f}s ({config.node_count} nodes, {config.file_count} files, "
          f"{config.sites}x{config.racks_per_site} racks, "
          f"{config.block_replication}-copy target, {core})")
    return 0


def _run_tenants(args: argparse.Namespace) -> int:
    """Per-tenant QoS isolation panels at the paper's scale (10 000 nodes) by default."""
    import time
    from dataclasses import replace

    if args.smoke:
        config = replace(SMOKE_TENANTS, seed=args.seed)
    else:
        config = replace(
            PAPER_TENANTS,
            node_count=max(2, int(round(args.nodes * args.scale))),
            archive_files=max(1, int(round(args.files * args.scale))),
            bandwidth_mb_s=args.bandwidth,
            seed=args.seed,
        )
    if args.oversub is not None:
        config = replace(config, oversubscription=args.oversub or None)
    if args.no_isolation:
        config = replace(config, storm_tenant_weight=1.0, storm_tenant_cap_mb_s=None)
    start = time.perf_counter()
    result = TenantsExperiment(config).run()
    elapsed = time.perf_counter() - start
    print(result.isolation_table().format(float_format="{:,.2f}"))
    print()
    print(result.slo_table().format(float_format="{:,.2f}"))
    summary = result.isolation_summary()
    print("isolation summary: "
          + ", ".join(f"{key}={value:,.2f}" for key, value in summary.items()))
    print(f"wall time: {elapsed:.1f}s ({config.node_count} nodes, "
          f"{config.archive_files} archive files, "
          f"{config.oversubscription or 0:g}:1 core, "
          f"storm weight {config.storm_tenant_weight:g})")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Serve-path panels at the paper's scale (10 000 nodes) by default."""
    import time
    from dataclasses import replace

    spec = get_experiment("serving")
    config = spec.preset("smoke" if args.smoke else "paper")
    if not args.smoke:
        config = replace(
            config,
            node_count=max(2, int(round(args.nodes * args.scale))),
            catalog_files=max(1, int(round(args.files * args.scale))),
            request_rate=args.rate,
            duration_s=args.duration,
            client_count=args.clients,
            cache_mb=args.cache_mb,
        )
    config = replace(config, seed=args.seed)
    if args.zipf:
        config = replace(config,
                         zipf_sweep=tuple(float(value) for value in args.zipf.split(",")))
    if args.no_cache:
        config = replace(config, cache_modes=(False,))
    if args.oversub is not None:
        config = replace(config, oversubscription=args.oversub or None)
    start = time.perf_counter()
    result = spec.run(config)
    elapsed = time.perf_counter() - start
    print(result.table().format(float_format="{:,.2f}"))
    summary = result.summary()
    print("serving summary: "
          + ", ".join(f"{key}={value:,.2f}" for key, value in summary.items()))
    print(f"wall time: {elapsed:.1f}s ({config.node_count} nodes, "
          f"{config.catalog_files} catalog files, "
          f"{config.oversubscription or 0:g}:1 core, "
          f"{config.cache_mb:g} MB/gateway cache)")
    return 0


def _run_coding(args: argparse.Namespace) -> int:
    config = CodingPerfConfig(chunk_size=int(args.chunk_mb * MB), blocks_per_chunk=args.blocks)
    print(run_coding_performance(config).format())
    return 0


def _run_churn(args: argparse.Namespace) -> int:
    config = ChurnConfig(node_count=args.nodes, file_count=args.files, seed=args.seed)
    print(ChurnExperiment(config).run().format())
    return 0


def _run_multicast(args: argparse.Namespace) -> int:
    config = MulticastConfig(seed=args.seed, node_count=args.nodes,
                             replica_count=args.replicas)
    experiment = MulticastExperiment(config)
    if config.node_count > 0:
        tree = experiment._build_tree()
        print(f"dissemination tree routed over {config.node_count} overlay nodes: "
              f"{len(tree)} vertices, height {tree.height()}, "
              f"{len(tree.leaves())} leaves")
    sweep = experiment.run_ransub_sweep()
    print("Figure 11 — epochs to full dissemination per RanSub size")
    for fraction, series in sorted(sweep.items()):
        print(f"  RanSub {fraction:5.0%}: {len(series):4d} epochs")
    minimum, average, maximum = experiment.run_saturation()
    print("Figure 12 — final min/avg/max packets per node:",
          minimum.final(), average.final(), maximum.final())
    return 0


def _run_routing(args: argparse.Namespace) -> int:
    """Routing-fabric panels at the paper's scale (10 000 nodes) by default."""
    import time
    from dataclasses import replace

    spec = get_experiment("routing")
    config = spec.preset("smoke" if args.smoke else "paper")
    if not args.smoke and args.scale != 1.0:
        config = replace(
            config,
            population_sweep=tuple(
                max(16, int(round(nodes * args.scale)))
                for nodes in config.population_sweep),
            churn_nodes=max(32, int(round(config.churn_nodes * args.scale))),
            lookups=max(50, int(round(config.lookups * args.scale))),
            churn_lookups=max(50, int(round(config.churn_lookups * args.scale))),
        )
    config = replace(config, seed=args.seed)
    if args.engines:
        config = replace(config,
                         engines=tuple(name.strip() for name in args.engines.split(",")))
    if args.lookups is not None:
        config = replace(config, lookups=args.lookups)
    start = time.perf_counter()
    result = spec.run(config)
    elapsed = time.perf_counter() - start
    print(result.panel_table().format(float_format="{:,.2f}"))
    print()
    print(result.churn_table().format(float_format="{:,.2f}"))
    print()
    print(result.speedup_table().format(float_format="{:,.3f}"))
    summary = result.summary()
    print("routing summary: "
          + ", ".join(f"{key}={value:,.2f}" for key, value in summary.items()))
    print(f"wall time: {elapsed:.1f}s (sweep {config.population_sweep}, "
          f"{config.lookups} lookups/cell, engines {', '.join(config.engines)})")
    return 0


def _run_condor(args: argparse.Namespace) -> int:
    sizes = tuple(int(float(size) * GB) for size in args.sizes.split(","))
    config = CondorCaseStudyConfig(file_sizes=sizes, seed=args.seed)
    print(run_condor_case_study(config).format(float_format="{:.1f}"))
    return 0


def _repo_root() -> Path:
    """The repository checkout containing the ``benchmarks/`` suite."""
    return Path(__file__).resolve().parents[2]


def _run_bench(args: argparse.Namespace) -> int:
    """Run the ``-m bench`` suite and merge/refresh the BENCH_*.json records.

    The benchmark session hooks (``benchmarks/conftest.py``) rewrite each
    ``BENCH_*.json`` only from a clean, complete run of its own module, so a
    filtered (``--select``) or failed run never clobbers the other records.
    """
    root = _repo_root()
    if not (root / "benchmarks").is_dir():
        print(f"benchmarks/ suite not found under {root}", file=sys.stderr)
        return 2
    if not args.summary_only:
        command = [sys.executable, "-m", "pytest", "benchmarks", "-m", "bench", "-q"]
        if args.select:
            command += ["-k", args.select]
        env = dict(os.environ)
        src = str(root / "src")
        env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        code = subprocess.call(command, cwd=root, env=env)
        if code != 0:
            return code
    print()
    print(benchmark_summary(root))
    return 0


# --------------------------------------------------------------- registration --
@dataclass(frozen=True)
class Arg:
    """One ``add_argument`` call: positional flags plus keyword options."""

    flags: Tuple[str, ...]
    options: dict


def _arg(*flags: str, **options) -> Arg:
    return Arg(flags=flags, options=options)


_DEFAULT_SCALE_HELP = "multiply nodes and files by this factor (e.g. 0.1)"
_SMOKE_HELP = "run the fixed tier-1 smoke configuration (seconds)"


@dataclass(frozen=True)
class Command:
    """One subcommand: handler, per-command args, shared-flag opt-ins.

    ``scale``/``oversub`` carry the flag's help text when the command takes
    it (``None`` omits the flag); ``smoke`` opts into the shared ``--smoke``
    flag; ``seed`` is the command's default seed (``None`` omits ``--seed``).
    """

    name: str
    help: str
    handler: Callable[[argparse.Namespace], int]
    args: Tuple[Arg, ...] = ()
    scale: Optional[str] = None
    smoke: bool = False
    oversub: Optional[str] = None
    seed: Optional[int] = None


COMMANDS: Tuple[Command, ...] = (
    Command(
        "insertion", "Figures 7-9 and Table 1", _run_insertion,
        args=(_arg("--nodes", type=int, default=200),
              _arg("--files", type=int, default=None)),
        seed=1,
    ),
    Command(
        "availability", "Figure 10", _run_availability,
        args=(_arg("--nodes", type=int, default=300),
              _arg("--files", type=int, default=2000)),
        seed=2,
    ),
    Command(
        "fig10", "Figure 10 at paper scale (10 000 nodes / 1 000 failures)",
        _run_fig10,
        args=(_arg("--nodes", type=int, default=PAPER_FIG10.node_count),
              _arg("--files", type=int, default=PAPER_FIG10.file_count),
              _arg("--fail-pct", type=float, default=10.0,
                   help="percent of the population failed one by one"),
              _arg("--scalar", action="store_true",
                   help="run the preserved seed scalar path instead of the ledger")),
        scale=_DEFAULT_SCALE_HELP,
        seed=PAPER_FIG10.seed,
    ),
    Command(
        "table3", "Table 3 at paper scale (10 000 nodes, 10 % and 20 % failed)",
        _run_table3,
        args=(_arg("--nodes", type=int, default=PAPER_TABLE3.node_count),
              _arg("--files", type=int, default=PAPER_TABLE3.file_count),
              _arg("--fractions", type=str, default="10,20",
                   help="comma-separated failure percentages"),
              _arg("--scalar", action="store_true",
                   help="run the preserved seed scalar path instead of the ledger")),
        scale=_DEFAULT_SCALE_HELP,
        seed=PAPER_TABLE3.seed,
    ),
    Command(
        "soak",
        "join/leave churn soak (paper scale: 10 000 nodes, one simulated week)",
        _run_soak,
        args=(_arg("--nodes", type=int, default=PAPER_SOAK.node_count),
              _arg("--files", type=int, default=PAPER_SOAK.file_count),
              _arg("--days", type=float, default=PAPER_SOAK.horizon_hours / 24.0,
                   help="simulated soak length in days"),
              _arg("--join-rate", type=float, default=PAPER_SOAK.join_rate_per_hour,
                   help="fresh-node joins per simulated hour (before --scale)"),
              _arg("--leave-rate", type=float, default=PAPER_SOAK.leave_rate_per_hour,
                   help="graceful departures per simulated hour (before --scale)"),
              _arg("--no-compaction", action="store_true",
                   help="disable the periodic ledger compaction pass"),
              _arg("--leave-mode", type=str, default=PAPER_SOAK.leave_mode,
                   choices=("regenerate", "migrate"),
                   help="graceful departures regenerate from redundancy or "
                        "migrate their blocks out over their uplink"),
              _arg("--bandwidth-gb-hour", type=float, default=None,
                   help="per-node link capacity in GB per simulated hour "
                        "(default: unconstrained, instantaneous repair)"),
              _arg("--scalar", action="store_true",
                   help="run the preserved seed scalar path instead of the ledger")),
        scale="multiply nodes, files and churn rates by this factor (e.g. 0.1)",
        seed=PAPER_SOAK.seed,
    ),
    Command(
        "repair",
        "bandwidth-aware repair: time-to-repair and traffic curves, "
        "migration-vs-regeneration ablation (paper scale: 10 000 nodes)",
        _run_repair,
        args=(_arg("--nodes", type=int, default=PAPER_REPAIR.node_count),
              _arg("--files", type=int, default=PAPER_REPAIR.file_count),
              _arg("--fractions", type=str, default="2,5,10",
                   help="comma-separated failure percentages for the sweep"),
              _arg("--bandwidth", type=float, default=PAPER_REPAIR.bandwidth_mb_s,
                   help="per-node link capacity in MB per simulated second"),
              _arg("--bandwidth-sweep", type=str, default="4,8,16",
                   help="comma-separated bandwidths for the bandwidth panel"),
              _arg("--spacing", type=float, default=PAPER_REPAIR.failure_spacing_s,
                   help="simulated seconds between consecutive failures"),
              _arg("--scalar", action="store_true",
                   help="run the preserved seed scalar path instead of the ledger")),
        scale=_DEFAULT_SCALE_HELP,
        seed=PAPER_REPAIR.seed,
    ),
    Command(
        "faults",
        "failure-domain fault panels: site/rack outages, flash crowd, "
        "rolling restart, degraded links (paper scale: 10 000 nodes)",
        _run_faults,
        args=(_arg("--nodes", type=int, default=PAPER_FAULTS.node_count),
              _arg("--files", type=int, default=PAPER_FAULTS.file_count),
              _arg("--flash-pct", type=float,
                   default=100.0 * PAPER_FAULTS.flash_fraction,
                   help="percent of the population downed by the flash crowd"),
              _arg("--bandwidth", type=float, default=PAPER_FAULTS.bandwidth_mb_s,
                   help="per-node link capacity in MB per simulated second"),
              _arg("--sites", type=int, default=PAPER_FAULTS.sites,
                   help="failure-domain sites in the grid"),
              _arg("--racks-per-site", type=int, default=PAPER_FAULTS.racks_per_site)),
        scale=_DEFAULT_SCALE_HELP,
        smoke=True,
        oversub="finite two-stage core: trunks carry the members' "
                "aggregate access bandwidth / RATIO (adds the "
                "recovery-storm panel and the topology table)",
        seed=PAPER_FAULTS.seed,
    ),
    Command(
        "tenants",
        "per-tenant QoS isolation: the noisy-neighbor storm suite "
        "(paper scale: 10 000 nodes, 4 tenants, 4:1 core)",
        _run_tenants,
        args=(_arg("--nodes", type=int, default=PAPER_TENANTS.node_count),
              _arg("--files", type=int, default=PAPER_TENANTS.archive_files,
                   help="archive-tenant corpus size (files)"),
              _arg("--bandwidth", type=float, default=PAPER_TENANTS.bandwidth_mb_s,
                   help="per-node link capacity in MB per simulated second"),
              _arg("--no-isolation", action="store_true",
                   help="drop the storm tenant's weight/cap in every "
                        "scenario (storm_isolated degenerates to open)")),
        scale="multiply nodes and archive files by this factor",
        smoke=True,
        oversub="two-stage core oversubscription ratio "
                "(default 4:1; 0 = access links only)",
        seed=PAPER_TENANTS.seed,
    ),
    Command(
        "serve",
        "serve path: open-loop Zipf traffic, per-gateway block caches, "
        "hot-file replication (paper scale: 10 000 nodes)",
        _run_serve,
        args=(_arg("--nodes", type=int, default=PAPER_SERVING.node_count),
              _arg("--files", type=int, default=PAPER_SERVING.catalog_files,
                   help="served catalog size (files)"),
              _arg("--rate", type=float, default=PAPER_SERVING.request_rate,
                   help="offered request rate (requests per simulated second)"),
              _arg("--duration", type=float, default=PAPER_SERVING.duration_s,
                   help="open-loop arrival window in simulated seconds"),
              _arg("--zipf", type=str, default=None,
                   help="comma-separated Zipf skew values (default 0.8,1.1)"),
              _arg("--clients", type=int, default=PAPER_SERVING.client_count,
                   help="front-end gateway nodes requests fan out over"),
              _arg("--cache-mb", type=float, default=PAPER_SERVING.cache_mb,
                   help="per-gateway LRU block-cache budget in MB"),
              _arg("--no-cache", action="store_true",
                   help="run only the direct (cache-off) cells")),
        scale="multiply nodes and catalog files by this factor",
        smoke=True,
        oversub="two-stage core oversubscription ratio "
                "(default 4:1; 0 = access links only)",
        seed=PAPER_SERVING.seed,
    ),
    Command(
        "coding", "Table 2", _run_coding,
        args=(_arg("--chunk-mb", type=float, default=1.0),
              _arg("--blocks", type=int, default=512)),
    ),
    Command(
        "churn", "Table 3", _run_churn,
        args=(_arg("--nodes", type=int, default=300),
              _arg("--files", type=int, default=2000)),
        seed=4,
    ),
    Command(
        "multicast", "Figures 11 and 12", _run_multicast,
        args=(_arg("--nodes", type=int, default=0,
                   help="overlay size to route the dissemination tree over "
                        "(0 = the paper's synthetic binary tree)"),
              _arg("--replicas", type=int, default=32,
                   help="replica holders reached through the overlay "
                        "(only with --nodes > 0)")),
        seed=5,
    ),
    Command(
        "routing",
        "routing fabric: batched Pastry/Chord lookups, hops vs N, churn "
        "head-to-head, seed-router speedups (paper scale: 10 000 nodes)",
        _run_routing,
        args=(_arg("--engines", type=str, default=None,
                   help="comma-separated engines (default pastry,chord)"),
              _arg("--lookups", type=int, default=None,
                   help="batched lookups per (size, engine) cell")),
        scale="multiply sweep populations and lookup counts by this factor",
        smoke=True,
        seed=PAPER_ROUTING.seed,
    ),
    Command(
        "condor", "Table 4", _run_condor,
        args=(_arg("--sizes", type=str, default="1,2,4,8,16,32,64,128",
                   help="comma-separated file sizes in GB"),),
        seed=6,
    ),
    Command(
        "bench",
        "run the -m bench suite and update the BENCH_*.json trajectory",
        _run_bench,
        args=(_arg("--select", type=str, default=None,
                   help="pytest -k expression to run a subset of the benchmarks"),
              _arg("--summary-only", action="store_true",
                   help="skip running; just print the recorded BENCH_*.json summary")),
    ),
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser from the :data:`COMMANDS` table."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    subparsers = parser.add_subparsers(dest="experiment")
    for command in COMMANDS:
        sub = subparsers.add_parser(command.name, help=command.help)
        for arg in command.args:
            sub.add_argument(*arg.flags, **arg.options)
        if command.scale is not None:
            sub.add_argument("--scale", type=float, default=1.0, help=command.scale)
        if command.smoke:
            sub.add_argument("--smoke", action="store_true", help=_SMOKE_HELP)
        if command.oversub is not None:
            sub.add_argument("--oversub", type=float, default=None, metavar="RATIO",
                            help=command.oversub)
        if command.seed is not None:
            sub.add_argument("--seed", type=int, default=command.seed)
        sub.set_defaults(func=command.handler)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list or args.experiment is None:
        names = ", ".join(command.name for command in COMMANDS)
        print(f"Available experiments: {names}")
        return 0
    handler: Callable[[argparse.Namespace], int] = args.func
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
