"""Failure handling and block regeneration (Section 4.4 of the paper).

When a participant fails, the identifier-space region it owned is split
between its immediate neighbours; those neighbours become responsible for the
encoded blocks that used to live on the failed node and re-create them from
the surviving encoded blocks of the same chunk.  Key properties reproduced
here:

* a regenerated block is *functionally* equivalent, not byte-identical, to the
  lost one (with a rateless code new check blocks are simply appended);
* if the chunk has already lost too many blocks to decode, nothing can be
  regenerated and the chunk's data is lost;
* if the newly responsible node lacks capacity, the block is either dropped
  and re-created at a different location (the paper's adopted choice, possible
  because of the rateless online code) or skipped, per policy;
* CAT objects are re-replicated, and a lost CAT can be rebuilt by probing
  chunk names one past the zero-chunk limit (Section 4.4).

The manager exposes per-failure accounting (bytes regenerated, bytes lost)
which is exactly what Table 3 of the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import naming
from repro.core.block_ledger import BlockLedger
from repro.core.cat import ChunkAllocationTable
from repro.core.storage import BlockPlacement, StorageSystem, StoredChunk, StoredFile
from repro.overlay.ids import NodeId
from repro.overlay.node import OverlayNode


@dataclass
class FailureImpact:
    """Accounting for one node failure (one row contribution to Table 3)."""

    failed_node: NodeId
    blocks_lost: int = 0
    bytes_on_failed_node: int = 0
    bytes_regenerated: int = 0
    bytes_relocated: int = 0
    bytes_dropped: int = 0
    #: User data (chunk bytes) that became unrecoverable because of this failure.
    data_bytes_lost: int = 0
    chunks_lost: int = 0
    files_damaged: int = 0
    cat_copies_restored: int = 0


class RecoveryManager:
    """Drives block regeneration after node failures."""

    def __init__(
        self,
        storage: StorageSystem,
        relocate_when_full: bool = True,
    ) -> None:
        self.storage = storage
        self.dht = storage.dht
        #: The paper adopts "drop and create another one at a different
        #: location" when the neighbour lacks capacity; set False to model the
        #: alternative (skip regeneration entirely).
        self.relocate_when_full = relocate_when_full
        self.impacts: List[FailureImpact] = []

    # ------------------------------------------------------------------ failure --
    def handle_failure(self, node_id: NodeId) -> FailureImpact:
        """Fail ``node_id`` and regenerate what can be regenerated.

        The node is marked failed in the overlay, removed from the DHT view,
        and every block it stored is examined: blocks whose chunk is still
        decodable are re-created on the node now responsible for their name
        (or elsewhere if that node is full); chunks that are no longer
        decodable are counted as lost data.

        When the storage system runs on the columnar block ledger (the
        ``vectorized=True`` default), the lost blocks come from one mask over
        the ledger's owner column and every decodability check is an O(1)
        counter read; the seed path walks the per-node dict and the chunk
        placements.  Both produce identical impacts, placements and Table 3
        rows (``tests/test_churn_equivalence.py``).
        """
        ledger = self.storage.ledger
        if ledger is not None:
            return self._handle_failure_ledger(node_id, ledger)
        return self._handle_failure_scalar(node_id)

    def _handle_failure_scalar(self, node_id: NodeId) -> FailureImpact:
        """The preserved seed failure path: per-node dict walk end to end."""
        node = self.dht.network.node(node_id)
        lost_blocks = dict(node.stored_blocks)
        impact = FailureImpact(failed_node=node_id)
        impact.blocks_lost = len(lost_blocks)
        impact.bytes_on_failed_node = sum(lost_blocks.values())

        if node.alive:
            self.dht.network.fail(node_id)
        self.dht.remove(node_id)

        damaged_files: set[str] = set()
        for block_name, size in lost_blocks.items():
            self._recover_block(block_name, size, node_id, impact, damaged_files)
        impact.files_damaged = len(damaged_files)
        self.impacts.append(impact)
        return impact

    def _handle_failure_ledger(self, node_id: NodeId, ledger: BlockLedger) -> FailureImpact:
        """Ledger-driven failure: columnar block selection, O(1) decodability."""
        node = self.dht.network.node(node_id)
        lost_blocks = dict(node.stored_blocks)
        impact = FailureImpact(failed_node=node_id)
        impact.blocks_lost = len(lost_blocks)
        impact.bytes_on_failed_node = sum(lost_blocks.values())

        rows = ledger.recovery_rows(node)
        if node.alive:
            self.dht.network.fail(node_id)  # the ledger is notified via its listener
        self.dht.remove(node_id)  # incremental boundary patch, not an O(N) rebuild
        ledger.ensure_digests(rows)

        damaged_files: set[str] = set()
        ledger_names = set()
        for row in rows:
            name = ledger.row_name(row)
            ledger_names.add(name)
            self._recover_row(row, name, ledger, node_id, impact, damaged_files)
        # Blocks present in the node's dict but not in the ledger (out-of-band
        # stores, copies a repair re-pointed away from) fall back to the seed
        # per-block logic so both paths examine exactly the same names.
        missing = lost_blocks.keys() - ledger_names
        if missing:
            for name, size in lost_blocks.items():
                if name in missing:
                    self._recover_block(name, size, node_id, impact, damaged_files)
        impact.files_damaged = len(damaged_files)
        self.impacts.append(impact)
        return impact

    def _recover_row(
        self,
        row: int,
        name: str,
        ledger: BlockLedger,
        failed_node: NodeId,
        impact: FailureImpact,
        damaged_files: set,
    ) -> None:
        """Ledger-path counterpart of :meth:`_recover_block` for one lost copy."""
        file_idx, chunk_idx, placement_idx, size = ledger.row_fields(row)
        key = ledger.row_key(row)
        if placement_idx < 0:
            # CAT/metadata copy: restore one on the node now responsible.
            self._restore_object_copy(name, size, impact, key=key, digest=ledger.row_digest(row))
            return
        chunk = ledger.chunk_object(chunk_idx)
        if not ledger.chunk_recoverable(chunk_idx):
            damaged_files.add(ledger.file_name(file_idx))
            if not getattr(chunk, "_counted_lost", False):
                impact.data_bytes_lost += chunk.size
                impact.chunks_lost += 1
                setattr(chunk, "_counted_lost", True)
            return
        self._apply_regeneration(
            chunk,
            ledger.placement_position(placement_idx),
            name,
            size,
            failed_node,
            impact,
            key=key,
            digest=ledger.row_digest(row),
        )

    def _recover_block(
        self,
        block_name: str,
        size: int,
        failed_node: NodeId,
        impact: FailureImpact,
        damaged_files: set,
    ) -> None:
        parsed = naming.parse_block_name(block_name)
        if parsed is None:
            # Not an encoded block: CAT object or replica.  Restore a copy on
            # the node now responsible for the name.
            self._restore_object_copy(block_name, size, impact)
            return
        stored = self.storage.files.get(parsed.filename)
        if stored is None:
            return
        chunk = self._find_chunk(stored, parsed.chunk_no)
        if chunk is None:
            return
        placement_index = self._find_placement(chunk, block_name)
        if placement_index is None:
            return

        if not self.storage.chunk_is_recoverable(chunk):
            # Too many blocks of this chunk are gone; data is lost.
            damaged_files.add(parsed.filename)
            already_counted = getattr(chunk, "_counted_lost", False)
            if not already_counted:
                impact.data_bytes_lost += chunk.size
                impact.chunks_lost += 1
                setattr(chunk, "_counted_lost", True)
            return
        self._apply_regeneration(chunk, placement_index, block_name, size, failed_node, impact)

    def _apply_regeneration(
        self,
        chunk: StoredChunk,
        placement_index: int,
        block_name: str,
        size: int,
        failed_node: NodeId,
        impact: FailureImpact,
        key: Optional[int] = None,
        digest: Optional[bytes] = None,
    ) -> None:
        """Re-create one lost block and re-point its placement (both paths).

        Regenerating the block requires reading the surviving blocks of the
        chunk (cost charged by the Table 3 experiment as "data regenerated").
        When the chunk is ledger-registered the placement re-point is mirrored
        into the columnar bookkeeping.
        """
        new_holder = self._place_regenerated_block(block_name, size, exclude=failed_node, key=key)
        if new_holder is None:
            impact.bytes_dropped += size
            return
        old_placement = chunk.placements[placement_index]
        chunk.placements[placement_index] = BlockPlacement(
            block_name=block_name,
            node_id=new_holder.node_id,
            size=size,
            replica_nodes=old_placement.replica_nodes,
        )
        impact.bytes_regenerated += size
        ledger = self.storage.ledger
        if ledger is not None and chunk.ledger_index is not None:
            if digest is None:
                digest = naming.key_digest(block_name)
            ledger.replace_primary(
                ledger.placement_for(chunk.ledger_index, placement_index),
                int(old_placement.node_id),
                new_holder,
                block_name,
                size,
                digest,
            )
        if self.storage.payload_mode and chunk.encoded is not None:
            index = placement_index
            if index < len(chunk.encoded.blocks):
                payload = chunk.encoded.blocks[index].data
                fresh = self._fresh_check_block(chunk)
                if fresh is not None:
                    # Rateless repair (Section 4.4): the replacement is a *new*
                    # check block continuing the stream, not a byte-identical
                    # copy of the lost one.
                    chunk.encoded.blocks[index] = fresh
                    payload = fresh.data
                self.storage._block_payloads[(int(new_holder.node_id), block_name)] = payload
                # Surviving replicas still hold the *old* payload under this
                # block name; refresh them so a later fetch from a replica
                # cannot serve stale bytes keyed by the new stream index.
                for replica_id in old_placement.replica_nodes:
                    replica_key = (int(replica_id), block_name)
                    if replica_key in self.storage._block_payloads:
                        self.storage._block_payloads[replica_key] = payload

    def _fresh_check_block(self, chunk: StoredChunk):
        """Mint a brand-new encoded block for a rateless chunk, if possible.

        Returns ``None`` for non-rateless codes (their repair re-places the
        original payload).  For the online code, the surviving blocks are
        decoded and ``generate_additional_blocks`` continues the check-block
        stream — the cached code-structure layer means this reuses the graph
        the encoder built rather than re-deriving it.
        """
        code = self.storage.codec.code
        if not hasattr(code, "generate_additional_blocks") or chunk.encoded is None:
            return None
        encoded = chunk.encoded
        try:
            data = code.decode(encoded, {b.index: b.data for b in encoded.blocks})
            new_blocks = code.generate_additional_blocks(encoded, data, 1)
        except Exception:  # noqa: BLE001 - fall back to copying the lost payload
            return None
        if not new_blocks:
            return None
        block = new_blocks[0]
        encoded.metadata["output_blocks"] = block.index + 1
        return block

    def _place_regenerated_block(
        self, block_name: str, size: int, exclude: NodeId, key: Optional[int] = None
    ) -> Optional[OverlayNode]:
        """Find a live node to hold the regenerated block.

        ``key`` lets the ledger path reuse the stored digest instead of
        re-hashing the name; the lookup itself (and its accounting) is the
        same scalar call on both paths.
        """
        target = self.dht.lookup(key if key is not None else naming.key_for_name(block_name))
        if target.node_id != exclude and target.store_block(block_name, size):
            return target
        if not self.relocate_when_full:
            return None
        # Rateless relocation: walk the target's neighbours until one accepts.
        for candidate in self.dht.neighbors(target.node_id, 8):
            if candidate.node_id == exclude:
                continue
            if candidate.store_block(block_name, size):
                return candidate
        return None

    def _restore_object_copy(
        self,
        name: str,
        size: int,
        impact: FailureImpact,
        key: Optional[int] = None,
        digest: Optional[bytes] = None,
    ) -> None:
        target = self.dht.lookup(key if key is not None else naming.key_for_name(name))
        if target.has_block(name):
            # The responsible node already has a replica; nothing to do.
            return
        if target.store_block(name, size):
            impact.cat_copies_restored += 1
            impact.bytes_regenerated += size
            if digest is not None and self.storage.ledger is not None:
                self.storage.ledger.restore_meta_copy(target, name, size, digest)

    @staticmethod
    def _find_chunk(stored: StoredFile, chunk_no: int) -> Optional[StoredChunk]:
        for chunk in stored.chunks:
            if chunk.chunk_no == chunk_no:
                return chunk
        return None

    @staticmethod
    def _find_placement(chunk: StoredChunk, block_name: str) -> Optional[int]:
        for index, placement in enumerate(chunk.placements):
            if placement.block_name == block_name:
                return index
        return None

    # ---------------------------------------------------------------- CAT rebuild --
    def rebuild_cat(self, filename: str, probe_limit: Optional[int] = None) -> ChunkAllocationTable:
        """Reconstruct a file's CAT by probing chunk names one by one.

        Section 4.4: chunk sizes are discovered incrementally; a missing chunk
        either means a zero-sized chunk or the end of the file, and because
        consecutive zero-sized chunks are bounded, probing one past the limit
        pins down the true end of the file.
        """
        stored = self.storage.files.get(filename)
        if stored is None:
            raise KeyError(f"unknown file: {filename!r}")
        limit = (
            probe_limit
            if probe_limit is not None
            else self.storage.policy.max_consecutive_zero_chunks + 1
        )
        sizes: List[int] = []
        missing_run = 0
        chunk_no = 1
        chunk_by_no = {chunk.chunk_no: chunk for chunk in stored.chunks}
        while missing_run < limit:
            chunk = chunk_by_no.get(chunk_no)
            if chunk is None or chunk.is_empty or not chunk.placements:
                sizes.append(0)
                missing_run += 1
            else:
                sizes.append(chunk.size)
                missing_run = 0
            chunk_no += 1
        # Trim the trailing zero probes that only served to detect the end.
        while sizes and sizes[-1] == 0:
            sizes.pop()
        return ChunkAllocationTable.from_chunk_sizes(filename, sizes)

    # ---------------------------------------------------------------- summaries --
    def totals(self) -> Dict[str, float]:
        """Aggregated accounting across all handled failures (Table 3 totals)."""
        if not self.impacts:
            return {
                "failures": 0.0,
                "total_regenerated_bytes": 0.0,
                "total_data_lost_bytes": 0.0,
                "mean_regenerated_per_failure": 0.0,
                "std_regenerated_per_failure": 0.0,
            }
        import numpy as np

        regenerated = np.asarray([impact.bytes_regenerated for impact in self.impacts], dtype=float)
        lost = float(sum(impact.data_bytes_lost for impact in self.impacts))
        return {
            "failures": float(len(self.impacts)),
            "total_regenerated_bytes": float(regenerated.sum()),
            "total_data_lost_bytes": lost,
            "mean_regenerated_per_failure": float(regenerated.mean()),
            "std_regenerated_per_failure": float(regenerated.std()),
        }
