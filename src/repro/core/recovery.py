"""Failure handling, block regeneration and graceful migration (Section 4.4).

When a participant fails, the identifier-space region it owned is split
between its immediate neighbours; those neighbours become responsible for the
encoded blocks that used to live on the failed node and re-create them from
the surviving encoded blocks of the same chunk.  Key properties reproduced
here:

* a regenerated block is *functionally* equivalent, not byte-identical, to the
  lost one (with a rateless code new check blocks are simply appended);
* if the chunk has already lost too many blocks to decode, nothing can be
  regenerated and the chunk's data is lost;
* if the newly responsible node lacks capacity, the block is either dropped
  and re-created at a different location (the paper's adopted choice, possible
  because of the rateless online code) or skipped, per policy;
* CAT objects are re-replicated, and a lost CAT can be rebuilt by probing
  chunk names one past the zero-chunk limit (Section 4.4).

The recovery subsystem is split into two collaborating halves:

* :class:`RepairPlanner` *selects* the repair work: which block copies died
  with the node (one read of the columnar ledger's per-owner row index on the
  vectorized path, the seed per-node dict walk otherwise), which of them can
  be regenerated vs. are lost, which must be copied out ahead of a graceful
  departure, and which surviving nodes the regeneration reads come from;
* :class:`RepairExecutor` *applies* each selected step: it places the
  replacement copy (DHT lookup plus the rateless relocation walk), re-points
  the placement bookkeeping, mirrors the ledger, and -- when a
  :class:`~repro.core.transfer.TransferScheduler` is attached -- charges the
  bytes that step moves to the fair-share bandwidth model so repairs take
  simulated *time*.

Planning and execution stay interleaved (the planner classifies one lost copy
at a time and the executor applies it before the next classification) because
placement decisions consume capacity that later decisions must observe --
exactly the seed ordering.  With no scheduler attached (``transfers=None``,
the default) the executor applies every step instantaneously and the whole
pipeline is bit-identical to the seed implementation; the oracle is
``tests/test_churn_equivalence.py``.

Graceful departures (:meth:`RecoveryManager.handle_leave`) are first-class:
the departing node's blocks are *copied out* to the nodes now responsible for
them before it leaves -- CFS and PAST both define this migration as
first-class, and their whole-file/stripe replica rows on a shared multi-tenant
ledger migrate through the same pipeline -- instead of being regenerated from
surviving redundancy afterwards.  Migration moves each block once (``B``
bytes) where regeneration reads ``required`` surviving blocks per lost block
(``required x B`` bytes), which is the traffic gap the
``repro.cli repair`` ablation measures.

The manager exposes per-failure accounting (bytes regenerated, bytes lost,
bytes migrated, repair completion times) which is exactly what Table 3 of the
paper and the bandwidth-aware repair experiment report.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core import naming
from repro.core.block_ledger import BlockLedger, TenantLedgerView
from repro.core.cat import ChunkAllocationTable
from repro.core.storage import BlockPlacement, StorageSystem, StoredChunk, StoredFile
from repro.core.transfer import TransferPacer, TransferScheduler, TransferSpec
from repro.overlay.ids import NodeId
from repro.overlay.node import OverlayNode


@dataclass
class FailureImpact:
    """Accounting for one node failure or departure (one Table 3 row share)."""

    failed_node: NodeId
    blocks_lost: int = 0
    bytes_on_failed_node: int = 0
    bytes_regenerated: int = 0
    bytes_relocated: int = 0
    bytes_dropped: int = 0
    #: User data (chunk bytes) that became unrecoverable because of this failure.
    data_bytes_lost: int = 0
    chunks_lost: int = 0
    files_damaged: int = 0
    cat_copies_restored: int = 0
    #: Neighbour-replica copies re-created (re-replication / replica
    #: migration), restoring the placement's replication level.
    replicas_restored: int = 0
    #: Bytes copied out ahead of a graceful departure (handle_leave only).
    bytes_migrated: int = 0
    #: Bytes charged to the transfer scheduler for this repair (reads of the
    #: surviving blocks plus migrated copies); 0 in instantaneous mode.
    repair_traffic_bytes: int = 0
    #: Simulated start/finish of the repair's transfers (None when
    #: instantaneous or when nothing had to move).
    repair_started_at: Optional[float] = None
    repair_finished_at: Optional[float] = None
    #: Repair transfers resubmitted after a mid-flight source failure or
    #: timeout (each retry re-plans its read from a surviving copy).
    repair_retries: int = 0
    #: Repair transfers abandoned after exhausting the retry budget.
    repair_transfers_failed: int = 0

    @property
    def time_to_repair(self) -> Optional[float]:
        """Simulated time from failure to the last repair transfer completing."""
        if self.repair_started_at is None or self.repair_finished_at is None:
            return None
        return self.repair_finished_at - self.repair_started_at


class RepairPlanner:
    """Selects repair/migration work from the ledger rows (or the seed walk).

    The planner owns the *decisions* -- which copies are examined in which
    order, regenerate vs. lost vs. copy-out, and which surviving nodes a
    regeneration reads from -- but never mutates placement state; every
    decision is handed to the executor before the next one is taken, because
    executing a step consumes target capacity that later decisions observe.
    """

    def __init__(self, storage: StorageSystem) -> None:
        self.storage = storage
        self.dht = storage.dht
        #: Tenant whose chunk rows this planner repairs (0 for a private
        #: ledger; shared multi-tenant ledgers tag rows per tenant).
        self.tenant_id = getattr(storage.ledger, "tenant_id", 0)
        #: Transfer scheduler consulted for congestion-aware source ranking;
        #: ranking activates only when it also carries a topology, so the
        #: access-only and instantaneous paths keep the seed selection order.
        self.transfers: Optional[TransferScheduler] = None

    def _rank_sources(self, candidates: list, early_stop: Optional[int] = None) -> list:
        """Stable-sort read-source candidates by outbound path congestion.

        Candidates whose uplink/rack/site stages are saturated sort last, so
        a repair read prefers copies reachable without crossing a hot trunk.
        The sort is stable and gated on an attached topology: with no
        topology (or an unconstrained one, where every congestion is 0) the
        original placement order is preserved exactly -- the infinite-core
        oracle's selection guarantee.
        """
        transfers = self.transfers
        if transfers is None or transfers.topology is None or len(candidates) <= 1:
            return candidates if early_stop is None else candidates[:early_stop]
        ranked = sorted(
            candidates,
            key=lambda node: transfers.source_congestion(int(node.node_id)),
        )
        return ranked if early_stop is None else ranked[:early_stop]

    # -------------------------------------------------------- classification --
    def classify_row(self, row: int, name: str, ledger: BlockLedger, failed_node: NodeId):
        """Classify one ledger row of a failed node into a repair step.

        Returns one of::

            ("skip",)                      -- another tenant's row, or a
                                              baseline replica-group row (the
                                              baselines have no regeneration)
            ("meta", name, size, key, digest)
            ("lost", chunk, file_name)     -- chunk below decode threshold
            ("regenerate", chunk, position, name, size, key, digest)
            ("rereplicate", chunk, position, name, size, key, digest)

        A placement row is a *primary* loss (regenerate: re-point the
        placement at a fresh block) only when the placement's primary lived on
        the failed node; otherwise the dead copy was a neighbour replica and
        the repair must re-replicate it -- re-pointing the primary from a
        replica row is exactly the erosion bug this distinction closes.
        """
        if ledger.row_group(row) >= 0 or ledger.row_tenant(row) != self.tenant_id:
            return ("skip",)
        file_idx, chunk_idx, placement_idx, size = ledger.row_fields(row)
        key = ledger.row_key(row)
        digest = ledger.row_digest(row)
        if placement_idx < 0:
            return ("meta", name, size, key, digest)
        chunk = ledger.chunk_object(chunk_idx)
        if not ledger.chunk_recoverable(chunk_idx):
            return ("lost", chunk, ledger.file_name(file_idx))
        position = ledger.placement_position(placement_idx)
        kind = (
            "regenerate"
            if int(chunk.placements[position].node_id) == int(failed_node)
            else "rereplicate"
        )
        return (kind, chunk, position, name, size, key, digest)

    def classify_block(self, block_name: str, size: int, failed_node: NodeId):
        """Seed-path counterpart of :meth:`classify_row` for one lost copy."""
        parsed = naming.parse_block_name(block_name)
        if parsed is None:
            # Not an encoded block: CAT object or replica.
            return ("meta", block_name, size, None, None)
        stored = self.storage.files.get(parsed.filename)
        if stored is None:
            return ("skip",)
        chunk = self._find_chunk(stored, parsed.chunk_no)
        if chunk is None:
            return ("skip",)
        placement_index = self._find_placement(chunk, block_name)
        if placement_index is None:
            return ("skip",)
        if not self.storage.chunk_is_recoverable(chunk):
            return ("lost", chunk, parsed.filename)
        kind = (
            "regenerate"
            if int(chunk.placements[placement_index].node_id) == int(failed_node)
            else "rereplicate"
        )
        return (kind, chunk, placement_index, block_name, size, None, None)

    # ---------------------------------------------------------- read sources --
    def regeneration_sources(self, chunk: StoredChunk, skip_position: int) -> List[OverlayNode]:
        """Live nodes a regeneration reads its ``required`` input blocks from.

        One surviving copy per placement (the decoder needs ``required``
        distinct blocks of the chunk), skipping the placement being repaired.
        Only consulted when a transfer scheduler is charging repair traffic.
        With a topology attached the candidates are congestion-ranked (least
        saturated outbound path first) before truncation to ``required``.
        """
        required = self.storage.codec.spec().required_blocks()
        rank = self.transfers is not None and self.transfers.topology is not None
        sources: List[OverlayNode] = []
        ledger = self.storage.ledger
        if ledger is not None and chunk.ledger_index is not None:
            for position, placement_idx in enumerate(
                ledger.chunk_placement_indexes(chunk.ledger_index)
            ):
                if position == skip_position:
                    continue
                owner = ledger.live_copy_owner(placement_idx)
                if owner is not None:
                    sources.append(owner)
                    if not rank and len(sources) >= required:
                        break
            return self._rank_sources(sources, required)
        network = self.dht.network
        for position, placement in enumerate(chunk.placements):
            if position == skip_position:
                continue
            for node_id in (placement.node_id, *placement.replica_nodes):
                if node_id in network and network.node(node_id).has_block(placement.block_name):
                    sources.append(network.node(node_id))
                    break
            if not rank and len(sources) >= required:
                break
        return self._rank_sources(sources, required)

    @staticmethod
    def _find_chunk(stored: StoredFile, chunk_no: int) -> Optional[StoredChunk]:
        for chunk in stored.chunks:
            if chunk.chunk_no == chunk_no:
                return chunk
        return None

    @staticmethod
    def _find_placement(chunk: StoredChunk, block_name: str) -> Optional[int]:
        for index, placement in enumerate(chunk.placements):
            if placement.block_name == block_name:
                return index
        return None


class RepairExecutor:
    """Applies repair/migration steps: placement, bookkeeping, bandwidth.

    With ``transfers=None`` every step applies instantaneously and the
    behaviour is the preserved seed pipeline.  With a scheduler attached, the
    logical state change still applies immediately (placements are exact at
    all times) while the bytes the step moves are charged to the fair-share
    bandwidth model; the repair is *complete* -- for time-to-repair purposes
    -- when its last transfer drains.
    """

    def __init__(
        self,
        storage: StorageSystem,
        relocate_when_full: bool,
        transfers: Optional[TransferScheduler],
    ) -> None:
        self.storage = storage
        self.dht = storage.dht
        self.relocate_when_full = relocate_when_full
        self.transfers = transfers
        #: Planner consulted when a failed repair transfer re-plans its read
        #: from a surviving copy (set by :class:`RecoveryManager`).
        self.planner: Optional[RepairPlanner] = None
        #: Per-transfer timeout (simulated time) applied to every repair
        #: transfer; ``None`` (the default) preserves untimed transfers.
        self.transfer_timeout: Optional[float] = None
        #: How many times one repair transfer is resubmitted after a failure
        #: or timeout before the bytes are abandoned.
        self.max_retries: int = 3
        #: Base delay of the exponential retry backoff (doubles per attempt).
        self.retry_backoff: float = 1.0
        #: Fair-share weight of repair transfers (< 1.0 de-prioritises repair
        #: below weight-1.0 foreground traffic on every shared link).
        self.repair_weight: float = 1.0
        #: Optional admission controller: repair submissions beyond its
        #: bounded in-flight window are queued (never dropped) and drain as
        #: completions free slots -- the recovery-storm backpressure valve.
        #: ``None`` submits directly (the seed behaviour).
        self.pacer: Optional[TransferPacer] = None
        #: Tenant tag charged to this executor's repair transfers (``None`` =
        #: untagged, the single-tenant default).  A store built on a
        #: :class:`~repro.core.block_ledger.TenantLedgerView` repairs under
        #: its own tenant; cross-tenant migrations pass the row's tenant
        #: explicitly.
        self.tenant: Optional[int] = None
        #: Transfer specs staged for the failure currently being processed:
        #: ``(size, src, dst, ctx, tenant)`` where ``ctx`` is ``None`` or a
        #: ``(mode, chunk, position)`` re-planning context.
        self._staged: List[
            Tuple[float, Optional[int], Optional[int], Optional[tuple], Optional[int]]
        ] = []

    # -------------------------------------------------------------- staging --
    def begin(self, impact: FailureImpact) -> None:
        """Start charging a new failure's repair traffic."""
        self._staged = []
        if self.transfers is not None:
            impact.repair_started_at = self.transfers.sim.now

    def finish(self, impact: FailureImpact) -> None:
        """Submit the staged transfers and wire the completion accounting.

        Each transfer that fails mid-flight (source endpoint died, bandwidth
        cut to zero, or deadline expired) is resubmitted after an exponential
        backoff with its read re-planned onto a surviving copy, up to
        :attr:`max_retries` times; the repair is complete when every staged
        byte has either drained or been abandoned.
        """
        if self.transfers is None or not self._staged:
            self._staged = []
            return
        staged = self._staged
        self._staged = []
        state = {"pending": len(staged)}

        def settle() -> None:
            state["pending"] -= 1
            if state["pending"] == 0:
                impact.repair_finished_at = self.transfers.sim.now

        def submit_spec(size, src, dst, ctx, tenant, attempt) -> TransferSpec:
            def on_failed(
                transfer, size=size, dst=dst, ctx=ctx, tenant=tenant, attempt=attempt
            ) -> None:
                if attempt >= self.max_retries:
                    impact.repair_transfers_failed += 1
                    settle()
                    return
                impact.repair_retries += 1
                new_src = self._replan_source(ctx, transfer.src, dst)
                delay = self.retry_backoff * (2.0 ** attempt)
                spec = submit_spec(size, new_src, dst, ctx, tenant, attempt + 1)
                self.transfers.sim.schedule(
                    delay, lambda spec=spec: self._submit([spec])
                )

            impact.repair_traffic_bytes += int(size)
            return TransferSpec(
                size, src, dst,
                on_complete=lambda _t: settle(),
                on_failed=on_failed,
                timeout=self.transfer_timeout,
                tenant=tenant,
            )

        self._submit(
            [
                submit_spec(size, src, dst, ctx, tenant, 0)
                for size, src, dst, ctx, tenant in staged
            ]
        )

    def _submit(self, specs: List[TransferSpec]) -> None:
        """Route repair specs through the admission window (when configured).

        Without a pacer the specs go straight to the scheduler tagged with
        the repair weight class -- weight 1.0 is arithmetically the unweighted
        seed path, so the default stays bit-identical.  The tenant tag rides
        through either route.
        """
        if self.pacer is not None:
            self.pacer.submit_many(specs)
        else:
            self.transfers.submit_many(
                [replace(spec, weight=self.repair_weight) for spec in specs]
            )

    def _stage(
        self,
        size: float,
        src: Optional[int],
        dst: Optional[int],
        ctx: Optional[tuple] = None,
        tenant: Optional[int] = None,
    ) -> None:
        if self.transfers is not None:
            self._staged.append(
                (size, src, dst, ctx, self.tenant if tenant is None else tenant)
            )

    def _replan_source(
        self, ctx: Optional[tuple], failed_src: Optional[int], dst: Optional[int]
    ) -> Optional[int]:
        """Pick a surviving node for a retried repair read.

        ``("copy", chunk, position)`` retries prefer another intact copy of
        the *same* placement (primary or neighbour replica); ``("regen", ...)``
        retries -- and copy retries with no intact copy left -- fall back to
        the decode-read sources of the chunk's other placements.  ``None``
        charges the receiver's downlink only (context-free transfers such as
        meta restores keep their original endpoints).
        """
        if ctx is None:
            return failed_src
        mode, chunk, position = ctx
        exclude = {x for x in (failed_src, dst) if x is not None}
        if mode == "copy" and 0 <= position < len(chunk.placements):
            source = self._copy_source(chunk, position, exclude)
            if source is not None:
                return source
        if self.planner is not None:
            for source in self.planner.regeneration_sources(chunk, position):
                if int(source.node_id) not in exclude:
                    return int(source.node_id)
        return None

    # ------------------------------------------------------------ regenerate --
    def apply_regeneration(
        self,
        chunk: StoredChunk,
        placement_index: int,
        block_name: str,
        size: int,
        failed_node: NodeId,
        impact: FailureImpact,
        key: Optional[int] = None,
        digest: Optional[bytes] = None,
        planner: Optional[RepairPlanner] = None,
    ) -> None:
        """Re-create one lost block and re-point its placement (both paths).

        Regenerating the block requires reading the surviving blocks of the
        chunk (cost charged by the Table 3 experiment as "data regenerated",
        and by the transfer scheduler as ``required`` reads of ``size`` bytes
        each).  When the chunk is ledger-registered the placement re-point is
        mirrored into the columnar bookkeeping.
        """
        sources: List[OverlayNode] = []
        if self.transfers is not None and planner is not None:
            # Collected before the re-point so the fresh copy is never a source.
            sources = planner.regeneration_sources(chunk, placement_index)
        new_holder = self.place_block(block_name, size, exclude=failed_node, key=key)
        if new_holder is None:
            impact.bytes_dropped += size
            return
        old_placement = chunk.placements[placement_index]
        chunk.placements[placement_index] = BlockPlacement(
            block_name=block_name,
            node_id=new_holder.node_id,
            size=size,
            replica_nodes=old_placement.replica_nodes,
        )
        impact.bytes_regenerated += size
        for source in sources:
            self._stage(
                size,
                int(source.node_id),
                int(new_holder.node_id),
                ("regen", chunk, placement_index),
            )
        ledger = self.storage.ledger
        if ledger is not None and chunk.ledger_index is not None:
            if digest is None:
                digest = naming.key_digest(block_name)
            ledger.replace_primary(
                ledger.placement_for(chunk.ledger_index, placement_index),
                int(old_placement.node_id),
                new_holder,
                block_name,
                size,
                digest,
            )
        if self.storage.payload_mode and chunk.encoded is not None:
            index = placement_index
            if index < len(chunk.encoded.blocks):
                payload = chunk.encoded.blocks[index].data
                fresh = self._fresh_check_block(chunk)
                if fresh is not None:
                    # Rateless repair (Section 4.4): the replacement is a *new*
                    # check block continuing the stream, not a byte-identical
                    # copy of the lost one.
                    chunk.encoded.blocks[index] = fresh
                    payload = fresh.data
                self.storage._block_payloads[(int(new_holder.node_id), block_name)] = payload
                # Surviving replicas still hold the *old* payload under this
                # block name; refresh them so a later fetch from a replica
                # cannot serve stale bytes keyed by the new stream index.
                for replica_id in old_placement.replica_nodes:
                    replica_key = (int(replica_id), block_name)
                    if replica_key in self.storage._block_payloads:
                        self.storage._block_payloads[replica_key] = payload

    def _fresh_check_block(self, chunk: StoredChunk):
        """Mint a brand-new encoded block for a rateless chunk, if possible.

        Returns ``None`` for non-rateless codes (their repair re-places the
        original payload).  For the online code, the surviving blocks are
        decoded and ``generate_additional_blocks`` continues the check-block
        stream -- the cached code-structure layer means this reuses the graph
        the encoder built rather than re-deriving it.
        """
        code = self.storage.codec.code
        if not hasattr(code, "generate_additional_blocks") or chunk.encoded is None:
            return None
        encoded = chunk.encoded
        try:
            data = code.decode(encoded, {b.index: b.data for b in encoded.blocks})
            new_blocks = code.generate_additional_blocks(encoded, data, 1)
        except Exception:  # noqa: BLE001 - fall back to copying the lost payload
            return None
        if not new_blocks:
            return None
        block = new_blocks[0]
        encoded.metadata["output_blocks"] = block.index + 1
        return block

    # ---------------------------------------------------------- re-replicate --
    def apply_rereplication(
        self,
        chunk: StoredChunk,
        placement_index: int,
        block_name: str,
        size: int,
        failed_node: NodeId,
        impact: FailureImpact,
        key: Optional[int] = None,
        digest: Optional[bytes] = None,
        planner: Optional[RepairPlanner] = None,
    ) -> None:
        """Re-create a lost neighbour-replica copy (durability repair).

        The primary placement is untouched; a fresh copy of the *same* block
        is placed near the primary (the same neighbourhood the original
        replication walk used) and swapped into ``placement.replica_nodes``
        for the dead holder, restoring the placement's replication level.
        The copy is read from a surviving holder of the block (one ``size``
        read, not ``required`` decode reads); only when no intact copy is
        left is the replica regenerated from the chunk's other placements.
        """
        old_placement = chunk.placements[placement_index]
        survivors = tuple(
            nid for nid in old_placement.replica_nodes if int(nid) != int(failed_node)
        )
        new_holder = self.place_replica(old_placement, block_name, size, exclude=failed_node)
        if new_holder is None:
            chunk.placements[placement_index] = BlockPlacement(
                block_name=block_name,
                node_id=old_placement.node_id,
                size=size,
                replica_nodes=survivors,
            )
            impact.bytes_dropped += size
            return
        chunk.placements[placement_index] = BlockPlacement(
            block_name=block_name,
            node_id=old_placement.node_id,
            size=size,
            replica_nodes=survivors + (new_holder.node_id,),
        )
        impact.bytes_regenerated += size
        impact.replicas_restored += 1
        if self.transfers is not None:
            source = self._copy_source(
                chunk, placement_index, exclude={int(failed_node), int(new_holder.node_id)}
            )
            if source is not None:
                self._stage(
                    size, source, int(new_holder.node_id), ("copy", chunk, placement_index)
                )
            elif planner is not None:
                for src in planner.regeneration_sources(chunk, placement_index):
                    self._stage(
                        size,
                        int(src.node_id),
                        int(new_holder.node_id),
                        ("regen", chunk, placement_index),
                    )
        ledger = self.storage.ledger
        if ledger is not None and chunk.ledger_index is not None:
            if digest is None:
                digest = naming.key_digest(block_name)
            ledger.replace_replica(
                ledger.placement_for(chunk.ledger_index, placement_index),
                int(failed_node),
                new_holder,
                block_name,
                size,
                digest,
            )
        if self.storage.payload_mode:
            payloads = self.storage._block_payloads
            for holder in (int(old_placement.node_id), *(int(nid) for nid in survivors)):
                payload = payloads.get((holder, block_name))
                if payload is not None:
                    payloads[(int(new_holder.node_id), block_name)] = payload
                    break
            payloads.pop((int(failed_node), block_name), None)

    def place_replica(
        self, placement: BlockPlacement, block_name: str, size: int, exclude: NodeId
    ) -> Optional[OverlayNode]:
        """Pick a live node near the primary for a re-created replica copy.

        Walks the primary's identifier-space neighbourhood -- the same nodes
        the original replication pass considered -- skipping the primary,
        the dead/departing holder and the surviving replicas.
        """
        taken = {int(placement.node_id), int(exclude)}
        taken.update(int(nid) for nid in placement.replica_nodes)
        for candidate in self.dht.neighbors(placement.node_id, 8):
            if int(candidate.node_id) in taken:
                continue
            if candidate.store_block(block_name, size):
                return candidate
        return None

    def _copy_source(self, chunk: StoredChunk, position: int, exclude: set) -> Optional[int]:
        """A live holder of the placement's block a copy can be read from.

        With a topology attached, the least congested holder (outbound path)
        wins; ties -- and the no-topology path -- keep the primary-first
        placement order.
        """
        placement = chunk.placements[position]
        network = self.dht.network
        candidates: List[int] = []
        for node_id in (placement.node_id, *placement.replica_nodes):
            if int(node_id) in exclude:
                continue
            if node_id in network and network.node(node_id).has_block(placement.block_name):
                if self.transfers is None or self.transfers.topology is None:
                    return int(node_id)
                candidates.append(int(node_id))
        if not candidates:
            return None
        # min() keeps the first of tied candidates, so zero congestion
        # everywhere reproduces the placement-order pick exactly.
        return min(candidates, key=self.transfers.source_congestion)

    def place_block(
        self, block_name: str, size: int, exclude: NodeId, key: Optional[int] = None
    ) -> Optional[OverlayNode]:
        """Find a live node to hold a regenerated or migrated block.

        ``key`` lets the ledger path reuse the stored digest instead of
        re-hashing the name; the lookup itself (and its accounting) is the
        same scalar call on both paths.
        """
        target = self.dht.lookup(key if key is not None else naming.key_for_name(block_name))
        if target.node_id != exclude and target.store_block(block_name, size):
            return target
        if not self.relocate_when_full:
            return None
        # Rateless relocation: walk the target's neighbours until one accepts.
        for candidate in self.dht.neighbors(target.node_id, 8):
            if candidate.node_id == exclude:
                continue
            if candidate.store_block(block_name, size):
                return candidate
        return None

    # ------------------------------------------------------------------ meta --
    def restore_object_copy(
        self,
        name: str,
        size: int,
        impact: FailureImpact,
        key: Optional[int] = None,
        digest: Optional[bytes] = None,
    ) -> None:
        target = self.dht.lookup(key if key is not None else naming.key_for_name(name))
        if target.has_block(name):
            # The responsible node already has a replica; nothing to do.
            return
        if target.store_block(name, size):
            impact.cat_copies_restored += 1
            impact.bytes_regenerated += size
            # The restore is read from a surviving CAT replica in the name's
            # neighbourhood, charging that node's uplink; only when no live
            # replica is found does the charge fall back to the receiver's
            # downlink alone.
            self._stage(size, self._meta_source(name, target), int(target.node_id))
            if digest is not None and self.storage.ledger is not None:
                self.storage.ledger.restore_meta_copy(target, name, size, digest)

    def _meta_source(self, name: str, target: OverlayNode) -> Optional[int]:
        """The surviving replica a meta/CAT restore copies its bytes from.

        Congestion-ranked like the block reads: with a topology attached the
        least loaded surviving replica serves the restore.
        """
        if self.transfers is None:
            return None
        candidates: List[int] = []
        for candidate in self.dht.neighbors(target.node_id, 8):
            if candidate.node_id != target.node_id and candidate.has_block(name):
                if self.transfers.topology is None:
                    return int(candidate.node_id)
                candidates.append(int(candidate.node_id))
        if not candidates:
            return None
        return min(candidates, key=self.transfers.source_congestion)

    # ------------------------------------------------------------- migration --
    def migrate_block(
        self,
        chunk: StoredChunk,
        placement_index: int,
        block_name: str,
        size: int,
        leaving: OverlayNode,
        impact: FailureImpact,
        key: Optional[int] = None,
        digest: Optional[bytes] = None,
        tenant: Optional[int] = None,
    ) -> None:
        """Copy one encoded block off a departing node before it leaves.

        Unlike regeneration, migration moves the existing bytes once
        (``size`` bytes over the departing node's uplink) -- no surviving
        blocks are read and no fresh check block is minted.  The placement is
        re-pointed at the node now responsible for the name, exactly where the
        regeneration path would have re-created it.  ``tenant`` charges the
        copy to the row's tenant (``None`` = the executor's own).
        """
        new_holder = self.place_block(block_name, size, exclude=leaving.node_id, key=key)
        if new_holder is None:
            impact.bytes_dropped += size
            return
        old_placement = chunk.placements[placement_index]
        chunk.placements[placement_index] = BlockPlacement(
            block_name=block_name,
            node_id=new_holder.node_id,
            size=size,
            replica_nodes=old_placement.replica_nodes,
        )
        impact.bytes_migrated += size
        self._stage(
            size, int(leaving.node_id), int(new_holder.node_id),
            ("copy", chunk, placement_index), tenant,
        )
        ledger = self.storage.ledger
        if ledger is not None and chunk.ledger_index is not None:
            if digest is None:
                digest = naming.key_digest(block_name)
            ledger.replace_primary(
                ledger.placement_for(chunk.ledger_index, placement_index),
                int(old_placement.node_id),
                new_holder,
                block_name,
                size,
                digest,
            )
        if self.storage.payload_mode:
            payload_key = (int(leaving.node_id), block_name)
            payload = self.storage._block_payloads.pop(payload_key, None)
            if payload is not None:
                self.storage._block_payloads[(int(new_holder.node_id), block_name)] = payload
        leaving.remove_block(block_name)

    def migrate_replica(
        self,
        chunk: StoredChunk,
        placement_index: int,
        block_name: str,
        size: int,
        leaving: OverlayNode,
        impact: FailureImpact,
        key: Optional[int] = None,
        digest: Optional[bytes] = None,
        tenant: Optional[int] = None,
    ) -> None:
        """Copy a neighbour-replica copy off a departing node.

        The migration counterpart of :meth:`apply_rereplication`: the primary
        placement is untouched and the departing holder's slot in
        ``placement.replica_nodes`` is re-pointed at the migrated copy, so a
        graceful departure preserves the placement's replication level
        instead of eroding it (or, worse, re-pointing the primary).
        """
        old_placement = chunk.placements[placement_index]
        survivors = tuple(
            nid for nid in old_placement.replica_nodes if int(nid) != int(leaving.node_id)
        )
        new_holder = self.place_replica(
            old_placement, block_name, size, exclude=leaving.node_id
        )
        if new_holder is None:
            chunk.placements[placement_index] = BlockPlacement(
                block_name=block_name,
                node_id=old_placement.node_id,
                size=size,
                replica_nodes=survivors,
            )
            impact.bytes_dropped += size
            leaving.remove_block(block_name)
            return
        chunk.placements[placement_index] = BlockPlacement(
            block_name=block_name,
            node_id=old_placement.node_id,
            size=size,
            replica_nodes=survivors + (new_holder.node_id,),
        )
        impact.bytes_migrated += size
        impact.replicas_restored += 1
        self._stage(
            size, int(leaving.node_id), int(new_holder.node_id),
            ("copy", chunk, placement_index), tenant,
        )
        ledger = self.storage.ledger
        if ledger is not None and chunk.ledger_index is not None:
            if digest is None:
                digest = naming.key_digest(block_name)
            ledger.replace_replica(
                ledger.placement_for(chunk.ledger_index, placement_index),
                int(leaving.node_id),
                new_holder,
                block_name,
                size,
                digest,
            )
        if self.storage.payload_mode:
            payload = self.storage._block_payloads.pop(
                (int(leaving.node_id), block_name), None
            )
            if payload is not None:
                self.storage._block_payloads[(int(new_holder.node_id), block_name)] = payload
        leaving.remove_block(block_name)

    def migrate_meta(
        self,
        name: str,
        size: int,
        leaving: OverlayNode,
        impact: FailureImpact,
        key: Optional[int] = None,
        digest: Optional[bytes] = None,
        tenant: Optional[int] = None,
    ) -> None:
        """Copy a CAT/metadata object off a departing node.

        Mirrors :meth:`restore_object_copy`'s placement rule (single lookup,
        skip if the responsible node already holds a replica, no relocation
        walk) so migration and post-failure restoration land copies on the
        same nodes.  ``tenant`` tags the restored row explicitly (a shared
        multi-tenant ledger migrates every tenant's copies through one
        executor); ``None`` uses the executor's own store tenant.
        """
        target = self.dht.lookup(key if key is not None else naming.key_for_name(name))
        if not target.has_block(name) and target.store_block(name, size):
            impact.cat_copies_restored += 1
            impact.bytes_migrated += size
            self._stage(size, int(leaving.node_id), int(target.node_id), tenant=tenant)
            ledger = self.storage.ledger
            if digest is not None and ledger is not None:
                if tenant is None:
                    ledger.restore_meta_copy(target, name, size, digest)
                else:
                    base = getattr(ledger, "base", ledger)
                    base.restore_meta_copy(target, name, size, digest, tenant=tenant)
        if self.storage.payload_mode:
            payload = self.storage._block_payloads.pop((int(leaving.node_id), name), None)
            if payload is not None and target.has_block(name):
                self.storage._block_payloads.setdefault((int(target.node_id), name), payload)
        leaving.remove_block(name)

    def migrate_group_row(
        self,
        row: int,
        name: str,
        size: int,
        leaving: OverlayNode,
        impact: FailureImpact,
        ledger: BlockLedger,
        tenant: Optional[int] = None,
    ) -> None:
        """Copy one baseline (PAST/CFS) replica-group row off a departing node.

        The copy goes to the node now responsible for the stored name -- the
        root PAST/CFS would re-insert it at -- falling back to the root's
        identifier-space neighbours when the root cannot take it (it is full,
        or it already holds a fellow replica of the same group, which is the
        common case for PAST's leaf-set replicas); that is the same
        neighbourhood the baselines place their replicas on.  Only when no
        nearby node accepts is the copy dropped with the departure.
        """
        key = ledger.row_key(row)
        target = self.dht.lookup(key)
        placed: Optional[OverlayNode] = None
        if target.node_id != leaving.node_id and target.store_block(name, size):
            placed = target
        else:
            for candidate in self.dht.neighbors(target.node_id, 8):
                if candidate.node_id == leaving.node_id:
                    continue
                if candidate.store_block(name, size):
                    placed = candidate
                    break
        if placed is not None:
            impact.bytes_migrated += size
            self._stage(size, int(leaving.node_id), int(placed.node_id), tenant=tenant)
            ledger.migrate_group_row(row, placed)
        else:
            impact.bytes_dropped += size
        leaving.remove_block(name)


class RecoveryManager:
    """Drives block regeneration after failures and migration before leaves."""

    def __init__(
        self,
        storage: StorageSystem,
        relocate_when_full: bool = True,
        transfers: Optional[TransferScheduler] = None,
        repair_window: Optional[int] = None,
        repair_weight: float = 1.0,
    ) -> None:
        self.storage = storage
        self.dht = storage.dht
        #: Fair-share bandwidth model; ``None`` (the default) keeps every
        #: repair instantaneous -- the preserved seed behaviour.
        self.transfers = transfers
        self.planner = RepairPlanner(storage)
        self.planner.transfers = transfers
        self.executor = RepairExecutor(storage, relocate_when_full, transfers)
        self.executor.planner = self.planner
        self.executor.repair_weight = repair_weight
        # A tenant-scoped store repairs under its own tenant tag; a private
        # (or raw shared) ledger stays untagged -- the untagged QoS oracle.
        if isinstance(storage.ledger, TenantLedgerView):
            self.executor.tenant = storage.ledger.tenant_id
        #: Repair QoS knobs: ``repair_window`` bounds in-flight repair
        #: transfers (overflow queues FIFO -- backpressure, not drops) and
        #: ``repair_weight`` is the repair class's fair-share weight; the
        #: defaults (no window, weight 1.0) are the seed behaviour.
        self.pacer: Optional[TransferPacer] = None
        if transfers is not None and repair_window is not None:
            self.pacer = TransferPacer(
                transfers, max_in_flight=repair_window, weight=repair_weight
            )
            self.executor.pacer = self.pacer
        self.impacts: List[FailureImpact] = []

    @property
    def relocate_when_full(self) -> bool:
        """The paper adopts "drop and create another one at a different
        location" when the neighbour lacks capacity; set False to model the
        alternative (skip regeneration entirely)."""
        return self.executor.relocate_when_full

    @relocate_when_full.setter
    def relocate_when_full(self, value: bool) -> None:
        self.executor.relocate_when_full = value

    # ------------------------------------------------------------------ failure --
    def handle_failure(self, node_id: NodeId) -> FailureImpact:
        """Fail ``node_id`` and regenerate what can be regenerated.

        The node is marked failed in the overlay, removed from the DHT view,
        and every block it stored is examined: blocks whose chunk is still
        decodable are re-created on the node now responsible for their name
        (or elsewhere if that node is full); chunks that are no longer
        decodable are counted as lost data.

        When the storage system runs on the columnar block ledger (the
        ``vectorized=True`` default), the lost blocks come from one mask over
        the ledger's owner column and every decodability check is an O(1)
        counter read; the seed path walks the per-node dict and the chunk
        placements.  Both produce identical impacts, placements and Table 3
        rows (``tests/test_churn_equivalence.py``).
        """
        ledger = self.storage.ledger
        if ledger is not None:
            return self._handle_failure_ledger(node_id, ledger)
        return self._handle_failure_scalar(node_id)

    def _handle_failure_scalar(self, node_id: NodeId) -> FailureImpact:
        """The preserved seed failure path: per-node dict walk end to end."""
        node = self.dht.network.node(node_id)
        lost_blocks = dict(node.stored_blocks)
        impact = FailureImpact(failed_node=node_id)
        impact.blocks_lost = len(lost_blocks)
        impact.bytes_on_failed_node = sum(lost_blocks.values())
        self.executor.begin(impact)

        if node.alive:
            self.dht.network.fail(node_id)
        self.dht.remove(node_id)

        damaged_files: set[str] = set()
        for block_name, size in lost_blocks.items():
            self._recover_block(block_name, size, node_id, impact, damaged_files)
        impact.files_damaged = len(damaged_files)
        self.executor.finish(impact)
        self.impacts.append(impact)
        return impact

    def _handle_failure_ledger(self, node_id: NodeId, ledger: BlockLedger) -> FailureImpact:
        """Ledger-driven failure: columnar block selection, O(1) decodability."""
        node = self.dht.network.node(node_id)
        lost_blocks = dict(node.stored_blocks)
        impact = FailureImpact(failed_node=node_id)
        impact.blocks_lost = len(lost_blocks)
        impact.bytes_on_failed_node = sum(lost_blocks.values())
        self.executor.begin(impact)

        rows = ledger.recovery_rows(node)
        if node.alive:
            self.dht.network.fail(node_id)  # the ledger is notified via its listener
        self.dht.remove(node_id)  # incremental boundary patch, not an O(N) rebuild
        ledger.ensure_digests(rows)

        damaged_files: set[str] = set()
        ledger_names = set()
        for row in rows:
            name = ledger.row_name(row)
            ledger_names.add(name)
            self._apply_step(
                self.planner.classify_row(row, name, ledger, node_id),
                node_id,
                impact,
                damaged_files,
            )
        # Blocks present in the node's dict but not in the ledger (out-of-band
        # stores, copies a repair re-pointed away from) fall back to the seed
        # per-block logic so both paths examine exactly the same names.
        missing = lost_blocks.keys() - ledger_names
        if missing:
            for name, size in lost_blocks.items():
                if name in missing:
                    self._recover_block(name, size, node_id, impact, damaged_files)
        impact.files_damaged = len(damaged_files)
        self.executor.finish(impact)
        self.impacts.append(impact)
        return impact

    # ------------------------------------------------------------- step driver --
    def _apply_step(self, step, failed_node: NodeId, impact, damaged_files: set) -> None:
        """Execute one planner decision for a failed node's lost copy."""
        kind = step[0]
        if kind == "skip":
            return
        if kind == "meta":
            _, name, size, key, digest = step
            self.executor.restore_object_copy(name, size, impact, key=key, digest=digest)
            return
        if kind == "lost":
            _, chunk, file_name = step
            damaged_files.add(file_name)
            if not getattr(chunk, "_counted_lost", False):
                impact.data_bytes_lost += chunk.size
                impact.chunks_lost += 1
                setattr(chunk, "_counted_lost", True)
            return
        _, chunk, position, name, size, key, digest = step
        apply = (
            self.executor.apply_rereplication
            if kind == "rereplicate"
            else self.executor.apply_regeneration
        )
        apply(
            chunk, position, name, size, failed_node, impact,
            key=key, digest=digest, planner=self.planner,
        )

    def _recover_block(
        self,
        block_name: str,
        size: int,
        failed_node: NodeId,
        impact: FailureImpact,
        damaged_files: set,
    ) -> None:
        """Classify and apply one lost copy through the seed scalar path."""
        self._apply_step(
            self.planner.classify_block(block_name, size, failed_node),
            failed_node,
            impact,
            damaged_files,
        )

    # ---------------------------------------------------------------- departure --
    def handle_leave(self, node_id: NodeId) -> FailureImpact:
        """Gracefully migrate a node's blocks out, then remove it.

        The departing node's copies are *moved* (each block crosses the
        network once, charged to the node's uplink) to the nodes that become
        responsible for them -- the same targets the post-failure regeneration
        pipeline would pick -- before :meth:`~repro.overlay.network.
        OverlayNetwork.leave` releases whatever could not be placed.  On a
        multi-tenant ledger the PAST/CFS replica-group rows migrate too.
        When redundancy is intact and capacity suffices, the resulting
        placements are identical to failing the node and regenerating
        (``tests/test_soak.py``'s migration-conserves-bytes oracle).
        """
        node = self.dht.network.node(node_id)
        held = dict(node.stored_blocks)
        impact = FailureImpact(failed_node=node_id)
        impact.blocks_lost = len(held)
        impact.bytes_on_failed_node = sum(held.values())
        self.executor.begin(impact)

        self.dht.remove(node_id)  # lookups now exclude the departing node
        ledger = self.storage.ledger
        if ledger is not None:
            rows = ledger.recovery_rows(node)
            ledger.ensure_digests(rows)
            ledger_names = set()
            for row in rows:
                name = ledger.row_name(row)
                ledger_names.add(name)
                self._apply_migration_row(row, name, node, impact, ledger)
            missing = held.keys() - ledger_names
            if missing:
                for name, size in held.items():
                    if name in missing:
                        self._migrate_block_scalar(name, size, node, impact)
        else:
            for name, size in held.items():
                self._migrate_block_scalar(name, size, node, impact)
        self.executor.finish(impact)
        self.dht.network.leave(node_id)  # releases whatever was not migrated
        self.impacts.append(impact)
        return impact

    def _apply_migration_row(
        self, row: int, name: str, node: OverlayNode, impact: FailureImpact, ledger: BlockLedger
    ) -> None:
        # The transfer tag follows the *row's* tenant (a departure migrates
        # every tenant's copies through one executor); a single-tenant ledger
        # stays untagged so the untagged oracle holds end to end.
        row_tenant = ledger.row_tenant(row) if ledger.multi_tenant else None
        if ledger.row_group(row) >= 0:
            # Baseline replica-group copy (any tenant): representation-free move.
            self.executor.migrate_group_row(
                row, name, int(ledger.row_fields(row)[3]), node, impact, ledger,
                tenant=row_tenant,
            )
            return
        # Chunk and meta rows migrate regardless of tenant: the departure is
        # final (``network.leave`` permanently releases whatever stays behind,
        # and no other tenant's manager can run on a node that already left),
        # and the ledger bookkeeping is tenant-exact either way -- re-pointed
        # placements inherit their file's tenant, and restored meta copies
        # keep the departing row's tag.  The one cross-tenant gap is payload
        # mode: another tenant's block *bytes* live in that tenant's storage
        # and are not relocated here (capacity accounting stays exact).
        file_idx, chunk_idx, placement_idx, size = ledger.row_fields(row)
        key = ledger.row_key(row)
        digest = ledger.row_digest(row)
        if placement_idx < 0:
            self.executor.migrate_meta(
                name, size, node, impact, key=key, digest=digest,
                tenant=ledger.row_tenant(row) if ledger.multi_tenant else None,
            )
            return
        chunk = ledger.chunk_object(chunk_idx)
        position = ledger.placement_position(placement_idx)
        migrate = (
            self.executor.migrate_block
            if int(chunk.placements[position].node_id) == int(node.node_id)
            else self.executor.migrate_replica
        )
        migrate(
            chunk, position, name, size, node, impact, key=key, digest=digest,
            tenant=row_tenant,
        )

    def _migrate_block_scalar(
        self, block_name: str, size: int, node: OverlayNode, impact: FailureImpact
    ) -> None:
        """Seed-path migration of one copy (mirrors the scalar failure walk)."""
        parsed = naming.parse_block_name(block_name)
        if parsed is None:
            self.executor.migrate_meta(block_name, size, node, impact)
            return
        stored = self.storage.files.get(parsed.filename)
        if stored is None:
            return
        chunk = self.planner._find_chunk(stored, parsed.chunk_no)
        if chunk is None:
            return
        placement_index = self.planner._find_placement(chunk, block_name)
        if placement_index is None:
            return
        migrate = (
            self.executor.migrate_block
            if int(chunk.placements[placement_index].node_id) == int(node.node_id)
            else self.executor.migrate_replica
        )
        migrate(chunk, placement_index, block_name, size, node, impact)

    # ---------------------------------------------------------------- CAT rebuild --
    def rebuild_cat(self, filename: str, probe_limit: Optional[int] = None) -> ChunkAllocationTable:
        """Reconstruct a file's CAT by probing chunk names one by one.

        Section 4.4: chunk sizes are discovered incrementally; a missing chunk
        either means a zero-sized chunk or the end of the file, and because
        consecutive zero-sized chunks are bounded, probing one past the limit
        pins down the true end of the file.
        """
        stored = self.storage.files.get(filename)
        if stored is None:
            raise KeyError(f"unknown file: {filename!r}")
        limit = (
            probe_limit
            if probe_limit is not None
            else self.storage.policy.max_consecutive_zero_chunks + 1
        )
        sizes: List[int] = []
        missing_run = 0
        chunk_no = 1
        chunk_by_no = {chunk.chunk_no: chunk for chunk in stored.chunks}
        while missing_run < limit:
            chunk = chunk_by_no.get(chunk_no)
            if chunk is None or chunk.is_empty or not chunk.placements:
                sizes.append(0)
                missing_run += 1
            else:
                sizes.append(chunk.size)
                missing_run = 0
            chunk_no += 1
        # Trim the trailing zero probes that only served to detect the end.
        while sizes and sizes[-1] == 0:
            sizes.pop()
        return ChunkAllocationTable.from_chunk_sizes(filename, sizes)

    # ---------------------------------------------------------------- summaries --
    def totals(self) -> Dict[str, float]:
        """Aggregated accounting across all handled failures (Table 3 totals)."""
        if not self.impacts:
            return {
                "failures": 0.0,
                "total_regenerated_bytes": 0.0,
                "total_data_lost_bytes": 0.0,
                "total_migrated_bytes": 0.0,
                "mean_regenerated_per_failure": 0.0,
                "std_regenerated_per_failure": 0.0,
            }
        import numpy as np

        regenerated = np.asarray([impact.bytes_regenerated for impact in self.impacts], dtype=float)
        lost = float(sum(impact.data_bytes_lost for impact in self.impacts))
        migrated = float(sum(impact.bytes_migrated for impact in self.impacts))
        return {
            "failures": float(len(self.impacts)),
            "total_regenerated_bytes": float(regenerated.sum()),
            "total_data_lost_bytes": lost,
            "total_migrated_bytes": migrated,
            "mean_regenerated_per_failure": float(regenerated.mean()),
            "std_regenerated_per_failure": float(regenerated.std()),
        }

    def repair_times(self) -> List[float]:
        """Time-to-repair of every impact whose transfers have drained."""
        return [
            impact.time_to_repair
            for impact in self.impacts
            if impact.time_to_repair is not None
        ]
