"""The ``getCapacity`` probing protocol (Section 4.3).

Before a chunk is created, the system computes the names of the encoded
blocks that *would* belong to it, routes a ``getCapacity`` message to the node
responsible for each name, and collects the maximum block size every node is
willing to accept.  The space is only reported, never reserved, so the actual
store may still fail -- the storage system treats that case as a zero-sized
chunk exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core import naming
from repro.overlay.dht import DHTView
from repro.overlay.node import OverlayNode


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of probing the prospective block holders of one chunk."""

    block_names: tuple[str, ...]
    nodes: tuple[OverlayNode, ...]
    offers: tuple[int, ...]
    lookups: int

    @property
    def usable_block_size(self) -> int:
        """The block size every probed node can accommodate (the minimum offer).

        The paper says "we determine the maximum block size that the remote
        nodes can store"; since every encoded block of a chunk has the same
        size, the largest size *all* of them can store is the minimum of the
        individual offers.
        """
        return min(self.offers) if self.offers else 0

    @property
    def max_offer(self) -> int:
        """The single largest offer received (useful for diagnostics/ablations)."""
        return max(self.offers) if self.offers else 0


class CapacityProbe:
    """Issues getCapacity probes through a DHT view."""

    def __init__(self, dht: DHTView, capacity_report_fraction: float = 1.0) -> None:
        if not 0.0 < capacity_report_fraction <= 1.0:
            raise ValueError("capacity_report_fraction must be in (0, 1]")
        self.dht = dht
        self.capacity_report_fraction = capacity_report_fraction
        self.total_probes = 0

    def offer_from(self, node: OverlayNode) -> int:
        """The capacity ``node`` offers for one block, applying the report policy.

        The system-wide policy fraction composes with the node's own
        ``capacity_report_fraction`` (a node may be individually configured to
        under-report, see :class:`repro.overlay.node.OverlayNode`).
        """
        return int(node.report_capacity() * self.capacity_report_fraction)

    def probe_chunk(self, filename: str, chunk_no: int, encoded_blocks: int) -> ProbeResult:
        """Probe the prospective holders of chunk ``chunk_no``'s encoded blocks."""
        if encoded_blocks < 1:
            raise ValueError("encoded_blocks must be >= 1")
        names: List[str] = [
            naming.block_name(filename, chunk_no, ecb) for ecb in range(1, encoded_blocks + 1)
        ]
        nodes: List[OverlayNode] = []
        offers: List[int] = []
        for name in names:
            node = self.dht.lookup(naming.key_for_name(name))
            nodes.append(node)
            offers.append(self.offer_from(node))
        self.total_probes += len(names)
        return ProbeResult(
            block_names=tuple(names),
            nodes=tuple(nodes),
            offers=tuple(offers),
            lookups=len(names),
        )

    def probe_chunk_fast(self, filename: str, chunk_no: int, encoded_blocks: int) -> ProbeResult:
        """Array-engine variant of :meth:`probe_chunk`: identical result, batched.

        All block names of the chunk are hashed at once and resolved through
        the ``searchsorted`` kernel; lookup accounting matches the scalar path
        exactly (one lookup per probed block).
        """
        if encoded_blocks < 1:
            raise ValueError("encoded_blocks must be >= 1")
        state = self.dht.state
        if encoded_blocks == 1:
            # The dominant configuration of the insertion experiments (one
            # encoded block per chunk): skip all intermediate containers.
            name = naming.block_name(filename, chunk_no, 1)
            node = state.lookup_node(naming.key_int_for_name(name))
            self.dht.lookup_count += 1
            self.total_probes += 1
            return ProbeResult(
                block_names=(name,), nodes=(node,), offers=(self.offer_from(node),), lookups=1
            )
        names = naming.block_names(filename, chunk_no, encoded_blocks)
        if encoded_blocks >= 4:
            indices = state.lookup_digests(naming.name_digests(names)).tolist()
        else:
            indices = [state.lookup_index(naming.key_int_for_name(name)) for name in names]
        self.dht.lookup_count += len(names)
        state_nodes = state.nodes
        offer_from = self.offer_from
        nodes = tuple(state_nodes[index] for index in indices)
        offers = tuple(offer_from(node) for node in nodes)
        self.total_probes += len(names)
        return ProbeResult(
            block_names=tuple(names),
            nodes=nodes,
            offers=offers,
            lookups=len(names),
        )

    def probe_names(self, names: Sequence[str]) -> ProbeResult:
        """Probe the responsible nodes for an explicit list of object names."""
        nodes: List[OverlayNode] = []
        offers: List[int] = []
        for name in names:
            node = self.dht.lookup(naming.key_for_name(name))
            nodes.append(node)
            offers.append(self.offer_from(node))
        self.total_probes += len(names)
        return ProbeResult(
            block_names=tuple(names),
            nodes=tuple(nodes),
            offers=tuple(offers),
            lookups=len(names),
        )
