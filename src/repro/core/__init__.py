"""The paper's primary contribution: contributory storage with variable-size striping.

The storage system (Section 4 of the paper) splits each file into chunks whose
sizes are negotiated with the nodes that will store them (``getCapacity``
probes over the DHT), erasure-codes every chunk into ``m`` encoded blocks that
are placed on DHT-selected nodes, records the chunk layout in a Chunk
Allocation Table (CAT) that is itself stored and replicated in the DHT, and
regenerates lost blocks when participants fail.

Public entry points:

* :class:`~repro.core.storage.StorageSystem` -- store / retrieve files and
  byte ranges, availability queries, utilisation statistics;
* :class:`~repro.core.policies.StoragePolicy` -- all tunables (zero-chunk
  retry limit, replication factors, capacity-report fraction, ...);
* :class:`~repro.core.recovery.RecoveryManager` -- failure handling, block
  regeneration and graceful-departure migration (planner/executor split);
* :class:`~repro.core.transfer.TransferScheduler` -- the deterministic
  fair-share bandwidth model repairs charge their data movements to;
* :mod:`~repro.core.naming` -- the ``filename_chunk_ECB`` naming convention.
"""

from repro.core.naming import block_name, cat_name, chunk_name, parse_block_name, parse_chunk_name
from repro.core.block_ledger import BlockLedger, TenantLedgerView
from repro.core.transfer import Transfer, TransferScheduler
from repro.core.cat import CatEntry, ChunkAllocationTable
from repro.core.policies import StoragePolicy
from repro.core.capacity import CapacityProbe, ProbeResult
from repro.core.chunker import ChunkPlan, Chunker
from repro.core.storage import (
    BlockPlacement,
    RetrieveResult,
    StorageSystem,
    StoredChunk,
    StoredFile,
    StoreResult,
)
from repro.core.recovery import FailureImpact, RecoveryManager

__all__ = [
    "block_name",
    "BlockLedger",
    "TenantLedgerView",
    "Transfer",
    "TransferScheduler",
    "cat_name",
    "chunk_name",
    "parse_block_name",
    "parse_chunk_name",
    "CatEntry",
    "ChunkAllocationTable",
    "StoragePolicy",
    "CapacityProbe",
    "ProbeResult",
    "ChunkPlan",
    "Chunker",
    "BlockPlacement",
    "RetrieveResult",
    "StorageSystem",
    "StoredChunk",
    "StoredFile",
    "StoreResult",
    "FailureImpact",
    "RecoveryManager",
]
