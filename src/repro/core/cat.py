"""The Chunk Allocation Table (CAT).

Because chunk sizes vary, there is no closed-form mapping from a file offset
to the chunk holding it.  The CAT (Section 4.2, Figure 3) records, per chunk,
the byte range of the file it contains as ``(min_offset, max_offset)`` pairs;
zero-sized chunks appear as empty ranges.  The CAT is created when a file is
stored, stored in the DHT under ``filename.CAT`` and replicated on neighbour
nodes; it can also be reconstructed by probing chunk names one by one
(Section 4.4), which :meth:`repro.core.recovery.RecoveryManager.rebuild_cat`
implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence


@dataclass(frozen=True)
class CatEntry:
    """One CAT row: chunk number (1-based) and the half-open byte range [start, end)."""

    chunk_no: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.chunk_no < 1:
            raise ValueError("chunk numbers are 1-based")
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid chunk range [{self.start}, {self.end})")

    @property
    def size(self) -> int:
        """Number of file bytes held by the chunk (zero for empty chunks)."""
        return self.end - self.start

    @property
    def is_empty(self) -> bool:
        """Whether this is a zero-sized (retry placeholder) chunk."""
        return self.size == 0


class ChunkAllocationTable:
    """Ordered list of :class:`CatEntry` rows for one file."""

    def __init__(self, filename: str, entries: Sequence[CatEntry] = ()) -> None:
        self.filename = filename
        self._entries: List[CatEntry] = list(entries)
        self._validate()

    def _validate(self) -> None:
        expected_start = 0
        expected_no = 1
        for entry in self._entries:
            if entry.chunk_no != expected_no:
                raise ValueError(
                    f"CAT for {self.filename!r}: expected chunk {expected_no}, got {entry.chunk_no}"
                )
            if entry.start != expected_start:
                raise ValueError(
                    f"CAT for {self.filename!r}: chunk {entry.chunk_no} starts at {entry.start}, "
                    f"expected {expected_start}"
                )
            expected_start = entry.end
            expected_no += 1

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_chunk_sizes(cls, filename: str, sizes: Sequence[int]) -> "ChunkAllocationTable":
        """Build a CAT from the ordered list of chunk sizes (zero sizes allowed)."""
        entries: List[CatEntry] = []
        offset = 0
        for index, size in enumerate(sizes, start=1):
            if size < 0:
                raise ValueError("chunk sizes must be non-negative")
            entries.append(CatEntry(chunk_no=index, start=offset, end=offset + int(size)))
            offset += int(size)
        return cls(filename, entries)

    # -- container protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CatEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> CatEntry:
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChunkAllocationTable):
            return NotImplemented
        return self.filename == other.filename and self._entries == other._entries

    # -- queries --------------------------------------------------------------------
    @property
    def file_size(self) -> int:
        """Total file size recorded by the CAT."""
        return self._entries[-1].end if self._entries else 0

    @property
    def chunk_count(self) -> int:
        """Number of chunks, including zero-sized ones."""
        return len(self._entries)

    def non_empty_entries(self) -> List[CatEntry]:
        """Entries for chunks that actually hold data."""
        return [entry for entry in self._entries if not entry.is_empty]

    def chunk_for_offset(self, offset: int) -> CatEntry:
        """The chunk containing byte ``offset`` of the file."""
        if not 0 <= offset < self.file_size:
            raise IndexError(f"offset {offset} outside file of size {self.file_size}")
        for entry in self._entries:
            if entry.start <= offset < entry.end:
                return entry
        raise IndexError(f"offset {offset} not covered by any chunk")  # pragma: no cover

    def chunks_for_range(self, offset: int, length: int) -> List[CatEntry]:
        """All chunks overlapping the byte range ``[offset, offset + length)``.

        This is the lookup the paper performs to serve partial-file reads:
        "only the chunk(s) containing that portion are retrieved".
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        if length == 0:
            return []
        end = offset + length
        if offset < 0 or end > self.file_size:
            raise IndexError(
                f"range [{offset}, {end}) outside file of size {self.file_size}"
            )
        return [entry for entry in self._entries if entry.end > offset and entry.start < end]

    # -- serialisation -----------------------------------------------------------------
    def serialize(self) -> str:
        """Render the CAT in the paper's one-line-per-chunk textual format (Figure 3)."""
        lines = [f"({entry.chunk_no}) {entry.start},{entry.end}" for entry in self._entries]
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def deserialize(cls, filename: str, text: str) -> "ChunkAllocationTable":
        """Parse the textual format produced by :meth:`serialize`."""
        entries: List[CatEntry] = []
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line:
                continue
            try:
                label, ranges = line.split(")", 1)
                chunk_no = int(label.lstrip("("))
                start_text, end_text = ranges.strip().split(",")
                entries.append(CatEntry(chunk_no=chunk_no, start=int(start_text), end=int(end_text)))
            except (ValueError, IndexError) as error:
                raise ValueError(f"malformed CAT line: {raw_line!r}") from error
        return cls(filename, entries)

    @property
    def serialized_size(self) -> int:
        """Bytes the serialised CAT occupies (used when storing it in the DHT)."""
        return len(self.serialize().encode("utf-8"))

    def chunk_sizes(self) -> List[int]:
        """Ordered chunk sizes (including zeros)."""
        return [entry.size for entry in self._entries]
