"""Tunable policies of the storage system.

Every knob the paper mentions is collected here so that experiments and
ablation benchmarks can vary them in one place:

* the limit on consecutive zero-sized chunks before a store fails
  (Section 4.3; set to 5 in the simulations);
* the fraction of free capacity a node reports per ``getCapacity`` probe
  (Section 4.3 suggests under-reporting to serve concurrent stores);
* the replication factor applied to CAT objects and, optionally, to encoded
  blocks (Section 4.4 / 4.4.1);
* optional lower/upper bounds on chunk sizes (the trade-off discussed in
  Section 4.5);
* what happens to already-placed blocks when a store ultimately fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class StoragePolicy:
    """Configuration of :class:`repro.core.storage.StorageSystem`."""

    #: Maximum number of consecutive zero-sized chunks tolerated before the
    #: store of a file is declared failed (paper: 5).
    max_consecutive_zero_chunks: int = 5

    #: Fraction of its free space a node offers per getCapacity reply.
    capacity_report_fraction: float = 1.0

    #: Number of copies kept of each CAT object (primary + neighbours).
    cat_replication: int = 2

    #: Number of copies kept of each encoded block (1 = primary only).  The
    #: large-scale insertion experiments use 1, matching the paper.
    block_replication: int = 1

    #: Optional floor on non-zero chunk sizes (bytes); probes offering less
    #: are treated as zero-capacity (Section 4.5 trade-off).
    min_chunk_size: Optional[int] = None

    #: Optional ceiling on chunk sizes (bytes); None means "whatever the
    #: probed nodes offer" as in the paper's simulations.
    max_chunk_size: Optional[int] = None

    #: Whether blocks already placed for a file are released when its store
    #: ultimately fails.  The paper does not specify; releasing them keeps the
    #: capacity accounting conservative and is the default.
    rollback_on_failure: bool = True

    #: Number of salted retries when storing the CAT object itself fails
    #: because its responsible node is out of space.
    cat_store_retries: int = 3

    def __post_init__(self) -> None:
        if self.max_consecutive_zero_chunks < 0:
            raise ValueError("max_consecutive_zero_chunks must be non-negative")
        if not 0.0 < self.capacity_report_fraction <= 1.0:
            raise ValueError("capacity_report_fraction must be in (0, 1]")
        if self.cat_replication < 1:
            raise ValueError("cat_replication must be >= 1")
        if self.block_replication < 1:
            raise ValueError("block_replication must be >= 1")
        if self.min_chunk_size is not None and self.min_chunk_size < 0:
            raise ValueError("min_chunk_size must be non-negative")
        if self.max_chunk_size is not None and self.max_chunk_size <= 0:
            raise ValueError("max_chunk_size must be positive")
        if (
            self.min_chunk_size is not None
            and self.max_chunk_size is not None
            and self.min_chunk_size > self.max_chunk_size
        ):
            raise ValueError("min_chunk_size cannot exceed max_chunk_size")
        if self.cat_store_retries < 0:
            raise ValueError("cat_store_retries must be non-negative")


#: The configuration used by the paper's large-scale simulations (Section 6.1).
PAPER_SIMULATION_POLICY = StoragePolicy(
    max_consecutive_zero_chunks=5,
    capacity_report_fraction=1.0,
    cat_replication=2,
    block_replication=1,
)
