"""Per-node LRU block caches for the serve path.

A production archive is read-dominated, and Zipf-skewed popularity means the
same hot files are fetched over and over by the same front-end gateways.
:class:`CacheManager` gives every *client* node (the flat id the retrieve
traffic terminates at) its own byte-budgeted LRU of encoded-block names:

* a **hit** -- every block the decode needs is resident in the client's
  cache -- skips the transfer charge entirely (the read never touches the
  fabric);
* a **miss** charges the fabric as before and then fills the client's cache
  with the fetched block names, evicting least-recently-used entries to
  stay under the per-node byte budget.

The cache is a *performance* layer, not a durability layer: capacity-mode
reads consult it only for chunks that are still recoverable from the
network, so cache-off behaviour is bit-identical to the pre-cache serve
path (the oracle ``tests/test_serving.py`` pins).

The manager also carries the serve-path source accounting: when a miss picks
the least-loaded live holder of a chunk's first placement, the choice is
recorded as a primary or replica read, which is where the hot-file
replication pay-off (``multicast/replication.py``) becomes visible.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class NodeBlockCache:
    """One client node's LRU over encoded-block names (byte budget)."""

    __slots__ = ("capacity", "used", "evictions", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self.used = 0
        self.evictions = 0
        #: block name -> size, ordered least- to most-recently used.
        self._entries: "OrderedDict[str, int]" = OrderedDict()

    def __contains__(self, block_name: str) -> bool:
        return block_name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def has_all(self, block_names: Iterable[str]) -> bool:
        """Whether every named block is resident (no LRU touch)."""
        return all(name in self._entries for name in block_names)

    def touch(self, block_names: Iterable[str]) -> None:
        """Mark the named blocks most-recently used."""
        for name in block_names:
            if name in self._entries:
                self._entries.move_to_end(name)

    def admit(self, block_name: str, size: int) -> List[str]:
        """Insert one block, evicting LRU entries to fit; returns evictions.

        A block larger than the whole budget is never admitted (the return
        value is empty and the cache is unchanged).
        """
        size = int(size)
        if size > self.capacity:
            return []
        previous = self._entries.pop(block_name, None)
        if previous is not None:
            self.used -= previous
        evicted: List[str] = []
        while self.used + size > self.capacity and self._entries:
            victim, victim_size = self._entries.popitem(last=False)
            self.used -= victim_size
            self.evictions += 1
            evicted.append(victim)
        self._entries[block_name] = size
        self.used += size
        return evicted


class CacheManager:
    """Per-client-node block caches plus the serve-path hit/source accounting.

    ``capacity_bytes`` is the byte budget of *each* client cache (gateways
    are a small population, so the aggregate footprint stays modest).
    ``hit_latency_s`` is the simulated latency a fully-cached read costs in
    place of its transfer completions (0 by default: a local-memory hit).
    """

    def __init__(self, capacity_bytes: int, hit_latency_s: float = 0.0) -> None:
        if capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.hit_latency_s = float(hit_latency_s)
        self._caches: Dict[int, NodeBlockCache] = {}
        #: Payload-mode block contents: (client id, block name) -> bytes.
        self._payloads: Dict[Tuple[int, str], bytes] = {}
        # Chunk-granular accounting (capacity-mode reads).
        self.chunk_hits = 0
        self.chunk_misses = 0
        # Block-granular accounting (payload-mode fetches).
        self.block_hits = 0
        self.block_misses = 0
        self.bytes_filled = 0
        self.bytes_served = 0
        # Miss-path source selection: which holder served the network read.
        self.primary_reads = 0
        self.replica_reads = 0

    # -- per-node caches ------------------------------------------------------
    def node_cache(self, client: int) -> NodeBlockCache:
        """The (lazily created) cache of one client node."""
        cache = self._caches.get(client)
        if cache is None:
            cache = NodeBlockCache(self.capacity_bytes)
            self._caches[client] = cache
        return cache

    # -- capacity mode: chunk-granular lookups --------------------------------
    def lookup_chunk(self, client: int, block_names: Sequence[str],
                     size: int = 0) -> bool:
        """Whether a decode needing ``block_names`` is fully cached at ``client``.

        Counts one chunk hit or miss; a hit also refreshes LRU recency and
        accounts ``size`` bytes served from cache.
        """
        cache = self._caches.get(client)
        if cache is not None and block_names and cache.has_all(block_names):
            cache.touch(block_names)
            self.chunk_hits += 1
            self.bytes_served += int(size)
            return True
        self.chunk_misses += 1
        return False

    def fill_chunk(self, client: int, entries: Sequence[Tuple[str, int]]) -> None:
        """Admit the fetched blocks of one chunk into ``client``'s cache."""
        cache = self.node_cache(client)
        for name, size in entries:
            for victim in cache.admit(name, size):
                self._payloads.pop((client, victim), None)
            self.bytes_filled += int(size)

    # -- payload mode: block-granular lookups ---------------------------------
    def lookup_block(self, client: int, block_name: str) -> Optional[bytes]:
        """The cached payload of one block at ``client`` (None on miss)."""
        cache = self._caches.get(client)
        if cache is not None and block_name in cache:
            payload = self._payloads.get((client, block_name))
            if payload is not None:
                cache.touch([block_name])
                self.block_hits += 1
                self.bytes_served += len(payload)
                return payload
        self.block_misses += 1
        return None

    def fill_block(self, client: int, block_name: str, size: int,
                   payload: bytes) -> None:
        """Admit one fetched block payload into ``client``'s cache."""
        cache = self.node_cache(client)
        evicted = cache.admit(block_name, size)
        if block_name in cache:
            self._payloads[(client, block_name)] = payload
            self.bytes_filled += int(size)
        for victim in evicted:
            self._payloads.pop((client, victim), None)

    # -- source accounting ----------------------------------------------------
    def note_source(self, primary: bool) -> None:
        """Record which holder class served a miss (primary vs replica)."""
        if primary:
            self.primary_reads += 1
        else:
            self.replica_reads += 1

    # -- aggregates -----------------------------------------------------------
    @property
    def evictions(self) -> int:
        """Total LRU evictions across every client cache."""
        return sum(cache.evictions for cache in self._caches.values())

    def hit_ratio(self) -> float:
        """Fraction of chunk+block lookups served from cache."""
        hits = self.chunk_hits + self.block_hits
        total = hits + self.chunk_misses + self.block_misses
        return hits / total if total else 0.0

    def replica_read_ratio(self) -> float:
        """Fraction of miss-path network reads served by a replica holder."""
        total = self.primary_reads + self.replica_reads
        return self.replica_reads / total if total else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat accounting snapshot (benchmark rows, scenario tables)."""
        return {
            "cache_clients": float(len(self._caches)),
            "cache_hits": float(self.chunk_hits + self.block_hits),
            "cache_misses": float(self.chunk_misses + self.block_misses),
            "cache_hit_pct": 100.0 * self.hit_ratio(),
            "cache_evictions": float(self.evictions),
            "cache_filled_mb": self.bytes_filled / float(1 << 20),
            "cache_served_mb": self.bytes_served / float(1 << 20),
            "replica_reads": float(self.replica_reads),
            "primary_reads": float(self.primary_reads),
            "replica_read_pct": 100.0 * self.replica_read_ratio(),
        }
