"""The contributory storage system (the paper's primary contribution).

:class:`StorageSystem` implements the store/retrieve pipeline of Section 4:

1. a file is split into variable-sized chunks, each sized by ``getCapacity``
   probes to the nodes that will hold its encoded blocks;
2. every chunk is erasure coded into ``m`` encoded blocks named
   ``filename_chunk_ECB`` and placed on the DHT node responsible for each name
   (plus optional neighbour replicas);
3. the chunk layout is recorded in a Chunk Allocation Table stored under
   ``filename.CAT`` and replicated on neighbouring nodes;
4. retrieval fetches the CAT, determines the needed chunks (whole file or a
   byte range), gathers enough encoded blocks per chunk and decodes them.

The class operates in two modes:

* **capacity mode** (default) tracks only sizes and placements -- this is what
  the large-scale insertion/availability/churn experiments use, mirroring the
  paper's own simulations;
* **payload mode** (``payload_mode=True``) moves real bytes through the real
  erasure coders, so store → fail nodes → retrieve round-trips are genuine
  end-to-end tests of the data path.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import naming
from repro.core.block_ledger import BlockLedger, TenantLedgerView
from repro.core.capacity import CapacityProbe, ProbeResult
from repro.core.cat import CatEntry, ChunkAllocationTable
from repro.core.chunker import Chunker
from repro.core.policies import StoragePolicy
from repro.erasure.base import EncodedChunk
from repro.erasure.chunk_codec import ChunkCodec
from repro.erasure.null_code import NullCode
from repro.overlay.dht import DHTView
from repro.overlay.ids import NodeId
from repro.overlay.node import NeighborBlockRecord, OverlayNode

#: Sentinel distinguishing "keyword not passed" from an explicit ``None``
#: (``client=None`` legitimately means "an external client outside the
#: overlay"), so per-call overrides can layer over :meth:`attach_transfers`.
_UNSET = object()


@dataclass(frozen=True)
class BlockPlacement:
    """Where one encoded block (and its optional replicas) lives."""

    block_name: str
    node_id: NodeId
    size: int
    replica_nodes: Tuple[NodeId, ...] = ()

    @property
    def copies(self) -> int:
        """Total copies of the block (primary plus replicas)."""
        return 1 + len(self.replica_nodes)


@dataclass
class StoredChunk:
    """Book-keeping for one stored chunk."""

    chunk_no: int
    start: int
    size: int
    placements: List[BlockPlacement] = field(default_factory=list)
    #: Present only in payload mode: the encoder output (needed to decode).
    encoded: Optional[EncodedChunk] = None
    #: Index of this chunk in the columnar block ledger (vectorized path only).
    ledger_index: Optional[int] = None

    @property
    def is_empty(self) -> bool:
        """Whether this is a zero-sized placeholder chunk."""
        return self.size == 0


@dataclass
class StoredFile:
    """Book-keeping for one stored file."""

    name: str
    size: int
    cat: ChunkAllocationTable
    chunks: List[StoredChunk]
    cat_placements: List[BlockPlacement] = field(default_factory=list)
    #: Index of this file in the columnar block ledger (vectorized path only).
    ledger_index: Optional[int] = None

    def data_chunks(self) -> List[StoredChunk]:
        """Chunks that actually hold data (non zero-sized)."""
        return [chunk for chunk in self.chunks if not chunk.is_empty]


@dataclass(frozen=True)
class StoreResult:
    """Outcome of one file store."""

    filename: str
    requested_size: int
    success: bool
    stored_bytes: int
    chunk_count: int
    data_chunk_count: int
    lookups: int
    failure_reason: Optional[str] = None


@dataclass(frozen=True)
class RetrieveResult:
    """Outcome of one retrieval (whole file or byte range)."""

    filename: str
    complete: bool
    bytes_available: int
    chunks_needed: int
    chunks_recovered: int
    blocks_fetched: int
    lookups: int
    data: Optional[bytes] = None
    failure_reason: Optional[str] = None
    #: Chunks decoded from a strict k-of-n subset of their blocks (some
    #: copies were unreachable, but at least ``required`` survived).
    chunks_degraded: int = 0
    #: Chunks served entirely from the requesting client's block cache
    #: (no transfer charged, no holder touched).
    chunks_cached: int = 0

    @property
    def degraded(self) -> bool:
        """A successful read that had to decode around missing blocks."""
        return self.complete and self.chunks_degraded > 0


def _resolve_ledger(dht: DHTView, vectorized: bool, ledger, tenant: Optional[str]):
    """Resolve a store's ledger handle: private, shared, or tenant-scoped.

    ``None``/``tenant=None`` on the vectorized path keeps today's behaviour
    (a private untagged :class:`BlockLedger`); a ``tenant`` name wraps the
    (possibly shared) ledger in a :class:`~repro.core.block_ledger.
    TenantLedgerView` so files and rows are tagged and name-scoped per
    tenant.  A raw shared ledger without a tenant keeps the single shared
    namespace (duplicate names across stores are rejected).
    """
    if not vectorized:
        return None
    if ledger is None:
        ledger = BlockLedger(dht.network)
    if tenant is None:
        return ledger
    return ledger.tenant(tenant) if isinstance(ledger, BlockLedger) else ledger


class StorageSystem:
    """The striped, erasure-coded contributory storage system."""

    def __init__(
        self,
        dht: DHTView,
        codec: Optional[ChunkCodec] = None,
        policy: Optional[StoragePolicy] = None,
        payload_mode: bool = False,
        track_neighbor_ledgers: bool = False,
        vectorized: bool = True,
        ledger: Optional[BlockLedger] = None,
        tenant: Optional[str] = None,
    ) -> None:
        self.dht = dht
        self.codec = codec or ChunkCodec(NullCode(), blocks_per_chunk=1)
        self.policy = policy or StoragePolicy()
        self.payload_mode = payload_mode
        self.track_neighbor_ledgers = track_neighbor_ledgers
        #: When True (the default) capacity probes and name lookups run on the
        #: array-backed placement engine (batched SHA-1 + ``searchsorted``
        #: kernels); when False, the preserved seed scalar path is used.  Both
        #: produce byte-identical placements, results and lookup counts -- the
        #: equivalence is asserted by ``tests/test_placement_equivalence.py``.
        self.vectorized = vectorized
        #: Columnar system-wide block bookkeeping (vectorized path only): one
        #: ledger row per stored copy, incrementally-maintained chunk
        #: decodability and O(1) usage/availability aggregates.  The seed path
        #: keeps the per-node dict walks; ``tests/test_churn_equivalence.py``
        #: asserts both produce identical availability curves and churn rows.
        #: Pass ``ledger`` to share one multi-tenant ledger with other stores
        #: on the same overlay and ``tenant`` to scope this store's file
        #: namespace and aggregates (a private untagged ledger otherwise).
        self.ledger = _resolve_ledger(dht, vectorized, ledger, tenant)
        #: A private ledger's namespace is exactly ``self.files``; only a
        #: shared ledger needs the pre-flight name check before placing.
        self._ledger_shared = ledger is not None and self.ledger is not None
        #: Optional transfer fabric for charging data movement (see
        #: :meth:`attach_transfers`).  ``None`` (the default) keeps stores and
        #: retrieves instantaneous, exactly as before.
        self.transfers = None
        self._transfer_client: Optional[int] = None
        self._transfer_observer = None
        #: Per-call overrides (one store/retrieve) layered over the attached
        #: defaults -- see :meth:`_request_context`.
        self._call_client = _UNSET
        self._call_observer = _UNSET
        #: Optional per-client-node block cache (see :meth:`attach_cache`).
        self.cache = None
        #: Per-holder read traffic (bytes served) accumulated by capacity-mode
        #: chunk reads -- the serve path's load-balance histogram source.
        self.read_load: Dict[int, float] = {}
        self.probe = CapacityProbe(dht, self.policy.capacity_report_fraction)
        self._probe_chunk = self.probe.probe_chunk_fast if vectorized else self.probe.probe_chunk
        self.chunker = Chunker(self.probe, self.codec, self.policy)
        self.files: Dict[str, StoredFile] = {}
        #: Payload-mode block contents: (node id value, block name) -> bytes.
        self._block_payloads: Dict[Tuple[int, str], bytes] = {}
        self.total_lookups = 0
        self.store_attempts = 0
        self.store_failures = 0
        self.failed_bytes = 0
        #: Reads that succeeded by decoding around missing blocks (k-of-n).
        self.degraded_reads = 0
        #: Reads that could not recover every requested chunk.
        self.failed_reads = 0

    @property
    def store_tenant(self) -> Optional[int]:
        """The tenant this store moves bytes for (``None`` when untagged).

        Derived from the ledger handle: a store built on a
        :class:`~repro.core.block_ledger.TenantLedgerView` charges every
        transfer it submits to that tenant; a private or raw shared ledger
        leaves transfers untagged, preserving the single-tenant scheduler
        oracle bit-for-bit.
        """
        if isinstance(self.ledger, TenantLedgerView):
            return self.ledger.tenant_id
        return None

    def attach_transfers(self, scheduler, client: Optional[int] = None,
                         observer=None) -> None:
        """Charge this store's data movement to a transfer scheduler.

        Once attached, every placed copy (block, replica, CAT copy) and every
        capacity-mode chunk read submits a transfer tagged with
        :attr:`store_tenant` -- ``client`` is the flat node id the ingest and
        read traffic terminates at (``None`` models an external client outside
        the overlay's access links).  ``observer``, when given, is called with
        each charged transfer on completion (SLO probes measure the store's
        *own* data movement without picking up repair traffic that shares the
        tenant tag).  Placement decisions, results and lookup counts are
        unchanged; only the transfer fabric sees the new load.
        """
        self.transfers = scheduler
        self._transfer_client = client
        self._transfer_observer = observer

    def attach_cache(self, cache) -> None:
        """Serve repeat reads from per-client-node block caches.

        ``cache`` is a :class:`~repro.core.cache.CacheManager`.  Once
        attached, capacity-mode chunk reads and payload-mode block fetches
        consult the requesting client's cache before touching any holder: a
        full hit skips the transfer charge entirely, a miss charges the
        fabric (from the least-loaded live holder) and fills the cache.
        Detach by passing ``None``.  Reads with no resolved client id (no
        per-call ``client=`` and no attached default) bypass the cache.
        """
        self.cache = cache

    @contextmanager
    def _request_context(self, client, observer):
        """Scope per-call ``client=``/``observer=`` overrides to one request."""
        if client is _UNSET and observer is _UNSET:
            yield
            return
        saved = (self._call_client, self._call_observer)
        self._call_client = client
        self._call_observer = observer
        try:
            yield
        finally:
            self._call_client, self._call_observer = saved

    def _effective_client(self) -> Optional[int]:
        """The client node id of the current request (per-call over default)."""
        if self._call_client is not _UNSET:
            return self._call_client
        return self._transfer_client

    def _effective_observer(self):
        """The completion observer of the current request (per-call over default)."""
        if self._call_observer is not _UNSET:
            return self._call_observer
        return self._transfer_observer

    def _charge(self, size: float, src: Optional[int], dst: Optional[int]) -> None:
        """Submit one tenant-tagged charging transfer (no-op when detached)."""
        if self.transfers is None or size <= 0:
            return
        self.transfers.submit(float(size), src, dst,
                              on_complete=self._effective_observer(),
                              tenant=self.store_tenant)

    # ------------------------------------------------------------------ store --
    def store_file(self, filename: str, size: int, *,
                   client=_UNSET, observer=_UNSET) -> StoreResult:
        """Store a file of ``size`` bytes in capacity mode (sizes only).

        ``client``/``observer`` override the :meth:`attach_transfers`
        defaults for this one store (a serving gateway ingesting on behalf
        of a specific front-end node, with its own completion probe).
        """
        if self.payload_mode:
            raise RuntimeError("store_file() is for capacity mode; use store_bytes() in payload mode")
        with self._request_context(client, observer):
            return self._store(filename, size, data=None)

    def store_bytes(self, filename: str, data: bytes, *,
                    client=_UNSET, observer=_UNSET) -> StoreResult:
        """Store real file contents (payload mode)."""
        if not self.payload_mode:
            raise RuntimeError("store_bytes() requires payload_mode=True")
        with self._request_context(client, observer):
            return self._store(filename, len(data), data=data)

    def _store(self, filename: str, size: int, data: Optional[bytes]) -> StoreResult:
        # On a shared ledger another store may already own the name; reject
        # up front, before any block is placed (the same pre-flight check the
        # baselines make -- registration would otherwise raise mid-store).
        if filename in self.files or (
            self._ledger_shared and self.ledger.file_index(filename) is not None
        ):
            return StoreResult(
                filename=filename,
                requested_size=size,
                success=False,
                stored_bytes=0,
                chunk_count=0,
                data_chunk_count=0,
                lookups=0,
                failure_reason="file already stored",
            )
        self.store_attempts += 1
        lookups_before = self.probe.total_probes
        chunks: List[StoredChunk] = []
        remaining = size
        offset = 0
        chunk_no = 1
        consecutive_zero = 0
        encoded_blocks = self.codec.encoded_block_count()
        failure_reason: Optional[str] = None

        while remaining > 0:
            probe = self._probe_chunk(filename, chunk_no, encoded_blocks)
            chunk_size = self.chunker.size_chunk(probe, remaining)
            chunk = StoredChunk(chunk_no=chunk_no, start=offset, size=chunk_size)
            if chunk_size > 0:
                chunk_data = data[offset : offset + chunk_size] if data is not None else None
                placed = self._place_chunk(filename, chunk, probe, chunk_data)
                if not placed:
                    # Capacity evaporated between probe and store: the paper's
                    # remedy is to treat the chunk as zero-sized and continue.
                    chunk = StoredChunk(chunk_no=chunk_no, start=offset, size=0)
            chunks.append(chunk)
            if chunk.size == 0:
                consecutive_zero += 1
                if consecutive_zero > self.policy.max_consecutive_zero_chunks:
                    failure_reason = (
                        f"{consecutive_zero} consecutive zero-sized chunks "
                        f"(limit {self.policy.max_consecutive_zero_chunks})"
                    )
                    break
            else:
                consecutive_zero = 0
                offset += chunk.size
                remaining -= chunk.size
            chunk_no += 1

        if failure_reason is None and remaining == 0:
            cat = ChunkAllocationTable.from_chunk_sizes(filename, [c.size for c in chunks])
            cat_placements = self._store_cat(filename, cat)
            if cat_placements is None:
                failure_reason = "unable to store chunk allocation table"
            else:
                stored = StoredFile(
                    name=filename,
                    size=size,
                    cat=cat,
                    chunks=chunks,
                    cat_placements=cat_placements,
                )
                self.files[filename] = stored
                if self.ledger is not None:
                    self.ledger.register_file(stored, self.codec.spec().required_blocks())
                return StoreResult(
                    filename=filename,
                    requested_size=size,
                    success=True,
                    stored_bytes=size,
                    chunk_count=len(chunks),
                    data_chunk_count=len(stored.data_chunks()),
                    lookups=self.probe.total_probes - lookups_before,
                )

        # Failure path.
        if self.policy.rollback_on_failure:
            for chunk in chunks:
                self._release_chunk(chunk)
            stored_bytes = 0
        else:
            stored_bytes = sum(chunk.size for chunk in chunks if chunk.placements)
        self.store_failures += 1
        self.failed_bytes += size
        return StoreResult(
            filename=filename,
            requested_size=size,
            success=False,
            stored_bytes=stored_bytes,
            chunk_count=len(chunks),
            data_chunk_count=sum(1 for chunk in chunks if not chunk.is_empty),
            lookups=self.probe.total_probes - lookups_before,
            failure_reason=failure_reason or "incomplete store",
        )

    def _place_chunk(
        self,
        filename: str,
        chunk: StoredChunk,
        probe: ProbeResult,
        chunk_data: Optional[bytes],
    ) -> bool:
        """Place every encoded block of ``chunk``; False if placement failed."""
        if chunk_data is not None:
            encoded = self.codec.encode(chunk_data)
            chunk.encoded = encoded
            block_sizes = [block.size for block in encoded.blocks]
            payloads: Optional[List[bytes]] = [block.data for block in encoded.blocks]
        else:
            block_size = self.codec.encoded_block_size(chunk.size)
            count = self.codec.encoded_block_count()
            # The last block of a chunk may be smaller; capacity mode keeps the
            # accounting simple and conservative by charging equal-sized blocks
            # that sum to at least the encoded chunk size.
            block_sizes = [block_size] * count
            payloads = None

        placements: List[BlockPlacement] = []
        for index, block_size in enumerate(block_sizes):
            name = probe.block_names[index] if index < len(probe.block_names) else naming.block_name(
                filename, chunk.chunk_no, index + 1
            )
            node = probe.nodes[index] if index < len(probe.nodes) else self._locate(name)
            if not node.store_block(name, block_size):
                for placement in placements:
                    self._release_placement(placement)
                return False
            replica_ids = self._replicate_block(name, block_size, node)
            placement = BlockPlacement(
                block_name=name, node_id=node.node_id, size=block_size, replica_nodes=replica_ids
            )
            placements.append(placement)
            # Ingest charging: the client uploads the primary copy; neighbour
            # replicas are pushed onward by the primary holder.
            self._charge(block_size, self._effective_client(), int(node.node_id))
            for replica_id in replica_ids:
                self._charge(block_size, int(node.node_id), int(replica_id))
            if payloads is not None:
                self._block_payloads[(int(node.node_id), name)] = payloads[index]
                for replica_id in replica_ids:
                    self._block_payloads[(int(replica_id), name)] = payloads[index]
            if self.track_neighbor_ledgers:
                self._record_in_ledgers(name, block_size, filename, node)
        chunk.placements = placements
        return True

    def _locate(self, name: str) -> OverlayNode:
        """The node responsible for ``name``, via the configured lookup path."""
        return self.dht.locate_name(name, self.vectorized)

    def _replicate_block(self, name: str, size: int, primary: OverlayNode) -> Tuple[NodeId, ...]:
        """Best-effort placement of ``block_replication - 1`` neighbour replicas."""
        extra = self.policy.block_replication - 1
        if extra <= 0:
            return ()
        replicas: List[NodeId] = []
        for neighbor in self.dht.neighbors(primary.node_id, extra * 2):
            if len(replicas) >= extra:
                break
            if neighbor.node_id == primary.node_id:
                continue
            if neighbor.store_block(name, size):
                replicas.append(neighbor.node_id)
        return tuple(replicas)

    def _record_in_ledgers(self, name: str, size: int, filename: str, holder: OverlayNode) -> None:
        record = NeighborBlockRecord(block_name=name, size=size, owner_file=filename)
        for neighbor in self.dht.immediate_neighbors(holder.node_id):
            neighbor.record_neighbor_block(holder.node_id, record)

    def _store_cat(self, filename: str, cat: ChunkAllocationTable) -> Optional[List[BlockPlacement]]:
        """Store the CAT object and its replicas; None if no live node has room.

        The primary target is the node responsible for ``filename.CAT``; if it
        is full, salted retries re-hash the name, and as a last resort the CAT
        is diverted to the nearest neighbour with room (a CAT is a few hundred
        bytes, so it should never be the reason a multi-gigabyte store fails
        while free space remains anywhere in the pool).
        """
        size = cat.serialized_size
        base_name = naming.cat_name(filename)
        serialized = cat.serialize().encode("utf-8") if self.payload_mode else None

        def finalize(name: str, node: OverlayNode) -> List[BlockPlacement]:
            self._charge(size, self._effective_client(), int(node.node_id))
            replica_ids = []
            for neighbor in self.dht.neighbors(node.node_id, self.policy.cat_replication - 1):
                if neighbor.store_block(name, size):
                    replica_ids.append(neighbor.node_id)
                    self._charge(size, int(node.node_id), int(neighbor.node_id))
                    if serialized is not None:
                        self._block_payloads[(int(neighbor.node_id), name)] = serialized
            if serialized is not None:
                self._block_payloads[(int(node.node_id), name)] = serialized
            return [
                BlockPlacement(
                    block_name=name, node_id=node.node_id, size=size, replica_nodes=tuple(replica_ids)
                )
            ]

        primary: Optional[OverlayNode] = None
        for attempt in range(self.policy.cat_store_retries + 1):
            name = base_name if attempt == 0 else f"{base_name}~salt{attempt}"
            node = self._locate(name)
            if primary is None:
                primary = node
            self.total_lookups += 1
            if node.store_block(name, size):
                return finalize(name, node)
        # Diversion: place the CAT on the closest neighbour with room.
        if primary is not None:
            for candidate in self.dht.neighbors(primary.node_id, 16):
                if candidate.store_block(base_name, size):
                    return finalize(base_name, candidate)
        return None

    # ----------------------------------------------------------------- delete --
    def delete_file(self, filename: str) -> bool:
        """Remove a file, releasing every block, replica and CAT copy."""
        stored = self.files.pop(filename, None)
        if stored is None:
            return False
        for chunk in stored.chunks:
            self._release_chunk(chunk)
        for placement in stored.cat_placements:
            self._release_placement(placement)
        if self.ledger is not None:
            self.ledger.remove_file(filename)
        return True

    def _release_chunk(self, chunk: StoredChunk) -> None:
        for placement in chunk.placements:
            self._release_placement(placement)
        chunk.placements = []

    def _release_placement(self, placement: BlockPlacement) -> None:
        for node_id in (placement.node_id, *placement.replica_nodes):
            if node_id in self.dht.network:
                self.dht.network.node(node_id).remove_block(placement.block_name)
            self._block_payloads.pop((int(node_id), placement.block_name), None)

    # --------------------------------------------------------------- retrieval --
    def _fetch_block(self, placement: BlockPlacement) -> Tuple[Optional[bytes], bool]:
        """Fetch one block's payload (payload mode): client cache, then holders.

        Returns ``(payload, from_cache)``; a network fetch fills the
        requesting client's cache when one is attached.
        """
        client = self._effective_client()
        use_cache = self.cache is not None and client is not None
        if use_cache:
            cached = self.cache.lookup_block(int(client), placement.block_name)
            if cached is not None:
                return cached, True
        for node_id in (placement.node_id, *placement.replica_nodes):
            if node_id not in self.dht.network:
                continue
            node = self.dht.network.node(node_id)
            if node.has_block(placement.block_name):
                payload = self._block_payloads.get((int(node_id), placement.block_name))
                if payload is not None:
                    if use_cache:
                        self.cache.fill_block(int(client), placement.block_name,
                                              placement.size, payload)
                    return payload, False
        return None, False

    def _live_copies(self, placement: BlockPlacement) -> int:
        """Number of live nodes still holding the block."""
        count = 0
        for node_id in (placement.node_id, *placement.replica_nodes):
            if node_id in self.dht.network and self.dht.network.node(node_id).has_block(placement.block_name):
                count += 1
        return count

    def chunk_is_recoverable(self, chunk: StoredChunk) -> bool:
        """Whether enough encoded blocks of ``chunk`` survive to decode it.

        On the vectorized path this is one O(1) counter comparison against
        the ledger's incrementally-maintained per-chunk live-block counts;
        the seed path walks the placements and per-node dicts.
        """
        if chunk.is_empty:
            return True
        if self.ledger is not None and chunk.ledger_index is not None:
            return self.ledger.chunk_recoverable(chunk.ledger_index)
        surviving = sum(1 for placement in chunk.placements if self._live_copies(placement) > 0)
        required = self.codec.spec().required_blocks()
        return surviving >= required

    def is_file_available(self, filename: str) -> bool:
        """Whether every chunk of the file can still be recovered (O(1) vectorized)."""
        stored = self.files.get(filename)
        if stored is None:
            return False
        if self.ledger is not None and stored.ledger_index is not None:
            return self.ledger.file_available(stored.ledger_index)
        return all(self.chunk_is_recoverable(chunk) for chunk in stored.chunks)

    def unavailable_file_count(self) -> int:
        """Stored files that currently have at least one undecodable chunk.

        O(1) on the vectorized path (the Figure 10 sweep samples this once
        per failure batch); falls back to the full walk on the seed path.
        """
        if self.ledger is not None:
            return self.ledger.unavailable_count
        return sum(1 for name in self.files if not self.is_file_available(name))

    def retrieve_file(self, filename: str, *,
                      client=_UNSET, observer=_UNSET) -> RetrieveResult:
        """Retrieve the entire file.

        ``client``/``observer`` override the :meth:`attach_transfers`
        defaults for this one read -- the requesting client's id also keys
        the block cache when one is attached.
        """
        stored = self.files.get(filename)
        if stored is None:
            return RetrieveResult(
                filename=filename,
                complete=False,
                bytes_available=0,
                chunks_needed=0,
                chunks_recovered=0,
                blocks_fetched=0,
                lookups=0,
                failure_reason="unknown file",
            )
        with self._request_context(client, observer):
            return self._retrieve(stored, stored.cat.non_empty_entries())

    def retrieve_range(self, filename: str, offset: int, length: int, *,
                       client=_UNSET, observer=_UNSET) -> RetrieveResult:
        """Retrieve ``length`` bytes starting at ``offset`` (partial-file access)."""
        stored = self.files.get(filename)
        if stored is None:
            return RetrieveResult(
                filename=filename,
                complete=False,
                bytes_available=0,
                chunks_needed=0,
                chunks_recovered=0,
                blocks_fetched=0,
                lookups=0,
                failure_reason="unknown file",
            )
        entries = [entry for entry in stored.cat.chunks_for_range(offset, length) if not entry.is_empty]
        with self._request_context(client, observer):
            result = self._retrieve(stored, entries)
        if result.data is not None:
            base = entries[0].start if entries else 0
            window = result.data[offset - base : offset - base + length]
            result = RetrieveResult(
                filename=result.filename,
                complete=result.complete,
                bytes_available=len(window) if result.complete else result.bytes_available,
                chunks_needed=result.chunks_needed,
                chunks_recovered=result.chunks_recovered,
                blocks_fetched=result.blocks_fetched,
                lookups=result.lookups,
                data=window,
                failure_reason=result.failure_reason,
                chunks_degraded=result.chunks_degraded,
                chunks_cached=result.chunks_cached,
            )
        return result

    def _chunk_live_placements(self, chunk: StoredChunk) -> int:
        """Distinct placements of ``chunk`` with a surviving copy.

        O(1) from the ledger's per-chunk live counter on the vectorized path;
        the seed path walks the placements and per-node dicts.
        """
        if self.ledger is not None and chunk.ledger_index is not None:
            return self.ledger.chunk_live_blocks(chunk.ledger_index)
        return sum(1 for placement in chunk.placements if self._live_copies(placement) > 0)

    def _read_source(self, chunk: StoredChunk) -> Tuple[int, bool]:
        """The live holder a cached-serve-path chunk read drains from.

        Picks the least-loaded live copy (accumulated :attr:`read_load`,
        node id as tie-break) among the first placement's primary and
        neighbour replicas; falls back to the primary when no copy answers.
        Returns ``(node id, is_primary)``.
        """
        placement = chunk.placements[0]
        candidates: List[int] = []
        for node_id in (placement.node_id, *placement.replica_nodes):
            if node_id in self.dht.network and self.dht.network.node(node_id).has_block(
                placement.block_name
            ):
                candidates.append(int(node_id))
        if not candidates:
            return int(placement.node_id), True
        src = min(candidates, key=lambda nid: (self.read_load.get(nid, 0.0), nid))
        return src, src == int(placement.node_id)

    def _serve_chunk_read(self, chunk: StoredChunk, required: int) -> bool:
        """Account one recoverable capacity-mode chunk read; True on cache hit.

        With a cache attached and a client id resolved, a fully-cached chunk
        skips the transfer charge entirely; a miss drains from the
        least-loaded live holder and fills the client's cache.  Without a
        cache the charge drains from the primary holder exactly as before
        (the cache-off serving oracle pins this bit-for-bit).
        """
        if not chunk.placements:
            return False
        client = self._effective_client()
        if self.cache is not None and client is not None:
            needed = chunk.placements[: min(required, len(chunk.placements))]
            names = [placement.block_name for placement in needed]
            if self.cache.lookup_chunk(int(client), names, chunk.size):
                return True
            src, primary = self._read_source(chunk)
            self.cache.note_source(primary)
            self._charge(chunk.size, src, client)
            self.read_load[src] = self.read_load.get(src, 0.0) + chunk.size
            self.cache.fill_chunk(
                int(client), [(placement.block_name, placement.size) for placement in needed]
            )
            return False
        src = int(chunk.placements[0].node_id)
        self._charge(chunk.size, src, client)
        self.read_load[src] = self.read_load.get(src, 0.0) + chunk.size
        return False

    def _retrieve(self, stored: StoredFile, entries: List[CatEntry]) -> RetrieveResult:
        lookups = 1  # locating the CAT object
        blocks_fetched = 0
        recovered = 0
        degraded_chunks = 0
        cached_chunks = 0
        bytes_available = 0
        pieces: List[bytes] = []
        complete = True
        failure_reason: Optional[str] = None
        chunk_by_no = {chunk.chunk_no: chunk for chunk in stored.chunks}
        required = self.codec.spec().required_blocks()

        for entry in entries:
            chunk = chunk_by_no.get(entry.chunk_no)
            if chunk is None:
                complete = False
                failure_reason = f"chunk {entry.chunk_no} metadata missing"
                continue
            if not self.payload_mode:
                lookups += min(required, len(chunk.placements))
                if self.chunk_is_recoverable(chunk):
                    recovered += 1
                    bytes_available += chunk.size
                    blocks_fetched += min(required, len(chunk.placements))
                    # Read charging: one decoded chunk's worth of traffic
                    # drains from a holder to the client (skipped entirely
                    # when the client's block cache holds the whole chunk).
                    served_from_cache = self._serve_chunk_read(chunk, required)
                    if served_from_cache:
                        cached_chunks += 1
                    # Degraded: the decode works from a strict k-of-n subset
                    # because some placements lost every copy.  A pure cache
                    # hit never touches the holders, so a repeat read of a
                    # cached chunk is not re-counted as degraded.
                    elif self._chunk_live_placements(chunk) < len(chunk.placements):
                        degraded_chunks += 1
                else:
                    complete = False
                    failure_reason = f"chunk {entry.chunk_no} unrecoverable"
                continue
            # Payload mode: fetch enough blocks and decode.  Blocks are keyed
            # by their *stream index* in the chunk encoding (for rateless
            # codes the repair path mints replacement blocks whose indices
            # continue the stream rather than reusing the lost index).
            if chunk.encoded is None:
                lookups += len(chunk.placements)
                complete = False
                failure_reason = f"chunk {entry.chunk_no} has no encoder metadata"
                continue
            available: Dict[int, bytes] = {}
            cached_blocks = 0
            network_fetched = 0
            for index, placement in enumerate(chunk.placements):
                payload, from_cache = self._fetch_block(placement)
                lookups += 1
                if payload is not None:
                    stream_index = (
                        chunk.encoded.blocks[index].index
                        if index < len(chunk.encoded.blocks)
                        else index
                    )
                    available[stream_index] = payload
                    blocks_fetched += 1
                    if from_cache:
                        cached_blocks += 1
                    else:
                        network_fetched += 1
            try:
                piece = self.codec.decode(chunk.encoded, available)
            except Exception as error:  # noqa: BLE001 - decoding failure is a data-loss event
                complete = False
                failure_reason = f"chunk {entry.chunk_no} decode failed: {error}"
                continue
            recovered += 1
            bytes_available += chunk.size
            if cached_blocks and network_fetched == 0:
                # Served entirely from the client's cache: no holder was
                # touched, so the read is neither degraded nor charged.
                cached_chunks += 1
            elif len(available) < len(chunk.placements):
                degraded_chunks += 1
            pieces.append(piece)

        self.total_lookups += lookups
        if not complete:
            self.failed_reads += 1
        elif degraded_chunks:
            self.degraded_reads += 1
        data = b"".join(pieces) if (self.payload_mode and complete) else None
        return RetrieveResult(
            filename=stored.name,
            complete=complete,
            bytes_available=bytes_available,
            chunks_needed=len(entries),
            chunks_recovered=recovered,
            blocks_fetched=blocks_fetched,
            lookups=lookups,
            data=data,
            failure_reason=failure_reason,
            chunks_degraded=degraded_chunks,
            chunks_cached=cached_chunks,
        )

    # --------------------------------------------------------------- statistics --
    def chunk_statistics(self) -> Dict[str, float]:
        """Mean/sd of data-chunk counts and sizes across stored files (Table 1)."""
        counts: List[int] = []
        sizes: List[int] = []
        for stored in self.files.values():
            data_chunks = stored.data_chunks()
            counts.append(len(data_chunks))
            sizes.extend(chunk.size for chunk in data_chunks)
        counts_array = np.asarray(counts, dtype=float) if counts else np.zeros(0)
        sizes_array = np.asarray(sizes, dtype=float) if sizes else np.zeros(0)
        return {
            "files": float(len(counts)),
            "mean_chunks_per_file": float(counts_array.mean()) if counts else 0.0,
            "std_chunks_per_file": float(counts_array.std()) if counts else 0.0,
            "mean_chunk_size": float(sizes_array.mean()) if sizes else 0.0,
            "std_chunk_size": float(sizes_array.std()) if sizes else 0.0,
        }

    def utilization(self) -> float:
        """Fraction of contributed capacity currently used (Figure 9 metric)."""
        return self.dht.utilization()

    def stored_bytes(self) -> int:
        """Total bytes of user data currently stored (excluding coding overhead).

        O(1) from the ledger aggregate on the vectorized path; the seed path
        sums the per-file sizes.
        """
        if self.ledger is not None:
            return self.ledger.stored_data_bytes
        return sum(stored.size for stored in self.files.values())

    def usage_summary(self) -> Dict[str, float]:
        """System-wide usage aggregates.

        On the vectorized path every value is an O(1) ledger counter; the
        seed fallback recomputes them by summing the per-file bookkeeping and
        the per-node ``stored_blocks`` dicts (the walk the ledger replaced).
        ``live_block_bytes`` counts the copies the placement bookkeeping still
        references on live nodes (blocks, replicas and CAT copies including
        coding overhead); ``tests/test_placement_equivalence.py`` asserts
        parity between the two paths.
        """
        if self.ledger is not None:
            return {
                "file_count": float(self.ledger.active_files),
                "stored_file_bytes": float(self.ledger.stored_data_bytes),
                "live_block_bytes": float(self.ledger.live_bytes),
                "live_block_count": float(self.ledger.live_rows),
                "utilization": self.dht.utilization(),
            }
        live_bytes = 0
        live_count = 0
        for node in self.dht.network.live_nodes():
            live_bytes += sum(node.stored_blocks.values())
            live_count += len(node.stored_blocks)
        return {
            "file_count": float(len(self.files)),
            "stored_file_bytes": float(sum(stored.size for stored in self.files.values())),
            "live_block_bytes": float(live_bytes),
            "live_block_count": float(live_count),
            "utilization": self.dht.utilization(),
        }

    @property
    def file_count(self) -> int:
        """Number of files successfully stored and not deleted."""
        return len(self.files)
