"""Chunk-size negotiation (Section 4.3 of the paper).

The chunker turns a file size into a sequence of chunk plans by repeatedly
probing the nodes that would hold the next chunk's encoded blocks and sizing
the chunk to the smallest offer.  Zero offers produce zero-sized chunks; the
store fails once the configured number of *consecutive* zero-sized chunks is
exceeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.core.capacity import CapacityProbe, ProbeResult
from repro.core.policies import StoragePolicy
from repro.erasure.chunk_codec import ChunkCodec


class StoreAborted(RuntimeError):
    """Raised internally when the consecutive-zero-chunk limit is exceeded."""

    def __init__(self, message: str, planned: List["ChunkPlan"]) -> None:
        super().__init__(message)
        self.planned = planned


@dataclass(frozen=True)
class ChunkPlan:
    """The negotiated plan for one chunk: its size and the probe that sized it."""

    chunk_no: int
    start: int
    size: int
    probe: ProbeResult

    @property
    def end(self) -> int:
        """End offset (exclusive) of the chunk within the file."""
        return self.start + self.size

    @property
    def is_zero(self) -> bool:
        """Whether the negotiation yielded a zero-sized (placeholder) chunk."""
        return self.size == 0


class Chunker:
    """Plans the chunks of a file against the current state of the DHT."""

    def __init__(self, probe: CapacityProbe, codec: ChunkCodec, policy: StoragePolicy) -> None:
        self.probe = probe
        self.codec = codec
        self.policy = policy

    def size_chunk(self, probe: ProbeResult, remaining: int) -> int:
        """Chunk size implied by a probe result and the remaining file bytes."""
        block_size = probe.usable_block_size
        if self.policy.min_chunk_size is not None:
            # Treat offers too small to matter as no offer at all.
            if self.codec.max_chunk_size(block_size) < self.policy.min_chunk_size:
                return 0
        chunk_capacity = self.codec.max_chunk_size(block_size)
        if self.policy.max_chunk_size is not None:
            chunk_capacity = min(chunk_capacity, self.policy.max_chunk_size)
        return min(remaining, chunk_capacity)

    def plan_file(self, filename: str, file_size: int) -> List[ChunkPlan]:
        """Plan every chunk of ``filename``; raises :class:`StoreAborted` on failure.

        The returned plans include zero-sized chunks (they occupy a chunk
        number and a CAT row, as in Figure 3 of the paper, where chunk #5 is
        empty).
        """
        if file_size < 0:
            raise ValueError("file_size must be non-negative")
        plans: List[ChunkPlan] = []
        remaining = file_size
        offset = 0
        chunk_no = 1
        consecutive_zero = 0
        encoded_blocks = self.codec.encoded_block_count()
        while remaining > 0:
            probe = self.probe.probe_chunk(filename, chunk_no, encoded_blocks)
            chunk_size = self.size_chunk(probe, remaining)
            plans.append(ChunkPlan(chunk_no=chunk_no, start=offset, size=chunk_size, probe=probe))
            if chunk_size == 0:
                consecutive_zero += 1
                if consecutive_zero > self.policy.max_consecutive_zero_chunks:
                    raise StoreAborted(
                        f"store of {filename!r} aborted: {consecutive_zero} consecutive "
                        f"zero-sized chunks (limit {self.policy.max_consecutive_zero_chunks})",
                        planned=plans,
                    )
            else:
                consecutive_zero = 0
                offset += chunk_size
                remaining -= chunk_size
            chunk_no += 1
        return plans

    def iter_plan(self, filename: str, file_size: int) -> Iterator[ChunkPlan]:
        """Streaming variant of :meth:`plan_file` (used by the storage system so
        that block placement interleaves with planning, exactly as the real
        system stores chunk ``i`` before probing for chunk ``i + 1``)."""
        remaining = file_size
        offset = 0
        chunk_no = 1
        consecutive_zero = 0
        encoded_blocks = self.codec.encoded_block_count()
        while remaining > 0:
            probe = self.probe.probe_chunk(filename, chunk_no, encoded_blocks)
            chunk_size = self.size_chunk(probe, remaining)
            plan = ChunkPlan(chunk_no=chunk_no, start=offset, size=chunk_size, probe=probe)
            outcome = yield plan
            # The storage system reports back whether the chunk actually stuck
            # (capacity may have evaporated between probe and store).
            effective_size = plan.size if outcome is None else int(outcome)
            if effective_size == 0:
                consecutive_zero += 1
                if consecutive_zero > self.policy.max_consecutive_zero_chunks:
                    raise StoreAborted(
                        f"store of {filename!r} aborted: {consecutive_zero} consecutive "
                        f"zero-sized chunks (limit {self.policy.max_consecutive_zero_chunks})",
                        planned=[],
                    )
            else:
                consecutive_zero = 0
                offset += effective_size
                remaining -= effective_size
            chunk_no += 1
