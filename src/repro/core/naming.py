"""Chunk and encoded-block naming convention.

Section 4.2 of the paper: "Each chunk is named as ``filename_ChunkNo`` [...]
The encoded blocks for the chunk X are named ``filename_X_ECB``, where ECB is
the error coded block number and ranges from 1 to m."  The convention lets the
system derive every name it needs from the file name alone (no chunk-to-file
mapping tables), at the cost of making renames expensive -- which the paper
argues is acceptable for the targeted content-named large files.

Chunk numbers and ECB numbers are 1-based, matching the paper's examples.
The CAT file for a file is named ``filename.CAT``.
"""

from __future__ import annotations

import hashlib
from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from repro.overlay.ids import NodeId, key_for

#: Separator between the file name and the chunk / block counters.  File names
#: containing the separator are allowed; parsing is done from the right.
SEPARATOR = "_"

#: Suffix of the chunk-allocation-table object for a file.
CAT_SUFFIX = ".CAT"


class ParsedBlockName(NamedTuple):
    """Decomposition of an encoded-block name."""

    filename: str
    chunk_no: int
    ecb: int


class ParsedChunkName(NamedTuple):
    """Decomposition of a chunk name."""

    filename: str
    chunk_no: int


def chunk_name(filename: str, chunk_no: int) -> str:
    """The name of chunk ``chunk_no`` (1-based) of ``filename``."""
    if chunk_no < 1:
        raise ValueError(f"chunk numbers are 1-based, got {chunk_no}")
    return f"{filename}{SEPARATOR}{chunk_no}"


def block_name(filename: str, chunk_no: int, ecb: int) -> str:
    """The name of encoded block ``ecb`` (1-based) of chunk ``chunk_no``."""
    if ecb < 1:
        raise ValueError(f"encoded block numbers are 1-based, got {ecb}")
    return f"{chunk_name(filename, chunk_no)}{SEPARATOR}{ecb}"


def cat_name(filename: str) -> str:
    """The name under which the file's chunk allocation table is stored."""
    return f"{filename}{CAT_SUFFIX}"


def replica_name(base_name: str, replica_no: int) -> str:
    """Name of the ``replica_no``-th additional replica of an object.

    Replica 0 is the primary and uses ``base_name`` itself; additional
    replicas get a distinguishable name so that neighbour placement and the
    DHT mapping cannot collide with the primary.
    """
    if replica_no < 0:
        raise ValueError("replica numbers are non-negative")
    if replica_no == 0:
        return base_name
    return f"{base_name}{SEPARATOR}r{replica_no}"


def parse_chunk_name(name: str) -> Optional[ParsedChunkName]:
    """Parse a chunk name back into (filename, chunk_no); None if not a chunk name."""
    head, _, tail = name.rpartition(SEPARATOR)
    if not head or not tail.isdigit():
        return None
    return ParsedChunkName(filename=head, chunk_no=int(tail))


def parse_block_name(name: str) -> Optional[ParsedBlockName]:
    """Parse an encoded-block name into (filename, chunk_no, ecb); None if malformed."""
    head, _, ecb_text = name.rpartition(SEPARATOR)
    if not head or not ecb_text.isdigit():
        return None
    parsed_chunk = parse_chunk_name(head)
    if parsed_chunk is None:
        return None
    return ParsedBlockName(
        filename=parsed_chunk.filename, chunk_no=parsed_chunk.chunk_no, ecb=int(ecb_text)
    )


def key_for_name(name: str) -> NodeId:
    """The DHT key of a named object (SHA-1 of the name, Section 4.1)."""
    return key_for(name)


# -- batch helpers for the array-backed placement engine -------------------------
def block_names(filename: str, chunk_no: int, count: int) -> List[str]:
    """The names of all ``count`` encoded blocks of one chunk, in ECB order."""
    if chunk_no < 1:
        raise ValueError(f"chunk numbers are 1-based, got {chunk_no}")
    if count < 1:
        raise ValueError("count must be >= 1")
    prefix = f"{filename}{SEPARATOR}{chunk_no}{SEPARATOR}"
    return [f"{prefix}{ecb}" for ecb in range(1, count + 1)]


def key_digest(name: str) -> bytes:
    """The raw 20-byte SHA-1 digest of a name (the key's big-endian encoding)."""
    return hashlib.sha1(name.encode("utf-8")).digest()


def key_int_for_name(name: str) -> int:
    """The DHT key of a name as a plain int (hot-path variant of key_for_name)."""
    return int.from_bytes(hashlib.sha1(name.encode("utf-8")).digest(), "big")


def name_digests(names: Sequence[str]) -> np.ndarray:
    """SHA-1 digests of all ``names`` at once, as an ``S20`` array.

    The byte-string encoding orders exactly like the integer keys, so the
    result can be fed straight into the ``searchsorted`` lookup kernels of
    :class:`repro.overlay.node_state.NodeArrayState`.
    """
    sha1 = hashlib.sha1
    buffer = b"".join(sha1(name.encode("utf-8")).digest() for name in names)
    return np.frombuffer(buffer, dtype="S20")
